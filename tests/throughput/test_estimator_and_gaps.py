"""Tests for throughput estimation and gap computation."""

import pytest

from repro.algorithms.multi.single_link import (
    single_link_adaptive_routing,
    single_link_coding,
    single_link_nonadaptive_routing,
)
from repro.throughput.estimator import estimate_throughput, throughput_curve
from repro.throughput.gaps import coding_gap


def adaptive_runner(k: int, seed: int) -> tuple[int, bool]:
    outcome = single_link_adaptive_routing(k, 0.5, rng=seed)
    return outcome.rounds, outcome.success


def coding_runner(k: int, seed: int) -> tuple[int, bool]:
    outcome = single_link_coding(k, 0.5, rng=seed)
    return outcome.rounds, outcome.success


def nonadaptive_runner(k: int, seed: int) -> tuple[int, bool]:
    outcome = single_link_nonadaptive_routing(k, 0.5, rng=seed)
    return outcome.rounds, outcome.success


class TestEstimator:
    def test_basic_estimate(self):
        est = estimate_throughput(adaptive_runner, k=200, trials=5, rng=1)
        assert est.k == 200
        assert est.trials == 5
        assert est.success_rate == 1.0
        # adaptive single link at p=.5: throughput ~ 0.5
        assert 0.4 < est.throughput < 0.6

    def test_rounds_per_message_inverse_of_throughput(self):
        est = estimate_throughput(adaptive_runner, k=100, trials=3, rng=2)
        assert est.rounds_per_message == pytest.approx(
            1.0 / est.throughput, rel=1e-9
        )

    def test_deterministic_given_seed(self):
        a = estimate_throughput(coding_runner, k=50, trials=3, rng=7)
        b = estimate_throughput(coding_runner, k=50, trials=3, rng=7)
        assert a.rounds.mean == b.rounds.mean

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_throughput(adaptive_runner, k=0)
        with pytest.raises(ValueError):
            estimate_throughput(adaptive_runner, k=5, trials=0)

    def test_str(self):
        est = estimate_throughput(adaptive_runner, k=50, trials=2, rng=3)
        assert "throughput=" in str(est)

    def test_curve(self):
        curve = throughput_curve(coding_runner, ks=[20, 80], trials=3, rng=4)
        assert [e.k for e in curve] == [20, 80]


class TestGaps:
    def test_adaptive_gap_is_constant(self):
        """Lemma 33: adaptive single-link gap ~ 1."""
        est = coding_gap(coding_runner, adaptive_runner, k=400, trials=5, rng=5)
        assert 0.7 < est.gap < 1.5

    def test_nonadaptive_gap_exceeds_adaptive(self):
        """Lemma 31: the non-adaptive gap ~ log k is visibly larger."""
        adaptive = coding_gap(
            coding_runner, adaptive_runner, k=400, trials=5, rng=6
        )
        nonadaptive = coding_gap(
            coding_runner, nonadaptive_runner, k=400, trials=5, rng=6
        )
        assert nonadaptive.gap > 2 * adaptive.gap

    def test_str(self):
        est = coding_gap(coding_runner, adaptive_runner, k=50, trials=2, rng=7)
        assert "gap=" in str(est)
