"""Tests for the result-table renderer."""

import pytest

from repro.util.tables import Table


class TestConstruction:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_rejects_duplicate_columns(self):
        with pytest.raises(ValueError):
            Table(["a", "a"])


class TestRows:
    def test_positional_row(self):
        t = Table(["n", "rounds"])
        t.add_row(16, 120)
        assert len(t) == 1
        assert t.column("rounds") == [120]

    def test_named_row(self):
        t = Table(["n", "rounds"])
        t.add_row(rounds=120, n=16)
        assert t.rows[0] == (16, 120)

    def test_mixed_raises(self):
        t = Table(["n", "rounds"])
        with pytest.raises(ValueError):
            t.add_row(16, rounds=120)

    def test_wrong_arity(self):
        t = Table(["n", "rounds"])
        with pytest.raises(ValueError):
            t.add_row(16)

    def test_missing_named_column(self):
        t = Table(["n", "rounds"])
        with pytest.raises(ValueError):
            t.add_row(n=16)

    def test_unknown_named_column(self):
        t = Table(["n"])
        with pytest.raises(ValueError):
            t.add_row(n=16, extra=1)

    def test_add_rows_bulk(self):
        t = Table(["n"])
        t.add_rows([{"n": 1}, {"n": 2}])
        assert t.column("n") == [1, 2]

    def test_unknown_column_lookup(self):
        t = Table(["n"])
        with pytest.raises(KeyError):
            t.column("missing")

    def test_iteration_yields_dicts(self):
        t = Table(["a", "b"])
        t.add_row(1, 2)
        assert list(t) == [{"a": 1, "b": 2}]


class TestRendering:
    def test_text_contains_header_and_values(self):
        t = Table(["n", "rounds"], title="demo")
        t.add_row(16, 120.5)
        text = t.to_text()
        assert "demo" in text
        assert "n" in text and "rounds" in text
        assert "120.5" in text

    def test_csv(self):
        t = Table(["a", "b"])
        t.add_row(1, 2)
        assert t.to_csv() == "a,b\n1,2"

    def test_markdown(self):
        t = Table(["a"])
        t.add_row(3)
        md = t.to_markdown()
        assert md.startswith("| a |")
        assert "| 3 |" in md

    def test_float_formatting(self):
        t = Table(["x"])
        t.add_row(1234.567)
        assert "1.23e+03" in t.to_text() or "1230" in t.to_text()

    def test_nan_formatting(self):
        t = Table(["x"])
        t.add_row(float("nan"))
        assert "nan" in t.to_text()

    def test_json(self):
        import json

        t = Table(["n", "rounds"], title="demo")
        t.add_row(16, 120.5)
        t.add_row(32, 240.0)
        data = json.loads(t.to_json())
        assert data["title"] == "demo"
        assert data["columns"] == ["n", "rounds"]
        assert data["rows"] == [
            {"n": 16, "rounds": 120.5},
            {"n": 32, "rounds": 240.0},
        ]

    def test_json_stringifies_foreign_types(self):
        import json

        t = Table(["x"])
        t.add_row(complex(1, 2))
        assert json.loads(t.to_json())["rows"][0]["x"] == "(1+2j)"
