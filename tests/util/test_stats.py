"""Tests for statistics helpers."""

import math

import pytest

from repro.util.stats import (
    geometric_tail,
    mean,
    median,
    percentile,
    stddev,
    summarize,
)


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == 2.0

    def test_single(self):
        assert mean([5.0]) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestStddev:
    def test_known_value(self):
        assert math.isclose(stddev([2, 4, 4, 4, 5, 5, 7, 9]), 2.138, rel_tol=1e-3)

    def test_single_value_zero(self):
        assert stddev([3.0]) == 0.0

    def test_constant_sample(self):
        assert stddev([4, 4, 4, 4]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stddev([])


class TestPercentile:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2.0

    def test_median_even_interpolates(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_extremes(self):
        values = [10, 20, 30]
        assert percentile(values, 0) == 10
        assert percentile(values, 100) == 30

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestSummarize:
    def test_fields(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == 3.0
        assert s.minimum == 1.0
        assert s.maximum == 5.0
        assert s.median == 3.0

    def test_str_renders(self):
        text = str(summarize([1.0, 2.0]))
        assert "n=2" in text and "mean=" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestGeometricTail:
    def test_zero_trials(self):
        assert geometric_tail(0.5, 0) == 1.0

    def test_half(self):
        assert geometric_tail(0.5, 3) == 0.125

    def test_certain_success(self):
        assert geometric_tail(1.0, 1) == 0.0

    def test_negative_t(self):
        assert geometric_tail(0.5, -1) == 1.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            geometric_tail(0.0, 1)
