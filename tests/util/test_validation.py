"""Tests for argument-validation helpers."""

import pytest

from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckProbability:
    def test_accepts_valid(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(0.5) == 0.5

    def test_rejects_one(self):
        # fault probability is p in [0, 1) per the paper's model
        with pytest.raises(ValueError):
            check_probability(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability(-0.1)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_probability(True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_probability("0.5")

    def test_coerces_int_to_float(self):
        result = check_probability(0)
        assert isinstance(result, float)


class TestCheckFraction:
    def test_accepts_closed_interval(self):
        assert check_fraction(1.0) == 1.0
        assert check_fraction(0.0) == 0.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.01)


class TestCheckPositive:
    def test_accepts(self):
        assert check_positive(3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive(3.0)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-1)


class TestCheckType:
    def test_accepts(self):
        assert check_type("x", str) == "x"

    def test_rejects(self):
        with pytest.raises(TypeError):
            check_type("x", int)
