"""Tests for argument-validation helpers."""

import re

import pytest

from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckProbability:
    def test_accepts_valid(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(0.5) == 0.5

    def test_rejects_one(self):
        # fault probability is p in [0, 1) per the paper's model
        with pytest.raises(ValueError):
            check_probability(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability(-0.1)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_probability(True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_probability("0.5")

    def test_coerces_int_to_float(self):
        result = check_probability(0)
        assert isinstance(result, float)


class TestCheckFraction:
    def test_accepts_closed_interval(self):
        assert check_fraction(1.0) == 1.0
        assert check_fraction(0.0) == 0.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.01)


class TestCheckPositive:
    def test_accepts(self):
        assert check_positive(3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive(3.0)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-1)


class TestCheckType:
    def test_accepts(self):
        assert check_type("x", str) == "x"

    def test_rejects(self):
        with pytest.raises(TypeError):
            check_type("x", int)


class TestRangeMessageAudit:
    """The interval printed in each range error must match the check.

    ``FaultConfig`` rejects ``p == 1.0`` through ``check_probability``'s
    half-open range; this audit parses the bracket notation out of every
    range checker's message and verifies each endpoint's acceptance
    agrees with the bracket — so message text and actual check can never
    drift apart silently.
    """

    EPS = 1e-12

    @pytest.mark.parametrize(
        "checker,probe",
        [(check_probability, 2.0), (check_fraction, 2.0)],
        ids=["check_probability", "check_fraction"],
    )
    def test_interval_text_matches_behavior(self, checker, probe):
        with pytest.raises(ValueError) as excinfo:
            checker(probe)
        message = str(excinfo.value)
        match = re.search(
            r"must be in ([\[\(])\s*([-\d.]+),\s*([-\d.]+)\s*([\]\)])", message
        )
        assert match, f"no interval notation in {message!r}"
        open_bracket, lo, hi, close_bracket = match.groups()
        lo, hi = float(lo), float(hi)

        def accepts(value: float) -> bool:
            try:
                checker(value)
                return True
            except ValueError:
                return False

        assert accepts(lo) == (open_bracket == "[")
        assert accepts(lo - self.EPS) is False
        assert accepts(hi) == (close_bracket == "]")
        assert accepts(hi + self.EPS) is False

    def test_probability_one_rejected_with_half_open_message(self):
        """The FaultConfig case from the audit: p == 1.0 must be rejected
        and the message must advertise the half-open range."""
        with pytest.raises(ValueError, match=re.escape("in [0, 1)")):
            check_probability(1.0)

    def test_fraction_one_accepted_with_closed_message(self):
        assert check_fraction(1.0) == 1.0
        with pytest.raises(ValueError, match=re.escape("in [0, 1]")):
            check_fraction(1.5)

    @pytest.mark.parametrize(
        "checker,keyword,boundary_ok,below",
        [
            (check_positive, "positive", 1, 0),
            (check_non_negative, "non-negative", 0, -1),
        ],
        ids=["check_positive", "check_non_negative"],
    )
    def test_sign_messages_match_behavior(self, checker, keyword, boundary_ok, below):
        assert checker(boundary_ok) == boundary_ok
        with pytest.raises(ValueError, match=keyword):
            checker(below)
