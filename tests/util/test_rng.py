"""Tests for deterministic RNG management."""

import numpy as np
import pytest

from repro.util.rng import RandomSource, spawn_rng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert [a.random() for _ in range(50)] == [b.random() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_spawn_is_reproducible(self):
        a = RandomSource(7).spawn()
        b = RandomSource(7).spawn()
        assert a.random() == b.random()

    def test_spawn_independent_of_parent_consumption(self):
        a = RandomSource(7)
        a.random()
        a.random()
        child_a = a.spawn()

        b = RandomSource(7)
        child_b = b.spawn()
        assert child_a.random() == child_b.random()

    def test_successive_spawns_differ(self):
        parent = RandomSource(3)
        c1, c2 = parent.spawn(), parent.spawn()
        assert [c1.random() for _ in range(5)] != [c2.random() for _ in range(5)]

    def test_spawn_many(self):
        children = RandomSource(5).spawn_many(4)
        assert len(children) == 4
        streams = [tuple(c.random() for c in [child] * 3) for child in children]
        assert len(set(streams)) == 4


class TestBernoulli:
    def test_degenerate_probabilities(self):
        rng = RandomSource(0)
        assert not any(rng.bernoulli(0.0) for _ in range(100))
        assert all(rng.bernoulli(1.0) for _ in range(100))

    def test_empirical_rate(self):
        rng = RandomSource(123)
        hits = sum(rng.bernoulli(0.3) for _ in range(20000))
        assert 0.27 < hits / 20000 < 0.33

    def test_bernoulli_array_rate(self):
        rng = RandomSource(9)
        draws = rng.bernoulli_array(0.5, 20000)
        assert draws.dtype == bool
        assert 0.47 < draws.mean() < 0.53

    def test_bernoulli_array_degenerate(self):
        rng = RandomSource(9)
        assert not rng.bernoulli_array(0.0, 100).any()
        assert rng.bernoulli_array(1.0, 100).all()

    def test_bernoulli_array_negative_size(self):
        with pytest.raises(ValueError):
            RandomSource(0).bernoulli_array(0.5, -1)


class TestGeometric:
    def test_geometric_support(self):
        rng = RandomSource(11)
        draws = [rng.geometric(0.5) for _ in range(1000)]
        assert min(draws) >= 1

    def test_geometric_mean(self):
        rng = RandomSource(11)
        draws = [rng.geometric(0.25) for _ in range(5000)]
        # E[X] = 1/p = 4
        assert 3.6 < sum(draws) / len(draws) < 4.4

    def test_geometric_certain_success(self):
        rng = RandomSource(0)
        assert all(rng.geometric(1.0) == 1 for _ in range(10))

    def test_geometric_invalid_p(self):
        with pytest.raises(ValueError):
            RandomSource(0).geometric(0.0)
        with pytest.raises(ValueError):
            RandomSource(0).geometric(1.5)


class TestBulkDraws:
    def test_bytes_array(self):
        arr = RandomSource(2).bytes_array(10000)
        assert arr.dtype == np.uint8
        assert arr.min() >= 0 and arr.max() <= 255
        # all byte values should appear in 10k draws with overwhelming prob.
        assert len(np.unique(arr)) > 250

    def test_bytes_array_reproducible(self):
        assert np.array_equal(
            RandomSource(4).bytes_array(100), RandomSource(4).bytes_array(100)
        )


class TestSpawnRng:
    def test_none_defaults_to_zero(self):
        assert spawn_rng(None).seed == 0

    def test_int_passthrough(self):
        assert spawn_rng(99).seed == 99

    def test_source_passthrough(self):
        src = RandomSource(5)
        assert spawn_rng(src) is src

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            spawn_rng("seed")  # type: ignore[arg-type]

    def test_rejects_non_int_seed_in_constructor(self):
        with pytest.raises(TypeError):
            RandomSource(1.5)  # type: ignore[arg-type]


class TestMiscDraws:
    def test_randint_bounds(self):
        rng = RandomSource(8)
        draws = [rng.randint(3, 7) for _ in range(200)]
        assert min(draws) >= 3 and max(draws) <= 7
        assert set(draws) == {3, 4, 5, 6, 7}

    def test_choice_and_sample(self):
        rng = RandomSource(8)
        items = list(range(10))
        assert rng.choice(items) in items
        picked = rng.sample(items, 4)
        assert len(picked) == 4 and len(set(picked)) == 4

    def test_shuffle_is_permutation(self):
        rng = RandomSource(8)
        items = list(range(20))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
