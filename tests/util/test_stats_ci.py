"""Property tests for the confidence-interval helpers.

Wilson intervals are checked against the closed-form score formula and
exact binomial edge cases; the bootstrap is checked for determinism,
ordering, and coverage against closed-form binomial sampling.
"""

import math

import numpy as np
import pytest

from repro.util.stats import bootstrap_ci, summarize, wilson_interval


class TestWilsonInterval:
    def test_matches_closed_form(self):
        # the score interval has a closed form; cross-check a hand
        # computation at z=1.96-ish for 8/10
        low, high = wilson_interval(8, 10, confidence=0.95)
        from statistics import NormalDist

        z = NormalDist().inv_cdf(0.975)
        phat = 0.8
        denom = 1 + z * z / 10
        center = (phat + z * z / 20) / denom
        margin = z * math.sqrt(phat * 0.2 / 10 + z * z / 400) / denom
        assert math.isclose(low, center - margin, rel_tol=1e-12)
        assert math.isclose(high, center + margin, rel_tol=1e-12)

    @pytest.mark.parametrize("trials", [1, 5, 20, 400])
    def test_boundaries_are_not_degenerate(self, trials):
        low0, high0 = wilson_interval(0, trials)
        lown, highn = wilson_interval(trials, trials)
        assert low0 == 0.0 and 0.0 < high0 < 1.0
        assert highn == 1.0 and 0.0 < lown < 1.0

    @pytest.mark.parametrize("successes,trials", [(0, 4), (2, 4), (7, 9), (50, 100)])
    def test_contains_point_estimate_and_ordered(self, successes, trials):
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= successes / trials <= high <= 1.0

    def test_interval_tightens_with_trials(self):
        w10 = wilson_interval(5, 10)
        w1000 = wilson_interval(500, 1000)
        assert (w1000[1] - w1000[0]) < (w10[1] - w10[0])

    def test_higher_confidence_is_wider(self):
        narrow = wilson_interval(30, 50, confidence=0.5)
        wide = wilson_interval(30, 50, confidence=0.99)
        assert wide[0] < narrow[0] and wide[1] > narrow[1]

    def test_coverage_on_exact_binomial(self):
        # property check against the closed-form binomial: over every
        # outcome k of Binomial(n=30, p=0.4), the Wilson intervals that
        # contain p must carry >= ~95% of the exact probability mass
        n, p = 30, 0.4
        covered = 0.0
        for k in range(n + 1):
            mass = math.comb(n, k) * p**k * (1 - p) ** (n - k)
            low, high = wilson_interval(k, n)
            if low <= p <= high:
                covered += mass
        assert covered >= 0.93

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(1, 4, confidence=1.0)


class TestBootstrapCI:
    def test_deterministic_per_seed(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values, seed=7)
        assert bootstrap_ci(values, seed=7) != bootstrap_ci(values, seed=8)

    def test_contains_mean_for_well_behaved_sample(self):
        values = list(range(1, 51))
        low, high = bootstrap_ci(values, seed=0)
        assert low <= 25.5 <= high

    def test_constant_sample_collapses(self):
        low, high = bootstrap_ci([4.0] * 20, seed=0)
        assert low == high == 4.0

    def test_arbitrary_statistic(self):
        values = [1.0, 2.0, 3.0, 4.0, 100.0]
        low, high = bootstrap_ci(
            values, statistic=lambda rows: np.median(rows, axis=1), seed=0
        )
        assert low <= 4.0  # the median never chases the outlier to 100
        assert high <= 100.0

    def test_bad_statistic_shape_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], statistic=lambda rows: rows.sum(), seed=0)

    def test_coverage_against_closed_form_binomial(self):
        # the mean of Bernoulli(p) draws is Binomial(n, p)/n: bootstrap
        # intervals from independent samples must cover p at roughly the
        # nominal rate (closed-form target 0.95; tolerance for n=60)
        rng = np.random.default_rng(1234)
        p, n, trials = 0.3, 60, 200
        hits = 0
        for trial in range(trials):
            sample = (rng.random(n) < p).astype(float)
            low, high = bootstrap_ci(sample, seed=trial, resamples=500)
            if low <= p <= high:
                hits += 1
        assert hits / trials >= 0.85

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], resamples=0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=0.0)


class TestSummaryCI:
    def test_default_has_nan_ci(self):
        s = summarize([1.0, 2.0, 3.0])
        assert math.isnan(s.mean_ci_low) and math.isnan(s.mean_ci_high)
        assert "ci=" not in str(s)

    def test_ci_fields_populated_and_rendered(self):
        s = summarize([1.0, 2.0, 3.0, 4.0], ci=True, seed=3)
        assert s.mean_ci_low <= s.mean <= s.mean_ci_high
        assert "ci=" in str(s)

    def test_ci_deterministic(self):
        a = summarize([5.0, 6.0, 9.0], ci=True, seed=11)
        b = summarize([5.0, 6.0, 9.0], ci=True, seed=11)
        assert (a.mean_ci_low, a.mean_ci_high) == (b.mean_ci_low, b.mean_ci_high)
