"""Tests for trace-based progress analysis, including the Lemma 10 stall
distribution itself."""

import pytest

from repro.algorithms.base import ilog2, run_broadcast
from repro.algorithms.fastbc import make_fastbc_protocols
from repro.analysis.progress import (
    ProgressTimeline,
    extract_progress,
    stall_gaps,
)
from repro.core.faults import FaultConfig
from repro.topologies.basic import path
from repro.util.rng import RandomSource


class TestTimeline:
    def test_frontier_times_stop_at_uninformed(self):
        timeline = ProgressTimeline(informed_round=(0, 3, -1, 9))
        assert timeline.frontier_times([0, 1, 2, 3]) == [0, 3]

    def test_hop_gaps(self):
        timeline = ProgressTimeline(informed_round=(0, 2, 10))
        assert timeline.hop_gaps([0, 1, 2]) == [2, 8]

    def test_completion_round(self):
        assert ProgressTimeline((0, 5, 3)).completion_round() == 5
        assert ProgressTimeline((0, -1, 3)).completion_round() == -1

    def test_extract_from_protocols(self):
        class Stub:
            def __init__(self, r):
                self.informed_round = r

        timeline = extract_progress([Stub(0), Stub(None), Stub(7)])
        assert timeline.informed_round == (0, -1, 7)


class TestStallGaps:
    def test_requires_progress(self):
        timeline = ProgressTimeline(informed_round=(-1,))
        with pytest.raises(ValueError):
            stall_gaps(timeline, [0], stall_threshold=4)

    def test_separates_modes(self):
        timeline = ProgressTimeline(informed_round=(0, 2, 4, 104, 106))
        stalls, summary = stall_gaps(timeline, [0, 1, 2, 3, 4], 10)
        assert stalls == [100]
        assert summary.count == 4


class TestLemma10StallDistribution:
    """The microscopic mechanism of Lemma 10: under faults, the FASTBC
    wave's inter-hop gaps are bimodal — the wave speed (2 rounds) or a
    full wave period (2 * 6 * ilog2(n) rounds)."""

    def test_wave_gaps_bimodal_under_faults(self):
        n, p = 128, 0.4
        network = path(n)
        rng = RandomSource(3)
        protocols = make_fastbc_protocols(
            network, rng, decay_interleave=False
        )
        outcome = run_broadcast(
            network, protocols, FaultConfig.receiver(p), rng.spawn(),
            max_rounds=200_000,
        )
        assert outcome.success
        timeline = extract_progress(protocols)
        period = 2 * 6 * ilog2(n)  # full wave period in real rounds
        # skip node 0->1: that first gap is the wave-alignment start-up
        # (up to one period), not a fault stall
        stalls, summary = stall_gaps(
            timeline, list(range(1, n)), stall_threshold=period // 2
        )
        gaps = timeline.hop_gaps(list(range(1, n)))
        fast_hops = [g for g in gaps if g <= 2]
        # both modes are populated...
        assert len(fast_hops) > 0.3 * len(gaps)
        assert len(stalls) > 0.1 * len(gaps)
        # ...and every stall is a whole number of wave periods plus the
        # 2-round hop itself: the Lemma 10 mechanism, literally
        for stall in stalls:
            assert (stall - 2) % period == 0, (stall, period)

    def test_faultless_wave_has_no_stalls(self):
        n = 96
        network = path(n)
        rng = RandomSource(4)
        protocols = make_fastbc_protocols(
            network, rng, decay_interleave=False
        )
        outcome = run_broadcast(
            network, protocols, FaultConfig.faultless(), rng.spawn(),
            max_rounds=50_000,
        )
        assert outcome.success
        timeline = extract_progress(protocols)
        period = 2 * 6 * ilog2(n)
        stalls, _ = stall_gaps(
            timeline, list(range(1, n)), stall_threshold=period // 2
        )
        assert stalls == []
