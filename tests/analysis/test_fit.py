"""Scaling-law fitting: exact recovery on synthetic curves, AIC selection."""

import math

import pytest

from repro.analysis import fit, fit_polylog, fit_power_law, fit_scaling


class TestPowerLaw:
    def test_exact_recovery(self):
        xs = [8, 16, 32, 64, 128]
        ys = [3.0 * x**1.5 for x in xs]
        model = fit_power_law(xs, ys)
        assert model["exponent"] == pytest.approx(1.5, abs=1e-9)
        assert model["coefficient"] == pytest.approx(3.0, rel=1e-9)
        assert model["r2_log"] == pytest.approx(1.0)

    def test_flat_curve_has_zero_exponent(self):
        model = fit_power_law([8, 16, 32], [7.0, 7.0, 7.0])
        assert model["exponent"] == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2, -3], [1, 2, 3])
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3], [1, 2])


class TestPolylog:
    def test_exact_recovery_of_log2_model(self):
        xs = [8, 16, 32, 64, 128, 256]
        ys = [10.0 + 5.0 * math.log2(x) ** 2 for x in xs]
        models = {m["k"]: m for m in fit_polylog(xs, ys, max_k=3)}
        assert models[2]["D"] == pytest.approx(10.0, abs=1e-6)
        assert models[2]["c"] == pytest.approx(5.0, abs=1e-9)
        assert models[2]["rss"] == pytest.approx(0.0, abs=1e-12)

    def test_aic_selects_the_generating_model(self):
        xs = [8, 16, 32, 64, 128, 256, 512]
        for k_true in (1, 2, 3):
            ys = [4.0 + 2.0 * math.log2(x) ** k_true for x in xs]
            best = fit_scaling(xs, ys, max_k=3)["best"]
            assert best.get("k") == k_true, f"k={k_true} not selected"

    def test_constant_data_selects_constant(self):
        best = fit_scaling([8, 16, 32, 64], [5.0, 5.0, 5.0, 5.0])["best"]
        assert best["model"] == "constant"

    def test_power_law_data_selects_power_law(self):
        xs = [8, 16, 32, 64, 128, 256]
        ys = [0.5 * x**1.7 for x in xs]
        best = fit_scaling(xs, ys, max_k=3)["best"]
        assert best["model"] == "power_law"

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_polylog([1, 2, 3], [1, 2, 3])  # needs x > 1
        with pytest.raises(ValueError):
            fit_polylog([2, 3, 4], [1, 2, 3], max_k=-1)


class TestFitOverReports:
    def _fabricated(self):
        from repro.core.faults import FaultConfig
        from repro.runner import RunReport, Scenario

        reports = []
        for algorithm, exponent in (("decay", 1.0), ("fastbc", 0.5)):
            for n in (16, 32, 64, 128):
                for seed in range(3):
                    scenario = Scenario(
                        algorithm=algorithm,
                        topology="path",
                        topology_params={"n": n},
                        faults=FaultConfig.receiver(0.3),
                        seed=seed,
                    )
                    reports.append(
                        RunReport(
                            scenario=scenario.describe(),
                            algorithm=algorithm,
                            success=True,
                            rounds=int(10 * n**exponent),
                            informed=n,
                            total=n,
                            network_n=n,
                            network_name=f"path-{n}",
                            cache_key=scenario.cache_key(),
                        )
                    )
        return reports

    def test_fit_recovers_per_group_exponents(self):
        report = fit(self._fabricated(), by=("algorithm",))
        by_name = {row["algorithm"]: row for row in report.rows}
        assert by_name["decay"]["exponent"] == pytest.approx(1.0, abs=0.01)
        assert by_name["fastbc"]["exponent"] == pytest.approx(0.5, abs=0.01)
        assert by_name["decay"]["points"] == 4
        assert report.kind == "fit"
        assert report.cache_key()  # canonical and addressable

    def test_too_few_points_reported_not_dropped(self):
        reports = [
            r for r in self._fabricated() if r.network_n in (16, 32)
        ]
        report = fit(reports, by=("algorithm",))
        for row in report.rows:
            assert row["points"] == 2
            assert row["exponent"] is None

    def test_x_cannot_be_a_group_dimension(self):
        with pytest.raises(ValueError):
            fit(self._fabricated(), by=("n",), x="n")
