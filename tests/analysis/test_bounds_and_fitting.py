"""Tests for concentration bounds and growth-rate fitting."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import (
    chernoff_binomial_lower_tail,
    chernoff_binomial_upper_tail,
    chernoff_geometric_sum_tail,
    union_bound,
)
from repro.analysis.fitting import growth_exponent, linear_fit, loglog_slope
from repro.util.rng import RandomSource


class TestGeometricSumBound:
    """Theorem 34 must upper bound the exact tail."""

    def test_decreases_in_delta(self):
        assert chernoff_geometric_sum_tail(50, 2.0) < chernoff_geometric_sum_tail(
            50, 0.5
        )

    def test_decreases_in_n(self):
        assert chernoff_geometric_sum_tail(200, 1.0) < chernoff_geometric_sum_tail(
            20, 1.0
        )

    @given(
        n=st.integers(min_value=5, max_value=60),
        p=st.floats(min_value=0.2, max_value=0.9),
        delta=st.floats(min_value=0.5, max_value=3.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_bounds_empirical_tail(self, n, p, delta):
        """Monte-Carlo check: empirical tail <= bound (+ noise margin)."""
        rng = RandomSource(int(n * 1000 + delta * 100))
        trials = 400
        threshold = (1 + delta) * n / p
        exceed = 0
        for _ in range(trials):
            total = sum(rng.geometric(p) for _ in range(n))
            exceed += total >= threshold
        bound = chernoff_geometric_sum_tail(n, delta)
        assert exceed / trials <= bound + 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            chernoff_geometric_sum_tail(0, 1.0)
        with pytest.raises(ValueError):
            chernoff_geometric_sum_tail(10, 0.0)


class TestBinomialBounds:
    def test_upper_tail_bound_holds_empirically(self):
        rng = RandomSource(3)
        n, p, delta = 100, 0.3, 0.5
        trials = 2000
        exceed = sum(
            sum(rng.bernoulli(p) for _ in range(n)) >= (1 + delta) * n * p
            for _ in range(trials)
        )
        assert exceed / trials <= chernoff_binomial_upper_tail(n, p, delta) + 0.02

    def test_lower_tail_bound_holds_empirically(self):
        rng = RandomSource(4)
        n, p, delta = 100, 0.5, 0.4
        trials = 2000
        below = sum(
            sum(rng.bernoulli(p) for _ in range(n)) <= (1 - delta) * n * p
            for _ in range(trials)
        )
        assert below / trials <= chernoff_binomial_lower_tail(n, p, delta) + 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            chernoff_binomial_upper_tail(10, 0.5, -1.0)
        with pytest.raises(ValueError):
            chernoff_binomial_lower_tail(10, 0.5, 1.5)


class TestUnionBound:
    def test_sums(self):
        assert union_bound(0.1, 0.2) == pytest.approx(0.3)

    def test_caps_at_one(self):
        assert union_bound(0.8, 0.7) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            union_bound(-0.1)


class TestFitting:
    def test_linear_fit_exact(self):
        slope, intercept = linear_fit([0, 1, 2], [1, 3, 5])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_linear_fit_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1], [2])
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])

    def test_loglog_slope_quadratic(self):
        xs = [2, 4, 8, 16]
        ys = [x**2 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(2.0)

    def test_loglog_slope_flat(self):
        assert loglog_slope([2, 4, 8], [5, 5, 5]) == pytest.approx(0.0)

    def test_loglog_requires_positive(self):
        with pytest.raises(ValueError):
            loglog_slope([0, 1], [1, 2])

    def test_growth_exponent_linear(self):
        xs = [10, 20, 40]
        ys = [3 * x for x in xs]
        assert growth_exponent(xs, ys) == pytest.approx(1.0)
