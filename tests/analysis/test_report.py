"""AnalysisReport: canonical form, content addressing, rendering."""

import json

import pytest

from repro.analysis import AnalysisReport


def _sample(meta=None):
    return AnalysisReport(
        kind="aggregate",
        params={"by": ["algorithm"], "metric": "rounds"},
        columns=("algorithm", "count", "mean"),
        rows=[
            {"algorithm": "decay", "count": 5, "mean": 102.8},
            {"algorithm": "rlnc_decay", "count": 5, "mean": 585.8},
        ],
        summary={"title": "t", "groups": 2},
        meta=meta or {},
    )


class TestCanonicalForm:
    def test_round_trip(self):
        report = _sample(meta={"wall_time_s": 1.5})
        clone = AnalysisReport.from_dict(report.to_dict())
        assert clone.to_json(canonical=True) == report.to_json(canonical=True)
        assert clone.meta == report.meta

    def test_meta_excluded_from_canonical(self):
        plain = _sample()
        timed = _sample(meta={"wall_time_s": 123.0, "executed": 7})
        assert timed.to_json(canonical=True) == plain.to_json(canonical=True)
        assert "meta" in timed.to_dict()
        assert "meta" not in timed.to_dict(include_meta=False)

    def test_cache_key_ignores_meta_and_is_stable(self):
        assert _sample().cache_key() == _sample(meta={"x": 1}).cache_key()
        different = AnalysisReport.from_dict(
            {**_sample().to_dict(), "kind": "compare"}
        )
        assert different.cache_key() != _sample().cache_key()

    def test_cache_key_present_in_dict(self):
        data = _sample().to_dict()
        assert data["cache_key"] == _sample().cache_key()
        # canonical bytes parse back to the same payload
        parsed = json.loads(_sample().to_json(canonical=True))
        assert parsed["cache_key"] == data["cache_key"]

    def test_row_schema_enforced(self):
        with pytest.raises(ValueError):
            AnalysisReport(
                kind="aggregate",
                params={},
                columns=("a", "b"),
                rows=[{"a": 1}],
                summary={},
            )

    def test_numpy_scalars_coerced(self):
        import numpy as np

        report = AnalysisReport(
            kind="fit",
            params={"seed": np.int64(3)},
            columns=("x",),
            rows=[{"x": np.float64(1.5)}],
            summary={"n": np.int32(2)},
        )
        data = json.loads(report.to_json())
        assert data["params"]["seed"] == 3
        assert data["rows"][0]["x"] == 1.5


class TestRendering:
    def test_to_table_renders_all_formats(self):
        table = _sample().to_table()
        assert len(table) == 2
        assert table.to_text() and table.to_csv() and table.to_markdown()

    def test_dict_cells_render_as_json(self):
        report = AnalysisReport(
            kind="adaptive",
            params={},
            columns=("cell", "mean"),
            rows=[{"cell": {"n": 16}, "mean": 5.0}],
            summary={},
        )
        assert '{"n": 16}' in report.to_table().to_text()
