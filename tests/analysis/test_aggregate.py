"""Streaming aggregation: cross-check property against raw reports.

The load-bearing test here is the ISSUE-5 satellite: every statistic
``analysis.aggregate`` computes over a store must equal the same
statistic recomputed directly from the raw ``RunReport`` dicts — over a
sampled sweep that includes adversary scenarios, so the denormalized
store columns (the fast streaming path) are proven consistent with the
canonical JSON they summarize.
"""

import pytest

from repro.analysis import aggregate
from repro.core.faults import AdversaryConfig, FaultConfig
from repro.runner import Scenario, expand_grid, run_batch
from repro.store import ResultStore
from repro.util.stats import (
    bootstrap_ci,
    mean,
    percentile,
    stddev,
    wilson_interval,
)
from repro.analysis.aggregate import group_seed


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """A mixed sweep (faults + two adversary models) in a store."""
    store = ResultStore(
        str(tmp_path_factory.mktemp("aggregate") / "sweep.db")
    )
    base = Scenario(
        algorithm="decay",
        topology="path",
        topology_params={"n": 12},
        faults=FaultConfig.receiver(0.3),
        seed=0,
    )
    scenarios = expand_grid(
        base,
        seeds=range(4),
        grid={"algorithm": ["decay", "fastbc"], "n": [12, 16]},
    )
    scenarios += expand_grid(
        base.with_(faults=FaultConfig.faultless()),
        seeds=range(4),
        grid={
            "adversary": [
                AdversaryConfig("gilbert_elliott", {"p_bad": 0.8}),
                AdversaryConfig(
                    "budgeted_jammer", {"per_round": 1, "budget": 32}
                ),
            ],
        },
    )
    reports = run_batch(scenarios, store=store)
    yield store, reports
    store.close()


class TestCrossCheckProperty:
    """aggregate(store) == the same statistics from raw report dicts."""

    @pytest.mark.parametrize(
        "by",
        [
            ("algorithm",),
            ("algorithm", "n"),
            ("adversary",),
            ("fault_model", "fault_p"),
            ("algorithm", "adversary", "seed"),
        ],
    )
    def test_every_statistic_matches_raw_recompute(self, sweep, by):
        store, reports = sweep
        report = aggregate(store, by=by, seed=3)

        # recompute straight from the raw report dicts, no store involved
        def dimension(raw, name):
            scenario = raw["scenario"]
            if name == "n":
                return raw["network_n"]
            if name == "adversary":
                adversary = scenario.get("adversary")
                return adversary["kind"] if adversary else ""
            if name == "fault_model":
                return str(scenario.get("faults", {}).get("model", "none"))
            if name == "fault_p":
                return float(scenario.get("faults", {}).get("p", 0.0))
            if name == "seed":
                return scenario.get("seed", 0)
            return raw[name]

        groups = {}
        for raw in (r.to_dict() for r in reports):
            key = tuple(dimension(raw, name) for name in by)
            groups.setdefault(key, []).append(raw)

        assert len(report.rows) == len(groups)
        for row in report.rows:
            key = tuple(row[name] for name in by)
            raws = groups[key]
            values = [float(raw["rounds"]) for raw in raws]
            successes = sum(1 for raw in raws if raw["success"])
            assert row["count"] == len(values)
            assert row["mean"] == pytest.approx(mean(values))
            assert row["stddev"] == pytest.approx(stddev(values))
            for q, name in ((5.0, "p5"), (50.0, "p50"), (95.0, "p95")):
                assert row[name] == pytest.approx(percentile(values, q))
            assert row["success_rate"] == pytest.approx(successes / len(values))
            low, high = wilson_interval(successes, len(values))
            assert (row["success_low"], row["success_high"]) == (
                pytest.approx(low),
                pytest.approx(high),
            )
            # aggregate sorts before resampling so the interval depends
            # on the multiset of values, not their arrival order
            ci_low, ci_high = bootstrap_ci(
                sorted(values), seed=group_seed(3, key, salt="rounds")
            )
            assert (row["ci_low"], row["ci_high"]) == (
                pytest.approx(ci_low),
                pytest.approx(ci_high),
            )

    def test_store_and_report_sources_agree_bytewise(self, sweep):
        store, reports = sweep
        from_store = aggregate(store, by=("algorithm", "adversary"))
        from_reports = aggregate(reports, by=("algorithm", "adversary"))
        assert from_store.to_json(canonical=True) == from_reports.to_json(
            canonical=True
        )
        assert from_store.cache_key() == from_reports.cache_key()

    def test_row_order_independent(self, sweep):
        store, reports = sweep
        forward = aggregate(reports, by=("algorithm",))
        backward = aggregate(list(reversed(reports)), by=("algorithm",))
        assert forward.to_json(canonical=True) == backward.to_json(
            canonical=True
        )


class TestAggregateSurface:
    def test_filters_push_down(self, sweep):
        store, reports = sweep
        filtered = aggregate(store, by=("algorithm",), filters={"algorithm": "decay"})
        assert [row["algorithm"] for row in filtered.rows] == ["decay"]
        direct = aggregate(
            [r for r in reports if r.algorithm == "decay"], by=("algorithm",)
        )
        # same statistics; the canonical params legitimately differ (the
        # filter set is part of the analysis identity)
        assert filtered.rows == direct.rows
        assert filtered.summary["rows_scanned"] == direct.summary["rows_scanned"]

    def test_rounds_per_message_metric_uses_reports(self, sweep):
        store, _ = sweep
        report = aggregate(store, by=("algorithm",), metric="rounds_per_message")
        # decay runs have k=1, so per-message rounds == rounds
        plain = aggregate(store, by=("algorithm",), metric="rounds")
        by_name = {row["algorithm"]: row for row in report.rows}
        plain_by_name = {row["algorithm"]: row for row in plain.rows}
        assert by_name["decay"]["mean"] == pytest.approx(
            plain_by_name["decay"]["mean"]
        )

    def test_bad_dimension_and_metric_rejected(self, sweep):
        store, _ = sweep
        with pytest.raises(ValueError):
            aggregate(store, by=("flavor",))
        with pytest.raises(ValueError):
            aggregate(store, by=("algorithm",), metric="vibes")
        with pytest.raises(ValueError):
            aggregate(store, by=())

    def test_filters_rejected_for_report_iterables(self, sweep):
        _, reports = sweep
        with pytest.raises(ValueError):
            aggregate(reports, by=("algorithm",), filters={"algorithm": "decay"})
