"""Tests for the closed-form shape predictions."""

import pytest

from repro.analysis.predictions import (
    decay_rounds,
    fastbc_faultless_rounds,
    fastbc_noisy_path_rounds,
    robust_fastbc_rounds,
    single_link_adaptive_rounds,
    single_link_coding_rounds,
    single_link_nonadaptive_rounds,
    star_coding_rounds,
    star_routing_rounds,
    wct_coding_rounds,
    wct_routing_rounds,
)


class TestShapes:
    def test_decay_grows_with_d_times_logn(self):
        assert decay_rounds(1024, 200) > decay_rounds(1024, 100) * 1.8

    def test_decay_fault_slowdown(self):
        assert decay_rounds(256, 50, p=0.5) == pytest.approx(
            2 * decay_rounds(256, 50, p=0.0)
        )

    def test_fastbc_faultless_diameter_dominated(self):
        assert fastbc_faultless_rounds(256, 10_000) < 10_000 + 100

    def test_fastbc_noisy_faultless_limit(self):
        """p -> 0 leaves only the D/(1-p) term."""
        assert fastbc_noisy_path_rounds(256, 100, 0.0) == pytest.approx(100.0)

    def test_fastbc_noisy_log_factor(self):
        noisy = fastbc_noisy_path_rounds(2**16, 100, 0.5)
        assert noisy > 100 * 8  # ~ D log n at p = 1/2

    def test_robust_fastbc_additive_polylog(self):
        deep = robust_fastbc_rounds(256, 10_000, 0.3)
        assert deep < 10_000 * 1.1  # D dominates; additive term is small

    def test_star_routing_vs_coding_gap(self):
        n, k, p = 1024, 100, 0.5
        gap = star_routing_rounds(n, k, p) / star_coding_rounds(k, p)
        assert 2 < gap < 10  # ~ log2(1024)/2 = 5

    def test_star_routing_faultless(self):
        assert star_routing_rounds(64, 10, 0.0) == 10.0

    def test_wct_gap_is_logn(self):
        n, k = 4096, 64
        gap = wct_routing_rounds(n, k) / wct_coding_rounds(n, k)
        assert gap == pytest.approx(12.0)  # log2(4096)

    def test_single_link_shapes(self):
        k, p = 1024, 0.5
        nonadaptive = single_link_nonadaptive_rounds(k, p)
        adaptive = single_link_adaptive_rounds(k, p)
        coding = single_link_coding_rounds(k, p)
        assert adaptive == coding  # Lemma 33: constant gap
        assert nonadaptive / coding > 5  # Lemma 31: ~ log k gap

    def test_single_link_faultless(self):
        assert single_link_nonadaptive_rounds(16, 0.0) == 16.0
