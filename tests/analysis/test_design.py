"""Adaptive sweeps: convergence, widest-first allocation, free resume."""

import pytest

from repro.analysis import adaptive_sweep
from repro.core.faults import FaultConfig
from repro.runner import Scenario
from repro.store import ResultStore

BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 12},
    faults=FaultConfig.receiver(0.3),
    seed=0,
)


class TestAdaptiveSweep:
    def test_converges_and_reports_cells(self, tmp_path):
        with ResultStore(str(tmp_path / "a.db")) as store:
            report = adaptive_sweep(
                BASE,
                grid={"n": [12, 16]},
                target_halfwidth=8.0,
                max_seeds=16,
                batch=4,
                store=store,
            )
        assert report.kind == "adaptive"
        assert len(report.rows) == 2
        for row in report.rows:
            assert row["seeds"] >= 4
            assert row["ci_low"] <= row["mean"] <= row["ci_high"]
            if row["converged"]:
                assert row["halfwidth"] <= 8.0
        assert report.summary["total_runs"] == sum(
            row["seeds"] for row in report.rows
        )

    def test_tight_target_spends_more_seeds_than_loose(self, tmp_path):
        with ResultStore(str(tmp_path / "b.db")) as store:
            loose = adaptive_sweep(
                BASE, target_halfwidth=50.0, max_seeds=16, batch=4, store=store
            )
        with ResultStore(str(tmp_path / "c.db")) as store:
            tight = adaptive_sweep(
                BASE, target_halfwidth=1.0, max_seeds=16, batch=4, store=store
            )
        assert loose.summary["total_runs"] <= tight.summary["total_runs"]
        assert tight.rows[0]["seeds"] == 16  # budget exhausted

    def test_rerun_is_byte_identical_and_executes_nothing(self, tmp_path):
        with ResultStore(str(tmp_path / "d.db")) as store:
            first = adaptive_sweep(
                BASE,
                grid={"algorithm": ["decay", "fastbc"]},
                target_halfwidth=6.0,
                max_seeds=12,
                batch=4,
                store=store,
            )
            assert first.meta["executed"] == first.summary["total_runs"]
            second = adaptive_sweep(
                BASE,
                grid={"algorithm": ["decay", "fastbc"]},
                target_halfwidth=6.0,
                max_seeds=12,
                batch=4,
                store=store,
            )
        assert second.meta["executed"] == 0
        assert second.meta["served_from_store"] == second.summary["total_runs"]
        assert first.to_json(canonical=True) == second.to_json(canonical=True)
        assert first.cache_key() == second.cache_key()

    def test_kill_restart_converges_to_identical_bytes(self, tmp_path):
        """A sweep interrupted mid-flight resumes from the store for free."""
        path = str(tmp_path / "e.db")

        class _Killed(RuntimeError):
            pass

        calls = {"count": 0}

        def killer(done, bound):
            calls["count"] += 1
            if calls["count"] == 3:  # die mid-sweep
                raise _Killed()

        with ResultStore(path) as store:
            with pytest.raises(_Killed):
                adaptive_sweep(
                    BASE,
                    grid={"n": [12, 16]},
                    target_halfwidth=5.0,
                    max_seeds=12,
                    batch=4,
                    store=store,
                    progress=killer,
                )
            partial = len(store)
            assert partial > 0

        # a fresh process (fresh store handle) replays the prefix from
        # cache and finishes the rest
        with ResultStore(path) as store:
            resumed = adaptive_sweep(
                BASE,
                grid={"n": [12, 16]},
                target_halfwidth=5.0,
                max_seeds=12,
                batch=4,
                store=store,
            )
            assert resumed.meta["served_from_store"] >= partial
        with ResultStore(str(tmp_path / "f.db")) as store:
            uninterrupted = adaptive_sweep(
                BASE,
                grid={"n": [12, 16]},
                target_halfwidth=5.0,
                max_seeds=12,
                batch=4,
                store=store,
            )
        assert resumed.to_json(canonical=True) == uninterrupted.to_json(
            canonical=True
        )

    def test_works_without_a_store(self):
        report = adaptive_sweep(
            BASE, target_halfwidth=20.0, max_seeds=8, batch=4
        )
        assert report.meta["executed"] == report.summary["total_runs"]
        assert report.meta["store_path"] == ""

    def test_progress_callback_sees_monotonic_counts(self, tmp_path):
        seen = []
        with ResultStore(str(tmp_path / "g.db")) as store:
            adaptive_sweep(
                BASE,
                target_halfwidth=10.0,
                max_seeds=12,
                batch=4,
                store=store,
                progress=lambda done, bound: seen.append((done, bound)),
            )
        assert seen == sorted(seen)
        assert all(bound == 12 for _, bound in seen)

    def test_validation(self):
        with pytest.raises(ValueError):
            adaptive_sweep(BASE, target_halfwidth=0.0)
        with pytest.raises(ValueError):
            adaptive_sweep(BASE, batch=0)
        with pytest.raises(ValueError):
            adaptive_sweep(BASE, max_seeds=2, batch=4)
        with pytest.raises(ValueError):
            adaptive_sweep(BASE, metric="vibes")
