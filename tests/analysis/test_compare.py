"""Paired comparison: exact sign test, matched pairing, certification."""

import math

import pytest

from repro.analysis import compare, sign_test
from repro.core.faults import FaultConfig
from repro.runner import RunReport, Scenario


class TestSignTest:
    def test_closed_form_small_cases(self):
        # P(all 5 one way) * 2 = 2/32
        assert sign_test(5, 0) == pytest.approx(2 / 32)
        assert sign_test(0, 5) == pytest.approx(2 / 32)
        # balanced outcomes are never significant
        assert sign_test(3, 3) == pytest.approx(1.0)

    def test_matches_exact_binomial_tail(self):
        wins, losses = 9, 3
        n = wins + losses
        tail = sum(math.comb(n, i) for i in range(losses + 1)) / 2**n
        assert sign_test(wins, losses) == pytest.approx(2 * tail)

    def test_degenerate_and_invalid(self):
        assert sign_test(0, 0) == 1.0
        with pytest.raises(ValueError):
            sign_test(-1, 2)


def _fabricated(ratio=2.0, trials=8, sizes=(16, 32)):
    """Two arms where decay is exactly `ratio` times slower per pair."""
    reports = []
    for algorithm in ("decay", "rlnc_decay"):
        for n in sizes:
            for seed in range(trials):
                scenario = Scenario(
                    algorithm=algorithm,
                    topology="path",
                    topology_params={"n": n},
                    params={"k": 4} if algorithm == "rlnc_decay" else {},
                    faults=FaultConfig.receiver(0.3),
                    seed=seed,
                )
                base_rounds = 50 + 3 * n + 5 * seed
                rounds = (
                    int(base_rounds * ratio)
                    if algorithm == "decay"
                    else base_rounds
                )
                reports.append(
                    RunReport(
                        scenario=scenario.describe(),
                        algorithm=algorithm,
                        success=True,
                        rounds=rounds,
                        informed=n,
                        total=n,
                        network_n=n,
                        network_name=f"path-{n}",
                        cache_key=scenario.cache_key(),
                    )
                )
    return reports


class TestCompare:
    def test_certifies_a_constructed_gap(self):
        report = compare(
            _fabricated(ratio=2.0),
            arm_a={"algorithm": "decay"},
            arm_b={"algorithm": "rlnc_decay"},
            match_on=("n", "seed"),
        )
        summary = report.summary
        assert summary["pairs"] == 16
        assert summary["mean_ratio"] == pytest.approx(2.0, abs=0.01)
        assert summary["significant"] is True
        assert summary["ratio_ci_low"] > 1.0
        assert summary["wins"] == 16 and summary["losses"] == 0
        assert summary["sign_test_p"] < 1e-3

    def test_identical_arms_not_significant(self):
        report = compare(
            _fabricated(ratio=1.0),
            arm_a={"algorithm": "decay"},
            arm_b={"algorithm": "rlnc_decay"},
            match_on=("n", "seed"),
        )
        assert report.summary["significant"] is False
        assert report.summary["sign_test_p"] == 1.0

    def test_per_group_rows_carry_both_means(self):
        report = compare(
            _fabricated(ratio=2.0),
            arm_a={"algorithm": "decay"},
            arm_b={"algorithm": "rlnc_decay"},
            match_on=("n", "seed"),
        )
        assert [row["n"] for row in report.rows] == [16, 32]
        for row in report.rows:
            assert row["mean_a"] == pytest.approx(2.0 * row["mean_b"], abs=1.0)

    def test_per_message_metric_divides_by_k(self):
        report = compare(
            _fabricated(ratio=2.0),
            arm_a={"algorithm": "decay"},
            arm_b={"algorithm": "rlnc_decay"},
            metric="rounds_per_message",
            match_on=("n", "seed"),
        )
        # B runs carry k=4, so the per-message ratio is 4x the raw one
        assert report.summary["mean_ratio"] == pytest.approx(8.0, abs=0.05)

    def test_deterministic_bytes(self):
        a = compare(
            _fabricated(),
            arm_a={"algorithm": "decay"},
            arm_b={"algorithm": "rlnc_decay"},
            match_on=("n", "seed"),
        )
        b = compare(
            list(reversed(_fabricated())),
            arm_a={"algorithm": "decay"},
            arm_b={"algorithm": "rlnc_decay"},
            match_on=("n", "seed"),
        )
        assert a.to_json(canonical=True) == b.to_json(canonical=True)
        assert a.cache_key() == b.cache_key()

    def test_no_matched_pairs_raises(self):
        reports = [r for r in _fabricated() if r.algorithm == "decay"]
        with pytest.raises(ValueError):
            compare(
                reports,
                arm_a={"algorithm": "decay"},
                arm_b={"algorithm": "rlnc_decay"},
            )

    def test_overlapping_arms_rejected(self):
        reports = _fabricated()
        with pytest.raises(ValueError, match="arms overlap"):
            compare(
                reports,
                arm_a={"topology": "path"},
                arm_b={"algorithm": "decay"},
                match_on=("n", "seed"),
            )

    def test_adversary_none_spelling_matches_fault_coin_rows(self):
        # the store layer spells "no adversary" as "" but documents the
        # "none" filter spelling; arms must honor both
        reports = _fabricated(ratio=2.0)
        report = compare(
            reports,
            arm_a={"algorithm": "decay", "adversary": "none"},
            arm_b={"algorithm": "rlnc_decay"},
            match_on=("n", "seed"),
        )
        assert report.summary["pairs"] == 16

    def test_validation(self):
        reports = _fabricated()
        with pytest.raises(ValueError):
            compare(reports, arm_a={}, arm_b={"algorithm": "x"})
        with pytest.raises(ValueError):
            compare(
                reports,
                arm_a={"flavor": "x"},
                arm_b={"algorithm": "decay"},
            )
        with pytest.raises(ValueError):
            compare(
                reports,
                arm_a={"algorithm": "decay"},
                arm_b={"algorithm": "rlnc_decay"},
                metric="vibes",
            )
