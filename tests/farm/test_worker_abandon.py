"""Worker abandon-on-410: stop computing a chunk whose lease is gone.

The heartbeat thread learns the lease died (expiry under an injected
coordinator clock, or a coordinator restart) and signals the executing
chunk, which stops at the next scenario boundary instead of finishing
work the coordinator will only count as duplicates. The coordinator is
driven in-process through a shim client, so no sockets and no real
lease timing are involved — the only real-time element is the heartbeat
thread itself, synchronized through events.
"""

import threading

import pytest

import repro.farm.worker as worker_module
from repro.core.faults import FaultConfig
from repro.farm import Coordinator
from repro.runner import Scenario, expand_grid
from repro.service.client import ServiceError
from repro.service.jobs import Job
from repro.store import ResultStore

BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 12},
    faults=FaultConfig.receiver(0.2),
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class InProcessClient:
    """A ServiceClient stand-in that talks to a Coordinator directly,
    translating farm exceptions to the HTTP statuses the worker sees."""

    def __init__(self, coordinator: Coordinator) -> None:
        self.coordinator = coordinator

    def _call(self, method, *args, **kwargs):
        from repro.farm import UnknownLease, UnknownWorker

        try:
            return method(*args, **kwargs)
        except UnknownLease as error:
            raise ServiceError(410, str(error)) from None
        except UnknownWorker as error:
            raise ServiceError(404, str(error)) from None

    def register_worker(self, name=""):
        return self._call(self.coordinator.register, name)

    def lease(self, worker_id, max_scenarios=None):
        return self._call(
            self.coordinator.lease, worker_id, max_scenarios=max_scenarios
        )

    def heartbeat(self, lease_id, worker_id):
        return self._call(self.coordinator.heartbeat, lease_id, worker_id)

    def complete(self, lease_id, worker_id, reports, executed=0, cached=0):
        return self._call(
            self.coordinator.complete, lease_id, worker_id, reports,
            executed=executed, cached=cached,
        )

    def fail(self, lease_id, worker_id, message):
        return self._call(self.coordinator.fail, lease_id, worker_id, message)

    def workers(self):
        return self._call(self.coordinator.snapshot)


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def store(tmp_path):
    with ResultStore(str(tmp_path / "farm.db")) as opened:
        yield opened


@pytest.fixture()
def coordinator(store, clock):
    wall = FakeClock(1_000_000.0)
    return Coordinator(
        store, lease_scenarios=8, lease_timeout=10.0, clock=clock, wall=wall
    )


def _worker(coordinator) -> worker_module.FarmWorker:
    worker = worker_module.FarmWorker("http://in-process", name="t")
    worker.client = InProcessClient(coordinator)
    worker.register()
    worker.heartbeat_s = 0.005  # tick fast; the loop is the only real time
    return worker


def test_heartbeat_410_sets_the_abandon_signal(coordinator, clock):
    """The wiring: heartbeat meets an expired lease -> abandon is set."""
    coordinator.add_job(Job("job-0001", expand_grid(BASE, seeds=range(4))))
    worker = _worker(coordinator)
    lease = worker.client.lease(worker.worker_id)
    clock.advance(11.0)  # the lease dies under the injected clock
    stop = threading.Event()
    abandon = threading.Event()
    worker._heartbeat_loop(lease["id"], stop, abandon)  # runs inline
    assert abandon.is_set()


def test_execute_stops_at_the_next_scenario_boundary(coordinator, monkeypatch):
    """_execute checks the signal between scenarios, not after the
    whole chunk: a mid-chunk abandon returns the finished prefix only."""
    scenarios = expand_grid(BASE, seeds=range(6))
    worker = _worker(coordinator)
    abandon = threading.Event()
    real_run_batch = worker_module.run_batch
    calls = []

    def run_batch_then_abandon(batch, **kwargs):
        calls.append(len(batch))
        reports = real_run_batch(batch, **kwargs)
        if len(calls) == 2:
            abandon.set()
        return reports

    monkeypatch.setattr(worker_module, "run_batch", run_batch_then_abandon)
    reports, executed, cached = worker._execute(scenarios, abandon)
    # two sub-chunks ran (stride 1), then the signal stopped the rest
    assert calls == [1, 1]
    assert len(reports) == 2
    assert executed == 2
    assert cached == 0


def test_abandoned_chunk_is_requeued_and_finished_by_rerun(
    coordinator, clock, store, monkeypatch
):
    """End to end under the injected clock: the lease expires mid-chunk,
    the heartbeat thread flags it, the worker pushes only its finished
    prefix (absorbed as late), and a re-lease completes the job with
    zero duplicates."""
    job = Job("job-0001", expand_grid(BASE, seeds=range(8)))
    coordinator.add_job(job)
    worker = _worker(coordinator)

    real_run_batch = worker_module.run_batch
    abandon_observed = threading.Event()
    calls = []

    def run_batch_with_expiry(batch, **kwargs):
        reports = real_run_batch(batch, **kwargs)
        calls.append(len(batch))
        if len(calls) == 2:
            # the lease's deadline lapses while scenario 2 is in flight;
            # wait for the heartbeat thread to notice before returning,
            # so the boundary check is deterministic
            clock.advance(11.0)
            assert abandon_observed.wait(timeout=10.0), "heartbeat never saw 410"
        return reports

    real_loop = worker_module.FarmWorker._heartbeat_loop

    def loop_then_flag(self, lease_id, stop, abandon=None):
        real_loop(self, lease_id, stop, abandon)
        if abandon is not None and abandon.is_set():
            abandon_observed.set()

    monkeypatch.setattr(worker_module, "run_batch", run_batch_with_expiry)
    monkeypatch.setattr(
        worker_module.FarmWorker, "_heartbeat_loop", loop_then_flag
    )

    lease = worker.client.lease(worker.worker_id)
    assert len(lease["scenarios"]) == 8
    worker.run_lease(lease)
    assert worker.leases_abandoned == 1
    assert calls == [1, 1]  # six scenarios were never computed
    assert job.completed == 2  # the late prefix was absorbed

    # the expired chunk's remainder is re-leased and finished cleanly
    monkeypatch.setattr(worker_module, "run_batch", real_run_batch)
    monkeypatch.setattr(worker_module.FarmWorker, "_heartbeat_loop", real_loop)
    lease2 = worker.client.lease(worker.worker_id)
    assert len(lease2["scenarios"]) == 6
    worker.run_lease(lease2)
    assert job.status == "done"
    assert job.completed == 8
    assert coordinator.duplicates == 0
    assert all(key in store for key in job.cache_keys)
