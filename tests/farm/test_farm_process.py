"""Satellite acceptance: real coordinator + 3 worker processes, kill one.

Thin pytest wrapper over :func:`repro.farm.smoke.run_smoke`, which
spawns ``repro serve --workers remote`` plus three ``repro worker``
subprocesses, SIGKILLs one observed holding a lease, and checks the
farm recovers with a store byte-identical to serial ``run_batch`` and
exactly one recorded execution per scenario.
"""

from repro.farm.smoke import SCENARIOS, run_smoke


def test_kill_a_worker_mid_sweep_full_recovery():
    evidence = run_smoke(verbose=False)
    assert evidence["scenarios"] == SCENARIOS >= 100
    assert evidence["leases_expired"] >= 1
    assert evidence["duplicates"] == 0
    assert evidence["executed"] == evidence["scenarios"]
