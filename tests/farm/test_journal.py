"""The farm_journal table: the StoreBackend journal contract.

The journal is coordinator state riding in the result store — ordered,
replaceable, and (for the sharded engine) living on exactly one shard
so there is a single total order to replay.
"""

import pytest

from repro.store import ResultStore


@pytest.fixture(params=["single", "sharded"])
def store(request, tmp_path):
    if request.param == "single":
        opened = ResultStore(str(tmp_path / "journal.db"))
    else:
        opened = ResultStore(str(tmp_path / "journal-shards"), shards=3)
    with opened:
        yield opened


class TestJournalContract:
    def test_starts_empty(self, store):
        assert store.journal_size() == 0
        assert store.journal_records() == []

    def test_append_preserves_order(self, store):
        store.journal_append([("job", "{}"), ("grant", '{"a": 1}')])
        store.journal_append([("beat", '{"b": 2}')])
        records = store.journal_records()
        assert [(kind, payload) for _seq, kind, payload in records] == [
            ("job", "{}"), ("grant", '{"a": 1}'), ("beat", '{"b": 2}'),
        ]
        seqs = [seq for seq, _kind, _payload in records]
        assert seqs == sorted(seqs)
        assert store.journal_size() == 3

    def test_replace_swaps_the_whole_journal(self, store):
        store.journal_append([("job", "{}")] * 5)
        store.journal_replace([("grant", '{"compact": true}')])
        records = store.journal_records()
        assert len(records) == 1
        assert records[0][1] == "grant"
        assert store.journal_size() == 1

    def test_replace_with_empty_clears(self, store):
        store.journal_append([("job", "{}")])
        store.journal_replace([])
        assert store.journal_size() == 0

    def test_journal_survives_reopen(self, store):
        store.journal_append([("job", '{"id": "job-1"}')])
        path = store.path
        store.close()
        # an existing store reopens with its own layout (sharded or not)
        with ResultStore(path) as again:
            records = again.journal_records()
            assert [(k, p) for _s, k, p in records] == [
                ("job", '{"id": "job-1"}')
            ]

    def test_stats_reports_journal_size(self, store):
        assert store.stats()["journal_records"] == 0
        store.journal_append([("job", "{}"), ("job", "{}")])
        assert store.stats()["journal_records"] == 2


def test_sharded_journal_lives_on_shard_zero(tmp_path):
    """One journal, one replay order — shard 0 owns it, and report
    routing never touches it."""
    with ResultStore(str(tmp_path / "farm"), shards=3) as store:
        store.journal_append([("job", "{}")])
        backends = store.backend._backends
        import sqlite3

        counts = []
        for backend in backends:
            connection = sqlite3.connect(backend.path)
            counts.append(
                connection.execute(
                    "SELECT COUNT(*) FROM farm_journal"
                ).fetchone()[0]
            )
            connection.close()
        assert counts == [1, 0, 0]
