"""Coordinator lease semantics under an injected clock.

Every timing-sensitive path — deadline expiry, heartbeat extension,
late completion — runs against a fake monotonic clock, so the tests
are exact, not sleep-and-hope.
"""

import pytest

from repro.core.faults import FaultConfig
from repro.farm import Coordinator, UnknownLease, UnknownWorker
from repro.farm.coordinator import MAX_ATTEMPTS
from repro.runner import Scenario, expand_grid, run_batch
from repro.service.jobs import Job
from repro.store import ResultStore

BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 12},
    faults=FaultConfig.receiver(0.2),
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def store(tmp_path):
    with ResultStore(str(tmp_path / "farm.db")) as opened:
        yield opened


@pytest.fixture()
def coordinator(store, clock):
    return Coordinator(store, lease_scenarios=4, lease_timeout=10.0, clock=clock)


def _job(job_id="job-1", seeds=range(10)):
    return Job(job_id, expand_grid(BASE, seeds=seeds))


def _reports_for(scenarios):
    return run_batch(list(scenarios))


class TestLeasing:
    def test_lease_requires_registration(self, coordinator):
        coordinator.add_job(_job())
        with pytest.raises(UnknownWorker):
            coordinator.lease("w-9999")

    def test_chunks_partition_the_job(self, coordinator):
        job = _job(seeds=range(10))
        coordinator.add_job(job)
        worker = coordinator.register("a")["worker"]
        sizes = []
        keys = []
        while True:
            lease = coordinator.lease(worker)
            if lease is None:
                break
            sizes.append(len(lease["scenarios"]))
            keys.extend(
                Scenario.from_dict(s).cache_key() for s in lease["scenarios"]
            )
        assert sizes == [4, 4, 2]
        assert keys == job.cache_keys  # every scenario exactly once

    def test_max_scenarios_caps_the_chunk(self, coordinator):
        coordinator.add_job(_job())
        worker = coordinator.register("a")["worker"]
        lease = coordinator.lease(worker, max_scenarios=2)
        assert len(lease["scenarios"]) == 2

    def test_idle_queue_leases_none(self, coordinator):
        worker = coordinator.register("a")["worker"]
        assert coordinator.lease(worker) is None
        assert coordinator.idle()

    def test_store_cached_scenarios_complete_at_submit(self, coordinator, store):
        job = _job(seeds=range(4))
        store.put_many(_reports_for(job.scenarios))
        coordinator.add_job(job)
        assert job.status == "done"
        assert job.completed == job.total
        worker = coordinator.register("a")["worker"]
        assert coordinator.lease(worker) is None


class TestCompletion:
    def test_complete_marks_done_and_stores(self, coordinator, store):
        job = _job(seeds=range(4))
        coordinator.add_job(job)
        worker = coordinator.register("a")["worker"]
        lease = coordinator.lease(worker)
        scenarios = [Scenario.from_dict(s) for s in lease["scenarios"]]
        ack = coordinator.complete(
            lease["id"], worker, _reports_for(scenarios), executed=4
        )
        assert ack == {
            "stored": 4, "completed": 4, "duplicates": 0, "late": False
        }
        assert job.completed == 4
        assert job.status == "done"
        assert all(s.cache_key() in store for s in scenarios)

    def test_duplicate_completion_counts_not_inflates(self, coordinator):
        job = _job(seeds=range(4))
        coordinator.add_job(job)
        worker = coordinator.register("a")["worker"]
        lease = coordinator.lease(worker)
        scenarios = [Scenario.from_dict(s) for s in lease["scenarios"]]
        reports = _reports_for(scenarios)
        coordinator.complete(lease["id"], worker, reports)
        # the same bytes again, through a second (fabricated) path
        ack = coordinator.complete("lease-bogus", worker, reports)
        assert ack["completed"] == 0
        assert ack["duplicates"] == 4
        assert ack["late"] is True
        assert job.completed == 4  # never double-counted
        assert coordinator.duplicates == 4

    def test_unknown_worker_cannot_complete(self, coordinator):
        coordinator.add_job(_job())
        with pytest.raises(UnknownWorker):
            coordinator.complete("lease-000001", "w-9999", [])


class TestExpiry:
    def test_expired_lease_requeues_to_front(self, coordinator, clock):
        job = _job(seeds=range(8))
        coordinator.add_job(job)
        worker = coordinator.register("a")["worker"]
        first = coordinator.lease(worker)
        clock.advance(11.0)  # past the 10s deadline
        again = coordinator.lease(worker)
        assert again["scenarios"] == first["scenarios"]  # same chunk, front
        assert coordinator.leases_expired == 1

    def test_heartbeat_extends_the_deadline(self, coordinator, clock):
        coordinator.add_job(_job())
        worker = coordinator.register("a")["worker"]
        lease = coordinator.lease(worker)
        for _ in range(5):
            clock.advance(8.0)
            coordinator.heartbeat(lease["id"], worker)
        clock.advance(8.0)  # 48s of wall time, never 10s unheartbeated
        assert coordinator.heartbeat(lease["id"], worker)["id"] == lease["id"]

    def test_heartbeat_after_expiry_raises_unknown_lease(
        self, coordinator, clock
    ):
        coordinator.add_job(_job())
        worker = coordinator.register("a")["worker"]
        lease = coordinator.lease(worker)
        clock.advance(11.0)
        with pytest.raises(UnknownLease):
            coordinator.heartbeat(lease["id"], worker)

    def test_late_completion_is_absorbed(self, coordinator, clock):
        job = _job(seeds=range(4))
        coordinator.add_job(job)
        worker = coordinator.register("a")["worker"]
        lease = coordinator.lease(worker)
        scenarios = [Scenario.from_dict(s) for s in lease["scenarios"]]
        clock.advance(11.0)
        ack = coordinator.complete(lease["id"], worker, _reports_for(scenarios))
        assert ack["late"] is True
        assert ack["completed"] == 4
        assert job.completed == 4
        # the requeued copies are skipped as already-done on re-lease
        assert coordinator.lease(worker) is None

    def test_expiry_keeps_progress_counters_consistent(
        self, coordinator, clock
    ):
        """A lost lease never moves ``completed``; a finished job's
        counter equals its total no matter how many leases died."""
        job = _job(seeds=range(8))
        coordinator.add_job(job)
        worker = coordinator.register("a")["worker"]
        lost = coordinator.lease(worker)
        assert lost is not None and job.completed == 0
        clock.advance(11.0)
        while True:
            lease = coordinator.lease(worker)
            if lease is None:
                break
            scenarios = [Scenario.from_dict(s) for s in lease["scenarios"]]
            coordinator.complete(
                lease["id"], worker, _reports_for(scenarios),
                executed=len(scenarios),
            )
        assert job.completed == job.total == 8
        assert job.status == "done"
        assert coordinator.scenarios_completed == 8
        assert coordinator.duplicates == 0


class TestFailure:
    def test_fail_requeues_then_quarantines(self, coordinator):
        """Scenarios that fail MAX_ATTEMPTS times are quarantined; a job
        with nothing completed at all ends ``failed``."""
        job = _job(seeds=range(2))
        coordinator.add_job(job)
        worker = coordinator.register("a")["worker"]
        for attempt in range(MAX_ATTEMPTS):
            lease = coordinator.lease(worker)
            assert lease is not None, f"no lease on attempt {attempt}"
            coordinator.fail(lease["id"], worker, "boom")
        assert job.status == "failed"
        assert "quarantined" in job.error
        assert set(job.quarantined) == set(job.cache_keys)
        assert all("boom" in error for error in job.quarantined.values())
        # quarantined scenarios are no longer leased out
        assert coordinator.lease(worker) is None

    def test_poison_scenario_quarantined_job_finishes_partial(
        self, coordinator
    ):
        """One poison scenario no longer sinks the job: the rest
        complete and the job ends ``partial`` with the error mapped."""
        job = _job(seeds=range(2))
        coordinator.add_job(job)
        worker = coordinator.register("a")["worker"]
        # fail the first scenario alone MAX_ATTEMPTS times
        for _ in range(MAX_ATTEMPTS):
            lease = coordinator.lease(worker, max_scenarios=1)
            assert lease["scenarios"][0]["seed"] == 0
            coordinator.fail(lease["id"], worker, "poison")
        # the survivor completes normally
        lease = coordinator.lease(worker)
        scenarios = [Scenario.from_dict(s) for s in lease["scenarios"]]
        assert [s.seed for s in scenarios] == [1]
        coordinator.complete(lease["id"], worker, _reports_for(scenarios))
        assert job.status == "partial"
        assert job.completed == 1
        assert list(job.quarantined) == [job.cache_keys[0]]
        snapshot = coordinator.snapshot()
        assert snapshot["queue"]["quarantined_scenarios"] == 1
        assert snapshot["quarantined"] == [
            {"job": job.id, "key": job.cache_keys[0], "error": "poison"}
        ]

    def test_late_success_beats_quarantine(self, coordinator):
        """A report landing for a quarantined scenario un-quarantines
        it — the store holds the bytes, so the scenario is simply done."""
        job = _job(seeds=range(1))
        coordinator.add_job(job)
        worker = coordinator.register("a")["worker"]
        for _ in range(MAX_ATTEMPTS):
            lease = coordinator.lease(worker)
            coordinator.fail(lease["id"], worker, "flaky")
        assert job.status == "failed"
        # job status is terminal, but the scenario record still heals
        coordinator.complete(
            "lease-bogus", worker, _reports_for(job.scenarios)
        )
        assert job.quarantined == {}
        assert job.completed == 1
        assert coordinator.snapshot()["queue"]["quarantined_scenarios"] == 0

    def test_expiry_never_quarantines(self, coordinator, clock):
        """Lost leases requeue without prejudice: only *reported*
        failures count toward MAX_ATTEMPTS."""
        job = _job(seeds=range(2))
        coordinator.add_job(job)
        worker = coordinator.register("a")["worker"]
        for _ in range(MAX_ATTEMPTS + 2):
            lease = coordinator.lease(worker)
            assert lease is not None
            clock.advance(11.0)  # expire it
        assert job.quarantined == {}
        assert job.status == "running"

    def test_fail_unknown_lease_raises(self, coordinator):
        worker = coordinator.register("a")["worker"]
        with pytest.raises(UnknownLease):
            coordinator.fail("lease-000042", worker, "boom")


class TestSnapshot:
    def test_snapshot_counters(self, coordinator, clock):
        job = _job(seeds=range(8))
        coordinator.add_job(job)
        alive = coordinator.register("alive")["worker"]
        dead = coordinator.register("dead")["worker"]
        coordinator.lease(dead)
        clock.advance(11.0)
        lease = coordinator.lease(alive)
        scenarios = [Scenario.from_dict(s) for s in lease["scenarios"]]
        coordinator.complete(
            lease["id"], alive, _reports_for(scenarios), executed=3, cached=1
        )
        snapshot = coordinator.snapshot()
        by_name = {w["name"]: w for w in snapshot["workers"]}
        assert by_name["dead"]["leases_lost"] == 1
        assert by_name["alive"]["leases_completed"] == 1
        assert by_name["alive"]["executed"] == 3
        assert by_name["alive"]["cached"] == 1
        queue = snapshot["queue"]
        assert queue["leases_issued"] == 2
        assert queue["leases_expired"] == 1
        assert queue["scenarios_completed"] == 4
        assert queue["pending_scenarios"] == 4
