"""Coordinator crash recovery from the store journal, under fake clocks.

Every test rebuilds a second Coordinator from the same store via
``Coordinator.recover`` — the exact move ``repro serve --recover`` makes
after a crash — with both the monotonic clock and the wall clock
injected, so deadline-resumption arithmetic is tested exactly.
"""

import pytest

from repro.core.faults import FaultConfig
from repro.farm import Coordinator, UnknownWorker
from repro.farm.coordinator import MAX_ATTEMPTS
from repro.runner import Scenario, expand_grid, run_batch
from repro.service.jobs import Job, JobManager
from repro.store import ResultStore

BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 12},
    faults=FaultConfig.receiver(0.2),
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def wall():
    # wall time starts far from monotonic zero, so any accidental
    # mixing of the two clocks shows up as a wild deadline
    return FakeClock(1_000_000.0)


@pytest.fixture()
def store(tmp_path):
    with ResultStore(str(tmp_path / "farm.db")) as opened:
        yield opened


def _coordinator(store, clock, wall, **kwargs):
    kwargs.setdefault("lease_scenarios", 4)
    kwargs.setdefault("lease_timeout", 10.0)
    return Coordinator(store, clock=clock, wall=wall, **kwargs)


def _recover(store, clock, wall, **kwargs):
    kwargs.setdefault("lease_scenarios", 4)
    kwargs.setdefault("lease_timeout", 10.0)
    return Coordinator.recover(store, clock=clock, wall=wall, **kwargs)


def _job(job_id="job-0001", seeds=range(8)):
    return Job(job_id, expand_grid(BASE, seeds=seeds))


def _reports_for(scenarios):
    return run_batch(list(scenarios))


def _advance(clock, wall, seconds):
    clock.advance(seconds)
    wall.advance(seconds)


class TestRecoverState:
    def test_empty_journal_recovers_empty(self, store, clock, wall):
        coordinator = _recover(store, clock, wall)
        assert coordinator.jobs() == []
        assert coordinator.recovered == {
            "jobs": 0, "leases": 0, "pending_scenarios": 0
        }

    def test_jobs_and_progress_recover(self, store, clock, wall):
        first = _coordinator(store, clock, wall)
        job = _job(seeds=range(8))
        first.add_job(job)
        worker = first.register("a")["worker"]
        lease = first.lease(worker)
        scenarios = [Scenario.from_dict(s) for s in lease["scenarios"]]
        first.complete(lease["id"], worker, _reports_for(scenarios))

        second = _recover(store, clock, wall)
        jobs = second.jobs()
        assert [j.id for j in jobs] == [job.id]
        recovered = jobs[0]
        # done-ness re-derived from the store: 4 completed, 4 pending
        assert recovered.completed == 4
        assert recovered.status == "running"
        assert recovered.cache_keys == job.cache_keys
        # a fresh worker drains exactly the unfinished half
        worker2 = second.register("b")["worker"]
        lease2 = second.lease(worker2)
        keys2 = [
            Scenario.from_dict(s).cache_key() for s in lease2["scenarios"]
        ]
        assert keys2 == job.cache_keys[4:]
        second.complete(
            lease2["id"], worker2,
            _reports_for([Scenario.from_dict(s) for s in lease2["scenarios"]]),
        )
        assert recovered.status == "done"
        assert recovered.completed == 8

    def test_sweep_across_crash_is_byte_identical(self, tmp_path, clock, wall):
        """Half the sweep before the 'crash', half after recovery: the
        store equals a serial run_batch byte for byte."""
        scenarios = expand_grid(BASE, seeds=range(8))
        with ResultStore(str(tmp_path / "farm.db")) as store:
            first = _coordinator(store, clock, wall)
            first.add_job(Job("job-0001", scenarios))
            worker = first.register("a")["worker"]
            lease = first.lease(worker)
            first.complete(
                lease["id"], worker,
                _reports_for(
                    [Scenario.from_dict(s) for s in lease["scenarios"]]
                ),
            )
            # crash: the first coordinator simply stops being consulted
            second = _recover(store, clock, wall)
            worker2 = second.register("b")["worker"]
            while True:
                lease = second.lease(worker2)
                if lease is None:
                    break
                second.complete(
                    lease["id"], worker2,
                    _reports_for(
                        [Scenario.from_dict(s) for s in lease["scenarios"]]
                    ),
                )
            assert second.jobs()[0].status == "done"
            for scenario, report in zip(scenarios, run_batch(scenarios)):
                assert store.get_json(scenario.cache_key()) == report.to_json(
                    canonical=True
                )

    def test_fresh_coordinator_discards_stale_journal(self, store, clock, wall):
        first = _coordinator(store, clock, wall)
        first.add_job(_job())
        assert store.journal_size() > 0
        _coordinator(store, clock, wall)  # fresh start, no recover
        assert store.journal_size() == 0

    def test_attempts_and_quarantine_recover(self, store, clock, wall):
        first = _coordinator(store, clock, wall)
        job = _job(seeds=range(2))
        first.add_job(job)
        worker = first.register("a")["worker"]
        # one reported failure each for both scenarios...
        lease = first.lease(worker)
        first.fail(lease["id"], worker, "boom")
        # ...then quarantine one of them outright
        for _ in range(MAX_ATTEMPTS - 1):
            lease = first.lease(worker, max_scenarios=1)
            first.fail(lease["id"], worker, "poison")

        second = _recover(store, clock, wall)
        recovered = second.jobs()[0]
        assert list(recovered.quarantined) == [job.cache_keys[0]]
        # the second scenario carries one strike: two more failures
        # quarantine it, not three
        worker2 = second.register("b")["worker"]
        for _ in range(MAX_ATTEMPTS - 1):
            lease = second.lease(worker2)
            assert lease is not None
            second.fail(lease["id"], worker2, "still boom")
        assert recovered.status == "failed"
        assert len(recovered.quarantined) == 2

    def test_id_counters_advance_past_the_journal(self, store, clock, wall):
        first = _coordinator(store, clock, wall)
        first.add_job(_job())
        worker = first.register("a")["worker"]
        first.lease(worker)

        second = _recover(store, clock, wall)
        # new registrations and leases never collide with journaled ids
        assert second.register("b")["worker"] != worker
        lease2 = second.lease(second.register("c")["worker"])
        assert lease2["id"] != "lease-000001"


class TestLeaseResumption:
    def test_inflight_lease_resumes_remaining_deadline(
        self, store, clock, wall
    ):
        first = _coordinator(store, clock, wall)
        first.add_job(_job(seeds=range(4)))
        worker = first.register("a")["worker"]
        lease = first.lease(worker)
        # 4s of the 10s deadline burn before the crash, 3s of downtime
        _advance(clock, wall, 4.0)
        _advance(clock, wall, 3.0)
        second = _recover(store, clock, wall)
        # the holder is pre-registered and can still heartbeat: the
        # lease has 3s left, so at +2s it is alive...
        _advance(clock, wall, 2.0)
        assert second.heartbeat(lease["id"], worker)["id"] == lease["id"]
        # ...and the heartbeat re-armed the full timeout
        _advance(clock, wall, 9.0)
        assert second.heartbeat(lease["id"], worker)["id"] == lease["id"]

    def test_downtime_counts_against_the_deadline(self, store, clock, wall):
        """A lease that expired while the coordinator was down requeues
        on the first call after recovery — no stall, no zombie lease."""
        first = _coordinator(store, clock, wall)
        job = _job(seeds=range(4))
        first.add_job(job)
        worker = first.register("a")["worker"]
        first.lease(worker)
        _advance(clock, wall, 60.0)  # the whole deadline passes while down
        second = _recover(store, clock, wall)
        worker2 = second.register("b")["worker"]
        lease2 = second.lease(worker2)
        assert lease2 is not None  # the dead lease's chunk, requeued
        assert [
            Scenario.from_dict(s).cache_key() for s in lease2["scenarios"]
        ] == job.cache_keys
        assert second.leases_expired == 1

    def test_inflight_completion_lands_after_recovery(
        self, store, clock, wall
    ):
        """The restart neither double-executes nor stalls: the original
        holder completes its resumed lease and the job finishes without
        any scenario being re-leased."""
        first = _coordinator(store, clock, wall)
        job = _job(seeds=range(4))
        first.add_job(job)
        worker = first.register("a")["worker"]
        lease = first.lease(worker)
        _advance(clock, wall, 2.0)
        second = _recover(store, clock, wall)
        scenarios = [Scenario.from_dict(s) for s in lease["scenarios"]]
        ack = second.complete(
            lease["id"], worker, _reports_for(scenarios), executed=4
        )
        assert ack["late"] is False  # the lease was alive across the crash
        assert ack["completed"] == 4
        assert ack["duplicates"] == 0
        recovered = second.jobs()[0]
        assert recovered.status == "done"
        assert recovered.completed == recovered.total == 4

    def test_unknown_workers_get_404_after_restart(self, store, clock, wall):
        """A worker with no in-flight lease is forgotten by the restart
        and must re-register (the worker loop does this on 404)."""
        first = _coordinator(store, clock, wall)
        first.add_job(_job())
        idle_worker = first.register("idle")["worker"]
        second = _recover(store, clock, wall)
        with pytest.raises(UnknownWorker):
            second.lease(idle_worker)
        assert second.register("idle")["worker"]


class TestCompaction:
    def test_long_job_recovers_byte_identically_from_compacted_journal(
        self, store, clock, wall
    ):
        """Satellite: many lease cycles, aggressive compaction — the
        journal stays bounded and recovery is exact."""
        first = _coordinator(store, clock, wall, compact_every=8)
        job = _job(seeds=range(16))
        first.add_job(job)
        worker = first.register("a")["worker"]
        # churn: expire a lease, heartbeat a lot, fail one, complete some
        for cycle in range(12):
            lease = first.lease(worker, max_scenarios=1)
            if lease is None:
                break
            if cycle % 3 == 0:
                _advance(clock, wall, 11.0)  # expire it
            elif cycle % 3 == 1:
                first.heartbeat(lease["id"], worker)
                first.fail(lease["id"], worker, f"churn-{cycle}")
            else:
                first.complete(
                    lease["id"], worker,
                    _reports_for(
                        [Scenario.from_dict(s) for s in lease["scenarios"]]
                    ),
                )
        # journal bounded: at most one record per job + attempts +
        # quarantine + outstanding lease, plus < compact_every appends
        assert store.journal_size() <= 8 + 4

        before = first.snapshot()
        second = _recover(store, clock, wall, compact_every=8)
        after = second.snapshot()
        assert (
            after["queue"]["pending_scenarios"]
            == before["queue"]["pending_scenarios"]
        )
        assert (
            after["queue"]["quarantined_scenarios"]
            == before["queue"]["quarantined_scenarios"]
        )
        assert after["quarantined"] == before["quarantined"]
        recovered = second.jobs()[0]
        assert recovered.completed == job.completed
        assert recovered.quarantined == job.quarantined

        # drain to done/partial and check byte identity for everything
        # that was not quarantined
        worker2 = second.register("b")["worker"]
        while True:
            lease = second.lease(worker2)
            if lease is None:
                break
            second.complete(
                lease["id"], worker2,
                _reports_for(
                    [Scenario.from_dict(s) for s in lease["scenarios"]]
                ),
            )
        assert recovered.status in ("done", "partial")
        direct = run_batch(job.scenarios)
        for scenario, report in zip(job.scenarios, direct):
            key = scenario.cache_key()
            if key in recovered.quarantined:
                continue
            assert store.get_json(key) == report.to_json(canonical=True)

    def test_quarantine_survives_aggressive_compaction(
        self, store, clock, wall
    ):
        """compact_every=1 rewrites the journal after every append; the
        quarantine record (with its key and error) must still replay."""
        first = _coordinator(store, clock, wall, compact_every=1)
        job = _job(seeds=range(2))
        first.add_job(job)
        worker = first.register("a")["worker"]
        for _ in range(MAX_ATTEMPTS):
            lease = first.lease(worker, max_scenarios=1)
            first.fail(lease["id"], worker, "poison")
        assert list(job.quarantined) == [job.cache_keys[0]]
        second = _recover(store, clock, wall, compact_every=1)
        recovered = second.jobs()[0]
        assert recovered.quarantined == {job.cache_keys[0]: "poison"}
        snapshot = second.snapshot()
        assert snapshot["quarantined"] == [
            {"job": job.id, "key": job.cache_keys[0], "error": "poison"}
        ]

    def test_recover_compacts_once_on_startup(self, store, clock, wall):
        first = _coordinator(store, clock, wall)
        job = _job(seeds=range(8))
        first.add_job(job)
        worker = first.register("a")["worker"]
        for _ in range(6):
            lease = first.lease(worker)
            first.heartbeat(lease["id"], worker)
            first.fail(lease["id"], worker, "x")
        raw_size = store.journal_size()
        second = _recover(store, clock, wall)
        # startup compaction rewrote history as a snapshot
        assert store.journal_size() < raw_size
        assert second.jobs()[0].completed == 0


class TestServiceAdoption:
    def test_job_manager_adopts_recovered_jobs(self, store, clock, wall):
        first = _coordinator(store, clock, wall)
        first.add_job(_job("job-0003", seeds=range(2)))
        second = _recover(store, clock, wall)
        manager = JobManager(store, coordinator=second)
        # the recovered job answers under its original id
        assert manager.get("job-0003") is not None
        # and new submissions never collide with recovered ids
        job = manager.submit(expand_grid(BASE, seeds=[100]))
        assert job.id == "job-0004"
