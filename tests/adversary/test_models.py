"""Unit tests for the adversary models, registry, and scenario wiring."""

import random

import numpy as np
import pytest

from repro.adversary import (
    AdversaryParam,
    BudgetedJammer,
    EdgeChurn,
    GilbertElliott,
    IIDFaults,
    all_adversaries,
    as_adversary,
    build_adversary,
    get_adversary_type,
)
from repro.core.engine import Channel, Simulator
from repro.core.faults import AdversaryConfig, FaultConfig, FaultModel
from repro.core.packets import MessagePacket
from repro.runner import Scenario, run
from repro.topologies import basic, random_graphs

PACKET = MessagePacket(0)


def _drive(channel: Channel, rounds: int, action_seed: int = 0) -> list:
    sampler = random.Random(action_seed)
    results = []
    for _ in range(rounds):
        n = channel.network.n
        actions = {v: PACKET for v in sampler.sample(range(n), sampler.randint(0, n))}
        results.append(channel.transmit(actions))
    return results


class TestRegistry:
    def test_all_four_models_registered(self):
        names = [kind.name for kind in all_adversaries()]
        assert names == [
            "budgeted_jammer",
            "edge_churn",
            "gilbert_elliott",
            "iid",
        ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError, match="unknown adversary"):
            get_adversary_type("emp_blast")
        with pytest.raises(KeyError, match="unknown adversary"):
            build_adversary(AdversaryConfig("emp_blast"))

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown parameters"):
            build_adversary(AdversaryConfig("gilbert_elliott", {"p_bda": 0.5}))

    def test_build_merges_defaults(self):
        adversary = build_adversary(
            AdversaryConfig("budgeted_jammer", {"per_round": 3})
        )
        assert adversary.per_round == 3
        assert adversary.policy == "frontier"  # declared default

    def test_as_adversary_coercions(self):
        assert as_adversary(None) is None
        instance = GilbertElliott()
        assert as_adversary(instance) is instance
        built = as_adversary(AdversaryConfig("edge_churn"))
        assert isinstance(built, EdgeChurn)
        with pytest.raises(TypeError):
            as_adversary("edge_churn")

    def test_declared_params_have_docs(self):
        for kind in all_adversaries():
            for param in kind.params:
                assert isinstance(param, AdversaryParam)
                assert param.doc, f"{kind.name}.{param.name} lacks a doc"

    def test_instance_cannot_bind_twice(self):
        instance = GilbertElliott()
        Channel(basic.path(4), adversary=instance)
        with pytest.raises(ValueError, match="already bound"):
            Channel(basic.path(4), adversary=instance)


class TestAdversaryConfig:
    def test_round_trip(self):
        config = AdversaryConfig("edge_churn", {"p_down": 0.25})
        assert AdversaryConfig.from_dict(config.to_dict()) == config

    def test_params_normalized_to_dict(self):
        config = AdversaryConfig("iid", {"p": 0.1})
        assert isinstance(config.params, dict)

    def test_bad_kind_rejected(self):
        with pytest.raises(TypeError):
            AdversaryConfig("")
        with pytest.raises(TypeError):
            AdversaryConfig(3)
        with pytest.raises(TypeError):
            AdversaryConfig("iid", params="p=0.1")

    def test_str_is_compact(self):
        assert str(AdversaryConfig("iid")) == "iid"
        assert "p_down=0.2" in str(AdversaryConfig("edge_churn", {"p_down": 0.2}))


class TestIIDFaultsSubsumesFaultConfig:
    """Acceptance criterion: same seed => byte-identical reports."""

    @pytest.mark.parametrize("model", ["sender", "receiver"])
    def test_channel_streams_identical(self, model):
        network = random_graphs.gnp(40, 0.2, rng=2)
        faults = FaultConfig(FaultModel(model), 0.35)
        legacy = Channel(network, faults, rng=9)
        adversarial = Channel(
            network,
            rng=9,
            adversary=AdversaryConfig("iid", {"model": model, "p": 0.35}),
        )
        for got, want in zip(_drive(adversarial, 10), _drive(legacy, 10)):
            assert got.deliveries == want.deliveries
            assert got.noise_receivers == want.noise_receivers
            assert got.faulty_senders == want.faulty_senders
        assert adversarial.counters.as_dict() == legacy.counters.as_dict()

    @pytest.mark.parametrize(
        "algorithm,params",
        [("decay", {}), ("robust_fastbc", {}), ("rlnc_decay", {"k": 2})],
    )
    def test_runner_reports_byte_identical(self, algorithm, params):
        common = dict(
            algorithm=algorithm,
            topology="gnp",
            topology_params={"n": 24, "seed": 3},
            params=params,
            seed=5,
        )
        legacy = Scenario(faults=FaultConfig.receiver(0.3), **common)
        adversarial = Scenario(
            adversary=AdversaryConfig("iid", {"model": "receiver", "p": 0.3}),
            **common,
        )
        # canonicalization makes them the *same* scenario...
        assert legacy == adversarial
        # ...and the canonical reports match byte for byte
        assert run(legacy).to_json(canonical=True) == run(adversarial).to_json(
            canonical=True
        )

    def test_legacy_scenario_dict_is_unchanged(self):
        """Fault-coin scenarios serialize exactly as before the adversary
        subsystem existed (no new key => no canonical-report drift)."""
        scenario = Scenario(
            algorithm="decay", faults=FaultConfig.receiver(0.3), seed=1
        )
        assert "adversary" not in scenario.to_dict()

    def test_simulator_accepts_faultconfig_and_adversary_exclusively(self):
        protocols_factory = lambda: [_NullProtocol() for _ in range(3)]
        Simulator(basic.path(3), protocols_factory(), adversary=IIDFaults())
        with pytest.raises(ValueError, match="not both"):
            Simulator(
                basic.path(3),
                protocols_factory(),
                FaultConfig.receiver(0.2),
                adversary=IIDFaults(),
            )
        with pytest.raises(TypeError):
            Channel(basic.path(3), adversary="iid")


class _NullProtocol:
    active = False

    def act(self, round_index):
        return None

    def on_receive(self, round_index, packet, sender):
        pass

    def is_done(self):
        return True


class TestGilbertElliott:
    def test_all_bad_loses_everything(self):
        # p_bad=1.0 — the classic Gilbert total-loss parameterization —
        # is valid (closed interval, unlike FaultConfig's half-open p)
        network = basic.star(10)
        channel = Channel(
            network,
            rng=1,
            adversary=GilbertElliott(
                p_bad=1.0, p_enter=1.0, p_exit=0.0, start_bad=True
            ),
        )
        for _ in range(5):
            result = channel.transmit({0: PACKET})
            assert result.deliveries == []
            assert result.noise_receivers == list(range(1, 11))

    def test_never_bad_is_clean(self):
        network = basic.star(10)
        channel = Channel(
            network, rng=1, adversary=GilbertElliott(p_bad=0.9, p_enter=0.0)
        )
        result = channel.transmit({0: PACKET})
        assert len(result.deliveries) == 10

    def test_nominal_p_is_stationary_loss(self):
        ge = GilbertElliott(p_bad=0.8, p_good=0.0, p_enter=0.1, p_exit=0.3)
        assert ge.nominal_p == pytest.approx(0.8 * 0.1 / 0.4)

    def test_burstiness_correlates_losses(self):
        """With slow transitions, consecutive-round losses at one node are
        far more correlated than i.i.d. coins at the same average rate."""
        network = basic.star(1)
        channel = Channel(
            network,
            rng=3,
            adversary=GilbertElliott(
                p_bad=1.0, p_good=0.0, p_enter=0.02, p_exit=0.1
            ),
        )
        outcomes = []
        for _ in range(4000):
            result = channel.transmit({0: PACKET})
            outcomes.append(0 if result.deliveries else 1)
        lost = np.asarray(outcomes)
        rate = lost.mean()
        assert 0.05 < rate < 0.4  # near the stationary 1/6
        joint = (lost[1:] & lost[:-1]).mean()
        assert joint > 2.0 * rate * rate  # streaks, not coin flips


class TestBudgetedJammer:
    def test_budget_and_per_round_cap_respected(self):
        network = random_graphs.gnp(30, 0.3, rng=4)
        jammer = BudgetedJammer(per_round=2, budget=9, policy="random")
        channel = Channel(network, rng=5, adversary=jammer)
        total = 0
        for result in _drive(channel, 30, action_seed=2):
            assert len(result.noise_receivers) <= 2
            total += len(result.noise_receivers)
        assert total == jammer.spent <= 9
        assert channel.counters.receiver_faults == jammer.spent

    def test_unlimited_budget_jams_every_round(self):
        network = basic.star(6)
        channel = Channel(
            network, rng=1, adversary=BudgetedJammer(per_round=10)
        )
        for _ in range(4):
            result = channel.transmit({0: PACKET})
            assert result.deliveries == []
            assert len(result.noise_receivers) == 6

    def test_max_degree_policy_targets_hubs(self):
        # path 0-1-2: broadcasting from 1 reaches both ends; jam 1 slot.
        # On a 4-path 0-1-2-3 broadcasting {0, 3} reaches 1 and 2 (equal
        # degree); tie breaks to the lowest id.
        network = basic.path(4)
        channel = Channel(
            network, rng=1, adversary=BudgetedJammer(per_round=1, policy="max_degree")
        )
        result = channel.transmit({0: PACKET, 3: PACKET})
        assert result.noise_receivers == [1]
        assert [d.receiver for d in result.deliveries] == [2]

    def test_frontier_policy_prefers_first_receptions(self):
        network = basic.star(4)  # hub 0, leaves 1..4
        jammer = BudgetedJammer(per_round=1, policy="frontier")
        channel = Channel(network, rng=1, adversary=jammer)
        first = channel.transmit({0: PACKET})
        jammed_first = first.noise_receivers[0]
        # the three delivered leaves are now "informed"; the jammer keeps
        # chasing the one leaf that has never received
        second = channel.transmit({0: PACKET})
        assert second.noise_receivers == [jammed_first]

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            BudgetedJammer(policy="psychic")

    def test_nominal_p_inflates_round_budgets(self):
        # budgets must plan for jamming, not for a faultless channel
        assert BudgetedJammer().nominal_p == 0.5


class TestEdgeChurn:
    def test_never_down_matches_no_adversary(self):
        network = random_graphs.gnp(25, 0.25, rng=6)
        churned = Channel(network, rng=2, adversary=EdgeChurn(p_down=0.0))
        plain = Channel(network, rng=2)
        for got, want in zip(
            _drive(churned, 8, action_seed=1), _drive(plain, 8, action_seed=1)
        ):
            assert got.deliveries == want.deliveries
            assert got.collision_receivers == want.collision_receivers

    def test_all_down_delivers_nothing(self):
        network = basic.star(8)
        channel = Channel(
            network,
            rng=1,
            adversary=EdgeChurn(p_down=1.0, p_up=0.0, start_down=True),
        )
        for _ in range(3):
            result = channel.transmit({0: PACKET})
            assert result.deliveries == []
            assert result.collision_receivers == []
            assert result.noise_receivers == []

    def test_down_edge_removes_collision_contribution(self):
        """A listener whose other neighbor's edge is down receives cleanly
        instead of colliding: churn rewires, it does not just erase."""
        network = basic.path(3)  # 1 hears 0 and 2
        seen_clean_delivery = False
        for seed in range(40):
            channel = Channel(
                network, rng=seed, adversary=EdgeChurn(p_down=0.5, p_up=0.2)
            )
            result = channel.transmit({0: PACKET, 2: PACKET})
            if [d.receiver for d in result.deliveries] == [1]:
                seen_clean_delivery = True
                break
        assert seen_clean_delivery

    def test_churn_slows_but_does_not_break_decay(self):
        from repro import decay_broadcast

        outcome = decay_broadcast(
            basic.path(24),
            rng=3,
            adversary=AdversaryConfig("edge_churn", {"p_down": 0.2, "p_up": 0.6}),
        )
        assert outcome.success


class TestScenarioWiring:
    def test_round_trip_with_adversary(self):
        scenario = Scenario(
            algorithm="rlnc_decay",
            topology="grid",
            topology_params={"n": 16},
            params={"k": 2},
            adversary=AdversaryConfig("budgeted_jammer", {"budget": 10}),
            seed=4,
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario
        assert scenario.to_dict()["adversary"]["kind"] == "budgeted_jammer"

    def test_adversary_requires_channel_algorithm(self):
        for algorithm in ("star_coding", "single_link_routing"):
            with pytest.raises(ValueError, match="does not support adversary"):
                Scenario(
                    algorithm=algorithm,
                    adversary=AdversaryConfig("gilbert_elliott"),
                )

    def test_adversary_and_faults_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            Scenario(
                algorithm="decay",
                faults=FaultConfig.receiver(0.2),
                adversary=AdversaryConfig("edge_churn"),
            )

    def test_adversary_type_checked(self):
        with pytest.raises(TypeError, match="AdversaryConfig"):
            Scenario(algorithm="decay", adversary="edge_churn")

    def test_sweep_grid_over_adversaries(self):
        from repro.runner import expand_grid

        base = Scenario(algorithm="decay", topology_params={"n": 8})
        scenarios = expand_grid(
            base,
            seeds=[0, 1],
            grid={
                "adversary": [
                    None,
                    AdversaryConfig("gilbert_elliott"),
                    AdversaryConfig("edge_churn"),
                ]
            },
        )
        assert len(scenarios) == 6
        kinds = {
            s.adversary.kind if s.adversary else None for s in scenarios
        }
        assert kinds == {None, "gilbert_elliott", "edge_churn"}

    def test_report_embeds_adversary(self):
        report = run(
            Scenario(
                algorithm="decay",
                topology_params={"n": 12},
                adversary=AdversaryConfig("gilbert_elliott", {"p_bad": 0.5}),
                seed=2,
            )
        )
        assert report.scenario["adversary"] == {
            "kind": "gilbert_elliott",
            "params": {"p_bad": 0.5},
        }
