"""Property tests: every adversary is kernel-independent and deterministic.

Extends the ``tests/core/test_channel_vectorized.py`` pattern to the
adversary subsystem: for every registered adversary model, the
vectorized and scalar channel kernels must agree delivery for delivery
over >= 40 sampled (topology, seed, adversary-param) configurations, and
rebuilding the same configuration from the same seed must reproduce the
run byte for byte — at the channel level (round streams) and at the
runner level (canonical RunReport JSON).
"""

import random

import pytest

from repro.adversary import all_adversaries
from repro.core.engine import Channel
from repro.core.faults import AdversaryConfig
from repro.core.packets import MessagePacket
from repro.runner import Scenario, run
from repro.topologies import basic, random_graphs

PACKET = MessagePacket(0)

ADVERSARY_KINDS = tuple(kind.name for kind in all_adversaries())


def _sample_network(sampler: random.Random, config_index: int):
    kind = sampler.choice(["gnp", "star", "path", "cycle", "grid", "caterpillar"])
    n = sampler.randint(2, 64)
    if kind == "gnp":
        return random_graphs.gnp(
            max(n, 4), min(1.0, 8.0 / max(n, 4)), rng=config_index
        )
    if kind == "star":
        return basic.star(max(1, n - 1))
    if kind == "cycle":
        return basic.cycle(max(3, n))
    if kind == "grid":
        side = max(2, round(n**0.5))
        return basic.grid(side, side)
    if kind == "caterpillar":
        return basic.caterpillar(max(1, n // 4), 3)
    return basic.path(n)


def _sample_params(kind: str, sampler: random.Random) -> dict:
    """Random but valid parameters for one adversary model."""
    if kind == "iid":
        model = sampler.choice(["none", "sender", "receiver"])
        return {
            "model": model,
            "p": 0.0 if model == "none" else sampler.uniform(0.0, 0.9),
        }
    if kind == "gilbert_elliott":
        return {
            "p_bad": sampler.uniform(0.2, 0.95),
            "p_good": sampler.uniform(0.0, 0.2),
            "p_enter": sampler.uniform(0.0, 0.5),
            "p_exit": sampler.uniform(0.05, 1.0),
            "start_bad": sampler.random() < 0.3,
        }
    if kind == "budgeted_jammer":
        return {
            "per_round": sampler.randint(1, 4),
            "budget": sampler.choice([None, sampler.randint(1, 60)]),
            "policy": sampler.choice(["random", "max_degree", "frontier"]),
        }
    if kind == "edge_churn":
        return {
            "p_down": sampler.uniform(0.0, 0.6),
            "p_up": sampler.uniform(0.1, 1.0),
            "start_down": sampler.random() < 0.3,
        }
    raise AssertionError(f"no sampler for adversary kind {kind!r}")


def _sample_actions(sampler: random.Random, n: int) -> dict:
    count = sampler.randint(0, n)
    return {v: PACKET for v in sampler.sample(range(n), count)}


def _assert_rounds_equal(a, b, context: str) -> None:
    assert a.round_index == b.round_index, context
    assert a.deliveries == b.deliveries, context
    assert a.noise_receivers == b.noise_receivers, context
    assert a.collision_receivers == b.collision_receivers, context
    assert a.faulty_senders == b.faulty_senders, context


class TestKernelEquivalence:
    @pytest.mark.parametrize("kind", ADVERSARY_KINDS)
    def test_vectorized_matches_scalar_across_sampled_configs(self, kind):
        """>= 40 sampled (topology, seed, adversary-param) configs per
        model, several rounds each with random broadcast sets."""
        # a stable per-kind seed (str hash is randomized per process)
        sampler = random.Random(sum(kind.encode()))
        for config_index in range(40):
            network = _sample_network(sampler, config_index)
            config = AdversaryConfig(kind, _sample_params(kind, sampler))
            seed = sampler.randrange(2**31)
            vectorized = Channel(
                network, rng=seed, kernel="vectorized", adversary=config
            )
            scalar = Channel(network, rng=seed, kernel="scalar", adversary=config)
            context = (
                f"config {config_index}: {network.name} n={network.n} "
                f"adversary={config} seed={seed}"
            )
            for _ in range(8):
                actions = _sample_actions(sampler, network.n)
                got = vectorized.transmit(dict(actions))
                want = scalar.transmit(dict(actions))
                _assert_rounds_equal(got, want, context)
            assert (
                vectorized.counters.as_dict() == scalar.counters.as_dict()
            ), context

    @pytest.mark.parametrize("kind", ADVERSARY_KINDS)
    def test_same_seed_rounds_are_byte_identical(self, kind):
        """Rebuilding the identical channel replays the identical run."""
        sampler = random.Random(len(kind))
        for config_index in range(5):
            network = _sample_network(sampler, config_index)
            config = AdversaryConfig(kind, _sample_params(kind, sampler))
            seed = sampler.randrange(2**31)
            action_seed = sampler.randrange(2**31)
            streams = []
            for _ in range(2):
                channel = Channel(network, rng=seed, adversary=config)
                actions_rng = random.Random(action_seed)
                rounds = [
                    channel.transmit(_sample_actions(actions_rng, network.n))
                    for _ in range(6)
                ]
                streams.append((rounds, channel.counters.as_dict()))
            (rounds_a, counters_a), (rounds_b, counters_b) = streams
            for got, want in zip(rounds_a, rounds_b):
                _assert_rounds_equal(got, want, f"{config} replay")
            assert counters_a == counters_b


class TestRunnerDeterminism:
    @pytest.mark.parametrize("kind", ADVERSARY_KINDS)
    def test_same_scenario_same_canonical_report(self, kind):
        """Runner level: same seed => byte-identical canonical JSON."""
        params = {
            "iid": {"model": "receiver", "p": 0.3},
            "gilbert_elliott": {"p_bad": 0.7},
            "budgeted_jammer": {"per_round": 1, "budget": 30},
            "edge_churn": {"p_down": 0.2},
        }[kind]
        scenario = Scenario(
            algorithm="decay",
            topology="gnp",
            topology_params={"n": 24, "seed": 5},
            adversary=AdversaryConfig(kind, params),
            seed=11,
        )
        first = run(scenario).to_json(canonical=True)
        second = run(scenario).to_json(canonical=True)
        assert first == second
