"""Scenario validation and serialization."""

import pytest

from repro.core.faults import FaultConfig, FaultModel
from repro.runner import Scenario, run
from repro.topologies import path


class TestValidation:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            Scenario(algorithm="warp_drive")

    def test_unknown_topology_family_rejected(self):
        with pytest.raises(ValueError, match="unknown topology family"):
            Scenario(algorithm="decay", topology="klein_bottle")

    def test_undeclared_algorithm_param_rejected(self):
        with pytest.raises(ValueError, match="unknown parameters"):
            Scenario(algorithm="decay", params={"k": 3})

    def test_unknown_topology_param_rejected(self):
        with pytest.raises(ValueError, match="topology_params"):
            Scenario(algorithm="decay", topology_params={"diameter": 5})

    def test_topology_params_rejected_for_explicit_network(self):
        with pytest.raises(ValueError, match="explicit RadioNetwork"):
            Scenario(
                algorithm="decay", topology=path(8), topology_params={"n": 8}
            )

    def test_faults_type_checked(self):
        with pytest.raises(TypeError, match="FaultConfig"):
            Scenario(algorithm="decay", faults=0.3)

    def test_bad_max_rounds_rejected(self):
        with pytest.raises(ValueError, match="max_rounds"):
            Scenario(algorithm="decay", max_rounds=0)


class TestTopologyBuild:
    def test_named_family_uses_size_and_default(self):
        assert Scenario(
            algorithm="decay", topology_params={"n": 24}
        ).build_network().n == 24
        from repro.runner.scenario import DEFAULT_TOPOLOGY_SIZE

        assert Scenario(algorithm="decay").build_network().n == (
            DEFAULT_TOPOLOGY_SIZE
        )

    def test_topology_seed_pins_random_families(self):
        pinned = Scenario(
            algorithm="decay",
            topology="gnp",
            topology_params={"n": 20, "seed": 7},
        )
        for seed in (0, 1):
            scenario = pinned.with_(seed=seed)
            assert (
                scenario.build_network().edge_count
                == pinned.build_network().edge_count
            )

    def test_explicit_network_returned_as_is(self):
        network = path(9)
        scenario = Scenario(algorithm="decay", topology=network)
        assert scenario.build_network() is network
        assert run(scenario).total == 9


class TestSerialization:
    def test_round_trip(self):
        scenario = Scenario(
            algorithm="rlnc_decay",
            topology="gnp",
            topology_params={"n": 20, "seed": 3},
            params={"k": 2},
            faults=FaultConfig.sender(0.1),
            seed=11,
            max_rounds=5000,
        )
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone == scenario

    def test_faults_serialize_by_model_name(self):
        data = Scenario(
            algorithm="decay", faults=FaultConfig.receiver(0.25)
        ).to_dict()
        assert data["faults"] == {"model": "receiver", "p": 0.25}
        assert Scenario.from_dict(data).faults.model is FaultModel.RECEIVER

    def test_explicit_network_refuses_to_dict_but_describes(self):
        scenario = Scenario(algorithm="decay", topology=path(5))
        with pytest.raises(ValueError, match="serialized"):
            scenario.to_dict()
        assert scenario.describe()["topology"].startswith("<explicit:")

    def test_with_replaces_fields(self):
        base = Scenario(algorithm="decay", seed=0)
        assert base.with_(seed=9).seed == 9
        assert base.with_(algorithm="fastbc").algorithm == "fastbc"
        assert base.seed == 0
