"""The algorithm registry: every entry is discoverable and runnable."""

import pytest

import repro
from repro.core.faults import FaultConfig
from repro.runner import (
    Scenario,
    all_algorithms,
    get_algorithm,
    run,
)

#: legacy entry point -> registry name; every broadcast function exported
#: from repro.__all__ must be reachable through the registry
LEGACY_TO_REGISTRY = {
    "decay_broadcast": "decay",
    "fastbc_broadcast": "fastbc",
    "robust_fastbc_broadcast": "robust_fastbc",
    "rlnc_decay_broadcast": "rlnc_decay",
    "rlnc_robust_fastbc_broadcast": "rlnc_robust_fastbc",
    "star_adaptive_routing": "star_routing",
    "star_rs_coding": "star_coding",
}


class TestRegistryShape:
    def test_names_sorted_and_unique(self):
        names = [a.name for a in all_algorithms()]
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_every_entry_documented(self):
        for algorithm in all_algorithms():
            assert algorithm.summary
            assert algorithm.kind in ("single", "multi", "star", "link")
            for param in algorithm.params:
                assert param.name

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="decay"):
            get_algorithm("nope")

    def test_every_legacy_broadcast_export_is_registered(self):
        registered = {a.name for a in all_algorithms()}
        for legacy, name in LEGACY_TO_REGISTRY.items():
            assert legacy in repro.__all__
            assert name in registered

    def test_validate_params_rejects_undeclared(self):
        with pytest.raises(ValueError, match="unknown parameters"):
            get_algorithm("decay").validate_params({"warp": 9})


class TestEveryAlgorithmRuns:
    @pytest.mark.parametrize(
        "name", [a.name for a in all_algorithms()], ids=str
    )
    def test_runs_on_default_topology(self, name):
        algorithm = get_algorithm(name)
        report = run(
            Scenario(
                algorithm=name,
                topology=algorithm.default_topology,
                topology_params={"n": 12},
                faults=FaultConfig.receiver(0.2),
                seed=5,
            )
        )
        assert report.algorithm == name
        assert report.success
        assert report.rounds >= 1
        assert 0 < report.informed <= report.total

    def test_declared_defaults_merge_under_overrides(self):
        report = run(
            Scenario(
                algorithm="star_coding",
                topology="star",
                topology_params={"n": 9},
                params={"k": 3},
                seed=0,
            )
        )
        assert report.extras["k"] == 3
        # faultless coding: exactly k rounds, one packet per message
        assert report.rounds == 3
