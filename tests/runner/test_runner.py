"""Runner determinism, parallel equivalence, and sweep expansion."""

import json

import pytest

from repro.core.faults import FaultConfig
from repro.runner import (
    RunReport,
    Scenario,
    expand_grid,
    run,
    run_batch,
    sweep,
)

BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 16},
    faults=FaultConfig.receiver(0.3),
    seed=4,
)


class TestDeterminism:
    def test_same_scenario_same_canonical_bytes(self):
        first = run(BASE).to_json(canonical=True).encode()
        second = run(BASE).to_json(canonical=True).encode()
        assert first == second

    @pytest.mark.parametrize(
        "name", ["fastbc", "rlnc_decay", "star_coding", "single_link_routing"]
    )
    def test_determinism_across_algorithm_kinds(self, name):
        scenario = Scenario(
            algorithm=name,
            topology="star" if name.startswith("star") else "path",
            topology_params={"n": 10},
            faults=FaultConfig.receiver(0.2),
            seed=7,
        )
        assert run(scenario).to_json(canonical=True) == run(
            scenario
        ).to_json(canonical=True)

    def test_different_seeds_differ(self):
        # on a noisy channel two seeds virtually never trace identically
        a = run(BASE)
        b = run(BASE.with_(seed=5))
        assert a.counters != b.counters


class TestParallelEqualsSerial:
    def test_run_batch_pool_matches_serial(self):
        scenarios = expand_grid(
            BASE, seeds=range(4), grid={"algorithm": ["decay", "fastbc"]}
        )
        serial = run_batch(scenarios, processes=None)
        parallel = run_batch(scenarios, processes=3)
        assert len(serial) == len(parallel) == 8
        for left, right in zip(serial, parallel):
            assert left.to_json(canonical=True) == right.to_json(canonical=True)

    def test_single_scenario_batch_stays_serial(self):
        (report,) = run_batch([BASE], processes=8)
        assert report.to_json(canonical=True) == run(BASE).to_json(
            canonical=True
        )


class TestSweepExpansion:
    def test_grid_axes_and_seed_order(self):
        scenarios = expand_grid(
            BASE,
            seeds=[1, 2],
            grid={"algorithm": ["decay", "fastbc"], "n": [8, 16]},
        )
        assert len(scenarios) == 8
        # seeds vary fastest, then the last grid axis
        assert [s.seed for s in scenarios[:2]] == [1, 2]
        assert scenarios[0].algorithm == scenarios[2].algorithm == "decay"
        assert scenarios[0].topology_params["n"] == 8
        assert scenarios[2].topology_params["n"] == 16

    def test_param_keys_land_in_algorithm_params(self):
        scenarios = expand_grid(
            Scenario(algorithm="rlnc_decay"), grid={"k": [1, 2]}
        )
        assert [s.params["k"] for s in scenarios] == [1, 2]

    def test_faults_axis(self):
        scenarios = expand_grid(
            BASE,
            grid={"faults": [FaultConfig.faultless(), FaultConfig.sender(0.1)]},
        )
        assert [str(s.faults) for s in scenarios] == [
            "faultless",
            "sender-faults(p=0.1)",
        ]

    def test_seed_axis_in_grid_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            expand_grid(BASE, grid={"seed": [1, 2]})

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            expand_grid(BASE, seeds=[])

    def test_sweep_runs_the_expansion(self):
        reports = sweep(BASE, seeds=range(3))
        assert [r.scenario["seed"] for r in reports] == [0, 1, 2]


class TestRunReport:
    def test_json_round_trip(self):
        report = run(BASE)
        clone = RunReport.from_dict(json.loads(report.to_json()))
        assert clone == report

    def test_canonical_json_excludes_timing(self):
        report = run(BASE)
        assert report.wall_time_s > 0
        canonical = json.loads(report.to_json(canonical=True))
        assert "wall_time_s" not in canonical
        assert "wall_time_s" in report.to_dict()

    def test_embedded_scenario_reconstructs(self):
        report = run(BASE)
        assert Scenario.from_dict(report.scenario) == BASE

    def test_records_materialized_network(self):
        report = run(BASE)
        assert report.network_n == 16
        assert report.network_name
        # single_link ignores the requested size; the report records the
        # network the run actually used
        link = run(
            Scenario(
                algorithm="single_link_coding",
                topology="single_link",
                topology_params={"n": 64},
            )
        )
        assert link.network_n == 2
