"""The farm endpoints over a real socket: register, lease, heartbeat,
complete — plus the error statuses workers key their behavior on."""

import pytest

from repro.core.faults import FaultConfig
from repro.runner import Scenario, expand_grid, run_batch
from repro.service import ReproService, ServiceClient, ServiceError

BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 12},
    faults=FaultConfig.receiver(0.2),
)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    store_path = str(tmp_path_factory.mktemp("farm-http") / "farm.db")
    with ReproService(
        store_path,
        port=0,
        remote_workers=True,
        lease_scenarios=4,
        lease_timeout=30.0,
    ) as running:
        yield running


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url, timeout=10.0)


class TestRegistration:
    def test_register_returns_id_and_knobs(self, client):
        ack = client.register_worker("unit")
        assert ack["worker"].startswith("w-")
        assert ack["lease_scenarios"] == 4
        assert ack["lease_timeout_s"] == 30.0
        assert 0 < ack["heartbeat_s"] < 30.0

    def test_workers_snapshot_lists_registered(self, client):
        worker = client.register_worker("listed")["worker"]
        snapshot = client.workers()
        assert worker in {entry["id"] for entry in snapshot["workers"]}
        assert "pending_scenarios" in snapshot["queue"]

    def test_lease_with_unregistered_worker_is_404(self, client):
        with pytest.raises(ServiceError) as caught:
            client.lease("w-9999")
        assert caught.value.status == 404


class TestLeaseLifecycle:
    def test_full_protocol_round_trip(self, client, service):
        scenarios = expand_grid(BASE, seeds=[100, 101, 102])
        job = client.submit(scenarios=scenarios)
        worker = client.register_worker("rt")["worker"]

        lease = client.lease(worker)
        assert lease is not None
        assert lease["worker"] == worker
        leased = [Scenario.from_dict(s) for s in lease["scenarios"]]
        assert [s.cache_key() for s in leased] == job["cache_keys"]

        beat = client.heartbeat(lease["id"], worker)
        assert beat["id"] == lease["id"]

        reports = run_batch(leased)
        ack = client.complete(
            lease["id"], worker, reports, executed=len(reports)
        )
        assert ack["completed"] == len(scenarios)
        assert ack["late"] is False

        assert client.job(job["id"])["status"] == "done"
        for scenario, report in zip(leased, reports):
            assert client.report_bytes(
                scenario.cache_key()
            ) == report.to_json(canonical=True).encode()
        assert client.lease(worker) is None  # queue drained

    def test_heartbeat_on_dead_lease_is_410(self, client):
        worker = client.register_worker("dead-beat")["worker"]
        with pytest.raises(ServiceError) as caught:
            client.heartbeat("lease-999999", worker)
        assert caught.value.status == 410

    def test_fail_requeues_for_another_worker(self, client):
        scenarios = expand_grid(BASE, seeds=[200, 201])
        job = client.submit(scenarios=scenarios)
        quitter = client.register_worker("quitter")["worker"]
        lease = client.lease(quitter)
        assert client.fail(lease["id"], quitter, "simulated crash") == {
            "requeued": 2
        }
        finisher = client.register_worker("finisher")["worker"]
        retry = client.lease(finisher)
        leased = [Scenario.from_dict(s) for s in retry["scenarios"]]
        client.complete(retry["id"], finisher, run_batch(leased))
        assert client.job(job["id"])["status"] == "done"

    def test_malformed_lease_body_is_400(self, client, service):
        import json
        import urllib.request

        request = urllib.request.Request(
            f"{service.url}/leases",
            data=json.dumps({"not-worker": 1}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10.0)
        assert caught.value.code == 400


class TestLocalModeGuards:
    def test_farm_endpoints_refused_without_coordinator(self, tmp_path):
        store_path = str(tmp_path / "local.db")
        with ReproService(store_path, port=0, workers=1) as running:
            client = ServiceClient(running.url, timeout=10.0)
            with pytest.raises(ServiceError) as caught:
                client.register_worker("nope")
            assert caught.value.status == 400
            assert "remote" in str(caught.value)
