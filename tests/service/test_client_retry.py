"""Client retry policy against a deliberately flaky HTTP server.

Transport failures on idempotent calls (GETs, heartbeat PUTs) retry
with bounded backoff; non-idempotent POSTs and answered HTTP errors
never do.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service import ServiceClient, ServiceError


class FlakyHandler(BaseHTTPRequestHandler):
    """Drops the connection mid-request ``fail_remaining`` times, then
    answers; every arrival is appended to ``hits``."""

    fail_remaining = 0
    hits: list[str] = []

    def _handle(self) -> None:
        cls = type(self)
        cls.hits.append(f"{self.command} {self.path}")
        if cls.fail_remaining > 0:
            cls.fail_remaining -= 1
            self.connection.close()  # no status line: a transport failure
            return
        if self.path == "/error":
            body = json.dumps({"error": "boom"}).encode()
            self.send_response(500)
        else:
            body = json.dumps({"ok": True, "path": self.path}).encode()
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = do_POST = do_PUT = _handle

    def log_message(self, *args) -> None:  # quiet
        pass


@pytest.fixture()
def flaky():
    FlakyHandler.fail_remaining = 0
    FlakyHandler.hits = []
    server = ThreadingHTTPServer(("127.0.0.1", 0), FlakyHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


@pytest.fixture()
def client(flaky):
    client = ServiceClient(
        f"http://127.0.0.1:{flaky.server_address[1]}",
        timeout=5.0,
        retries=3,
        backoff=0.001,
        backoff_max=0.004,
    )
    client._random.seed(0)
    return client


class TestIdempotentRetry:
    def test_get_retries_through_transport_failures(self, client):
        FlakyHandler.fail_remaining = 2
        assert client.health()["ok"] is True
        assert len(FlakyHandler.hits) == 3  # 2 drops + 1 success

    def test_heartbeat_put_retries(self, client):
        FlakyHandler.fail_remaining = 1
        ack = client.heartbeat("lease-000001", "w-0001")
        assert ack["ok"] is True
        assert FlakyHandler.hits == [
            "PUT /leases/lease-000001/heartbeat",
            "PUT /leases/lease-000001/heartbeat",
        ]

    def test_retries_exhaust_and_raise(self, client):
        FlakyHandler.fail_remaining = 99
        with pytest.raises(Exception):
            client.health()
        assert len(FlakyHandler.hits) == 4  # 1 try + 3 retries


class TestNoRetry:
    def test_post_never_retries(self, client):
        FlakyHandler.fail_remaining = 1
        with pytest.raises(Exception):
            client.register_worker("once")
        assert FlakyHandler.hits == ["POST /workers"]

    def test_http_error_response_never_retries(self, client):
        with pytest.raises(ServiceError) as caught:
            client._get("/error")
        assert caught.value.status == 500
        assert "boom" in str(caught.value)
        assert FlakyHandler.hits == ["GET /error"]

    def test_zero_retries_fails_on_first_drop(self, flaky):
        FlakyHandler.fail_remaining = 1
        client = ServiceClient(
            f"http://127.0.0.1:{flaky.server_address[1]}",
            timeout=5.0,
            retries=0,
        )
        with pytest.raises(Exception):
            client.health()
        assert len(FlakyHandler.hits) == 1


class TestBackoffShape:
    def test_delays_double_and_stay_bounded_with_jitter(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", retries=5, backoff=0.1, backoff_max=0.4
        )
        client._random.seed(42)
        slept: list[float] = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", slept.append
        )
        for attempt in range(5):
            client._sleep(attempt)
        ceilings = [0.1, 0.2, 0.4, 0.4, 0.4]  # doubling, capped
        for delay, ceiling in zip(slept, ceilings):
            assert ceiling / 2.0 <= delay <= ceiling  # jitter in (1/2, 1]
