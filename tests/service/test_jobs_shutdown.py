"""JobManager shutdown drains cleanly: no job is ever left ``running``."""

import time

import pytest

from repro.core.faults import FaultConfig
from repro.farm import Coordinator
from repro.runner import Scenario, expand_grid
from repro.service.jobs import JobManager
from repro.store import ResultStore

BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 48},
    faults=FaultConfig.receiver(0.3),
)

TERMINAL = ("done", "failed", "cancelled")


@pytest.fixture()
def store(tmp_path):
    with ResultStore(str(tmp_path / "jobs.db")) as opened:
        yield opened


def _wait(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "timed out"
        time.sleep(0.01)


class TestDrainShutdown:
    def test_idle_shutdown_is_clean(self, store):
        manager = JobManager(store, workers=2)
        manager.shutdown()
        assert manager.jobs() == []

    def test_finished_jobs_stay_done(self, store):
        manager = JobManager(store, workers=1)
        job = manager.submit(expand_grid(BASE, seeds=[0], grid={"n": [12]}))
        _wait(lambda: job.status == "done")
        manager.shutdown()
        assert job.status == "done"

    def test_inflight_job_cancelled_at_chunk_boundary(self, store):
        manager = JobManager(store, workers=1, chunk_size=1)
        # enough work that shutdown lands mid-job
        job = manager.submit(expand_grid(BASE, seeds=range(200)))
        _wait(lambda: job.status == "running")
        manager.shutdown()
        assert job.status == "cancelled"
        assert job.finished_at is not None
        assert "shut down" in job.error
        # the chunks that did finish are durable: counted and stored
        assert job.completed == len(store)

    def test_queued_jobs_cancelled_without_starting(self, store):
        manager = JobManager(store, workers=1, chunk_size=1)
        first = manager.submit(expand_grid(BASE, seeds=range(200)))
        queued = [
            manager.submit(expand_grid(BASE, seeds=[seed], grid={"n": [12]}))
            for seed in range(3)
        ]
        _wait(lambda: first.status == "running")
        manager.shutdown()
        for job in manager.jobs():
            assert job.status in TERMINAL, job.id
        assert {job.status for job in queued} == {"cancelled"}

    def test_submit_after_shutdown_is_refused(self, store):
        manager = JobManager(store, workers=1)
        manager.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            manager.submit(expand_grid(BASE, seeds=[0]))


class TestRemoteMode:
    def test_no_threads_and_jobs_route_to_coordinator(self, store):
        coordinator = Coordinator(store)
        manager = JobManager(store, workers=0, coordinator=coordinator)
        assert manager._threads == []
        job = manager.submit(expand_grid(BASE, seeds=[0, 1], grid={"n": [12]}))
        worker = coordinator.register("t")["worker"]
        assert coordinator.lease(worker)["job"] == job.id

    def test_adaptive_refused_in_remote_mode(self, store):
        manager = JobManager(store, workers=0, coordinator=Coordinator(store))
        with pytest.raises(ValueError, match="local workers"):
            manager.submit_adaptive({"base": BASE.to_dict()})
