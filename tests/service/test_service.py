"""Service endpoints over a real socket: submit -> poll -> fetch."""

import pytest

from repro.core.faults import AdversaryConfig
from repro.runner import Scenario, expand_grid, run_batch
from repro.service import ReproService, ServiceClient, ServiceError

BASE = Scenario(algorithm="decay", topology="path", topology_params={"n": 12})


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    store_path = str(tmp_path_factory.mktemp("service") / "service.db")
    with ReproService(store_path, port=0, workers=1) as running:
        yield running


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url, timeout=10.0)


class TestHealthAndRegistry:
    def test_health(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        assert "reports" in payload

    def test_registry_matches_cli_dump(self, client):
        from repro.introspect import registry_dump

        assert client.registry() == registry_dump()

    def test_registry_adversaries_only(self, client):
        payload = client.registry(adversaries_only=True)
        assert set(payload) == {"adversaries"}


class TestJobLifecycle:
    def test_submit_poll_fetch_round_trip(self, client):
        scenarios = expand_grid(
            BASE, seeds=[0, 1], grid={"algorithm": ["decay", "fastbc"]}
        )
        job = client.submit(scenarios=scenarios)
        assert job["status"] in ("queued", "running")
        assert job["total"] == 4
        assert job["cache_keys"] == [s.cache_key() for s in scenarios]

        done = client.wait(job["id"], timeout=60.0)
        assert done["completed"] == 4

        direct = run_batch(scenarios)
        for scenario, report in zip(scenarios, direct):
            fetched = client.report_bytes(scenario.cache_key())
            assert fetched == report.to_json(canonical=True).encode("utf-8")

    def test_submit_base_with_grid_and_adversary(self, client):
        job = client.submit(
            base=BASE,
            seeds=[0],
            grid={
                "adversary": [
                    AdversaryConfig("gilbert_elliott", {"p_bad": 0.9}),
                    AdversaryConfig("budgeted_jammer", {"per_round": 2}),
                ]
            },
        )
        done = client.wait(job["id"], timeout=60.0)
        assert done["total"] == 2
        report = client.report(done["cache_keys"][0])
        assert report.scenario["adversary"]["kind"] == "gilbert_elliott"

    def test_jobs_listing(self, client):
        jobs = client.jobs()
        assert jobs, "previous tests submitted jobs"
        assert all(set(j) >= {"id", "status", "completed", "total"} for j in jobs)

    def test_query_endpoint(self, client):
        scenarios = expand_grid(BASE.with_(algorithm="fastbc"), seeds=[7])
        client.wait(client.submit(scenarios=scenarios)["id"], timeout=60.0)
        reports = client.query(algorithm="fastbc", seed_min=7, seed_max=7)
        assert [r.scenario["seed"] for r in reports] == [7]
        assert client.query(algorithm="fastbc", limit=1)


class TestErrors:
    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json("/nope")
        assert excinfo.value.status == 404

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-9999")
        assert excinfo.value.status == 404

    def test_missing_report_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.report_bytes("0" * 64)
        assert excinfo.value.status == 404

    def test_bad_submit_body_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json("/jobs", {"scenarios": []})
        assert excinfo.value.status == 400

    def test_unknown_algorithm_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json(
                "/jobs", {"scenarios": [{"algorithm": "not_a_thing"}]}
            )
        assert excinfo.value.status == 400

    def test_unknown_query_parameter_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json("/reports?bogus=1")
        assert excinfo.value.status == 400

    def test_empty_body_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json("/jobs", {})
        assert excinfo.value.status == 400


class TestKeepAlive:
    def test_error_with_unread_body_does_not_poison_the_connection(self, service):
        # POST to an unknown path leaves the body unread; the error
        # response must close the keep-alive connection so those bytes
        # can't be parsed as the next request
        import http.client

        connection = http.client.HTTPConnection(
            service.host, service.port, timeout=10.0
        )
        try:
            connection.request(
                "POST", "/nope", body=b'{"x": 1}',
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 404
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()

    def test_success_responses_keep_the_connection_alive(self, service):
        import http.client

        connection = http.client.HTTPConnection(
            service.host, service.port, timeout=10.0
        )
        try:
            for _ in range(2):  # two requests over one connection
                connection.request("GET", "/health")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()
