"""``GET /metrics`` + ``GET /metrics.json`` over a real socket, and the
lease trace header the coordinator propagates to workers."""

import re
import urllib.request

import pytest

from repro.core.faults import FaultConfig
from repro.runner import Scenario, expand_grid, run_batch
from repro.service import ReproService, ServiceClient
from repro.service.server import PROMETHEUS_CONTENT_TYPE
from repro.telemetry import METRICS, TRACE_HEADER, trace_id_for_keys

BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 12},
    faults=FaultConfig.receiver(0.2),
)

#: a Prometheus sample line: name{labels} value
_SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})?'
    r" -?[0-9.e+naif-]+$"
)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    store_path = str(tmp_path_factory.mktemp("metrics-http") / "farm.db")
    with ReproService(
        store_path,
        port=0,
        remote_workers=True,
        lease_scenarios=4,
        lease_timeout=30.0,
    ) as running:
        yield running


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url, timeout=10.0)


@pytest.fixture(scope="module")
def farmed(client):
    """Drive one full lease cycle; returns (lease, scenarios)."""
    scenarios = expand_grid(BASE, seeds=[300, 301, 302])
    client.submit(scenarios=scenarios)
    worker = client.register_worker("observer")["worker"]
    lease = client.lease(worker)
    leased = [Scenario.from_dict(s) for s in lease["scenarios"]]
    client.complete(
        lease["id"], worker, run_batch(leased), executed=len(leased)
    )
    return lease, leased


class TestPrometheusEndpoint:
    def test_service_enables_the_global_registry(self, service):
        assert METRICS.enabled

    def test_metrics_text_is_valid_exposition(self, client, farmed):
        text = client.metrics_text()
        assert text.endswith("\n")
        for line in text.splitlines():
            assert line.startswith("#") or _SAMPLE.match(line), line
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_store_put_seconds histogram" in text
        assert 'repro_store_put_seconds_bucket{le="+Inf"}' in text

    def test_farm_counters_reflect_the_lease_cycle(self, client, farmed):
        text = client.metrics_text()
        granted = re.search(
            r"^repro_farm_leases_granted_total (\d+)$", text, re.M
        )
        assert granted and int(granted.group(1)) >= 1
        completed = re.search(
            r"^repro_farm_scenarios_completed_total (\d+)$", text, re.M
        )
        assert completed and int(completed.group(1)) >= 3

    def test_scrape_gauges_track_store_and_queue(self, client, farmed):
        text = client.metrics_text()
        reports = re.search(r"^repro_store_reports (\d+)$", text, re.M)
        assert reports and int(reports.group(1)) >= 3
        assert re.search(r"^repro_farm_pending_scenarios 0$", text, re.M)

    def test_content_type_is_prometheus_004(self, service, farmed):
        with urllib.request.urlopen(
            f"{service.url}/metrics", timeout=10.0
        ) as response:
            assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE

    def test_metrics_json_twin(self, client, farmed):
        payload = client.metrics_json()
        assert payload["enabled"] is True
        metrics = payload["metrics"]
        assert metrics["repro_farm_leases_granted_total"]["value"] >= 1
        http = metrics["repro_http_requests_total"]
        routes = {entry["labels"]["route"] for entry in http["labeled"]}
        assert "metrics" in routes

    def test_unknown_routes_bucket_to_other(self, client, service):
        with pytest.raises(Exception):
            client._get("/definitely-not-a-route")
        http = client.metrics_json()["metrics"]["repro_http_requests_total"]
        routes = {entry["labels"]["route"] for entry in http["labeled"]}
        assert "other" in routes
        assert "definitely-not-a-route" not in routes


class TestTracePropagation:
    def test_lease_carries_deterministic_trace(self, client):
        scenarios = expand_grid(BASE, seeds=[400, 401])
        client.submit(scenarios=scenarios)
        worker = client.register_worker("tracer")["worker"]
        lease = client.lease(worker)
        leased = [Scenario.from_dict(s) for s in lease["scenarios"]]
        expected = trace_id_for_keys(s.cache_key() for s in leased)
        assert lease["trace"] == expected
        # the X-Repro-Trace response header reached the client
        assert client.last_trace == expected
        client.complete(
            lease["id"], worker, run_batch(leased), executed=len(leased)
        )
