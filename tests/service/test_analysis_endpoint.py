"""Server-side analysis and stable paging over a real socket."""

import pytest

from repro.core.faults import FaultConfig
from repro.runner import Scenario, expand_grid
from repro.service import ReproService, ServiceClient, ServiceError

BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 12},
    faults=FaultConfig.receiver(0.3),
    seed=0,
)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    store_path = str(tmp_path_factory.mktemp("analysis") / "service.db")
    with ReproService(store_path, port=0, workers=1) as running:
        yield running


@pytest.fixture(scope="module")
def client(service):
    client = ServiceClient(service.url, timeout=30.0)
    scenarios = expand_grid(
        BASE,
        seeds=range(4),
        grid={"algorithm": ["decay", "fastbc"], "n": [12, 16]},
    )
    client.wait(client.submit(scenarios=scenarios)["id"], timeout=120.0)
    return client


class TestReportsPaging:
    def test_pages_reassemble_exactly(self, client):
        full = [r.cache_key for r in client.query()]
        assert len(full) == 16
        paged = []
        for offset in range(0, 16, 5):
            paged.extend(
                r.cache_key for r in client.query(limit=5, offset=offset)
            )
        assert paged == full

    def test_order_by_over_the_wire(self, client):
        seeds = [r.scenario["seed"] for r in client.query(order_by="seed")]
        assert seeds == sorted(seeds)

    def test_bad_paging_params_are_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.query(offset="many")
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.query(order_by="canonical_json")
        assert excinfo.value.status == 500 or excinfo.value.status == 400


class TestAnalysisEndpoint:
    def test_aggregate_matches_local(self, client, service):
        from repro.analysis import aggregate

        payload = client.analysis(kind="aggregate", by="algorithm,n")
        local = aggregate(service.store, by=("algorithm", "n"))
        assert payload == local.to_dict()
        assert payload["cache_key"] == local.cache_key()

    def test_aggregate_with_filters(self, client):
        payload = client.analysis(
            kind="aggregate", by="algorithm", algorithm="decay"
        )
        assert [row["algorithm"] for row in payload["rows"]] == ["decay"]

    def test_compare_over_the_wire(self, client, service):
        from repro.analysis import compare

        payload = client.analysis(
            kind="compare",
            a_algorithm="decay",
            b_algorithm="fastbc",
            match_on="n,seed",
        )
        local = compare(
            service.store,
            arm_a={"algorithm": "decay"},
            arm_b={"algorithm": "fastbc"},
            match_on=("n", "seed"),
        )
        assert payload == local.to_dict()
        assert payload["summary"]["pairs"] == 8

    def test_unknown_kind_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.analysis(kind="vibes")
        assert excinfo.value.status == 400

    def test_unknown_parameter_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.analysis(kind="aggregate", flavor="spicy")
        assert excinfo.value.status == 400

    def test_bad_dimension_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.analysis(kind="aggregate", by="flavor")
        assert excinfo.value.status == 400


class TestAdaptiveJobs:
    def test_adaptive_job_round_trip(self, client, service):
        job = client.submit_adaptive(
            BASE,
            grid={"n": [12, 16]},
            target_halfwidth=8.0,
            max_seeds=8,
            batch=4,
        )
        assert job["kind"] == "adaptive"
        assert job["total"] == 2 * 8  # cells x max_seeds upper bound
        done = client.wait(job["id"], timeout=120.0)
        result = done["result"]
        assert result["kind"] == "adaptive"
        assert len(result["rows"]) == 2
        assert result["cache_key"]
        # resubmission replays entirely from the shared store
        again = client.wait(
            client.submit_adaptive(
                BASE,
                grid={"n": [12, 16]},
                target_halfwidth=8.0,
                max_seeds=8,
                batch=4,
            )["id"],
            timeout=120.0,
        )
        assert again["result"]["meta"]["executed"] == 0
        assert again["result"]["cache_key"] == result["cache_key"]

    def test_batch_jobs_still_report_kind(self, client):
        job = client.submit(scenarios=expand_grid(BASE, seeds=[99]))
        assert job["kind"] == "batch"
        client.wait(job["id"], timeout=60.0)

    def test_invalid_adaptive_spec_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_adaptive(BASE, target_halfwidth=8.0, max_seeds=2, batch=4)
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._json("/jobs", {"adaptive": {"grid": {}}})
        assert excinfo.value.status == 400
