"""``GET /timelines/<key>`` serves stored sidecar bytes verbatim."""

import json
import urllib.error
import urllib.request

import pytest

from repro.runner import Scenario, run
from repro.service import ReproService
from repro.store import ResultStore
from repro.timeline import TimelineConfig


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    store_path = str(tmp_path_factory.mktemp("timeline-http") / "results.db")
    report = run(
        Scenario(
            algorithm="decay",
            topology="gnp",
            topology_params={"n": 24},
            seed=3,
            timeline=TimelineConfig(every=1),
        )
    )
    with ResultStore(store_path) as store:
        store.put_many([report])
        stored = store.get_timeline_json(report.cache_key)
    with ReproService(store_path, port=0) as service:
        yield service, report, stored


def test_served_bytes_are_the_stored_canonical_json(served):
    service, report, stored = served
    with urllib.request.urlopen(
        f"{service.url}/timelines/{report.cache_key}"
    ) as response:
        body = response.read().decode("utf-8")
        assert response.status == 200
    assert body == stored
    assert json.loads(body) == report.timeline


def test_unknown_key_is_a_404(served):
    service, _, _ = served
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(f"{service.url}/timelines/{'0' * 64}")
    assert excinfo.value.code == 404
    assert "no timeline stored under" in excinfo.value.read().decode("utf-8")


def test_report_endpoint_still_excludes_the_sidecar(served):
    service, report, _ = served
    with urllib.request.urlopen(
        f"{service.url}/reports/{report.cache_key}"
    ) as response:
        body = json.loads(response.read().decode("utf-8"))
    assert "timeline" not in body
    assert body["scenario"]["timeline"] == {"every": 1, "node_detail": 4096}
