"""Integration: the shipped example scripts run end to end.

Each example is executed in-process (runpy) with stdout captured, so a
regression in the public API that breaks an example fails the suite.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {f.name for f in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize(
    "script", EXAMPLE_FILES, ids=lambda path: path.name
)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
