"""Integration: every broadcast algorithm completes on every topology
family under every fault model, and the cross-algorithm orderings the
paper proves hold at test scale."""

import pytest

from repro.algorithms.decay import decay_broadcast
from repro.algorithms.fastbc import fastbc_broadcast
from repro.algorithms.multi.rlnc_broadcast import rlnc_decay_broadcast
from repro.algorithms.robust_fastbc import robust_fastbc_broadcast
from repro.core.faults import FaultConfig
from repro.topologies.registry import TOPOLOGY_FAMILIES, make_topology

ALGORITHMS = {
    "decay": decay_broadcast,
    "fastbc": fastbc_broadcast,
    "robust_fastbc": robust_fastbc_broadcast,
}

FAULTS = [
    FaultConfig.faultless(),
    FaultConfig.sender(0.3),
    FaultConfig.receiver(0.3),
]


@pytest.mark.parametrize("family", sorted(TOPOLOGY_FAMILIES))
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("faults", FAULTS, ids=str)
def test_single_message_completes(family, algorithm, faults):
    network = make_topology(family, 24, seed=3)
    outcome = ALGORITHMS[algorithm](network, faults=faults, rng=11)
    assert outcome.success, (
        f"{algorithm} failed on {network.name} under {faults}: "
        f"{outcome.informed}/{outcome.total} informed in {outcome.rounds}"
    )


@pytest.mark.parametrize("family", ["path", "star", "grid", "tree"])
def test_rlnc_multi_message_completes(family):
    network = make_topology(family, 20, seed=5)
    outcome = rlnc_decay_broadcast(
        network, k=4, faults=FaultConfig.receiver(0.3), rng=13
    )
    assert outcome.success


class TestCrossAlgorithmOrderings:
    def test_faultless_fastbc_fastest_on_deep_path(self):
        """Lemma 8's point: known topology buys diameter linearity."""
        network = make_topology("path", 128, seed=0)
        fast = fastbc_broadcast(network, rng=3)
        slow = decay_broadcast(network, rng=3)
        assert fast.success and slow.success
        assert fast.rounds < slow.rounds

    def test_all_algorithms_agree_on_informed_set(self):
        """Every algorithm must inform exactly the n nodes (no phantom
        completions)."""
        network = make_topology("grid", 25, seed=1)
        for algorithm in ALGORITHMS.values():
            outcome = algorithm(
                network, faults=FaultConfig.receiver(0.2), rng=7
            )
            assert outcome.informed == network.n

    def test_fault_models_cost_more_than_faultless(self):
        network = make_topology("path", 64, seed=2)
        quiet = decay_broadcast(network, rng=9).rounds
        sender = decay_broadcast(
            network, faults=FaultConfig.sender(0.5), rng=9
        ).rounds
        receiver = decay_broadcast(
            network, faults=FaultConfig.receiver(0.5), rng=9
        ).rounds
        assert sender > quiet
        assert receiver > quiet


class TestDecayPhaseProgress:
    """Lemma 5's mechanism, measured: a node with an informed neighbor
    becomes informed within a phase with probability bounded below."""

    def test_per_phase_progress_rate(self):
        from repro.algorithms.base import ilog2
        from repro.topologies.basic import star as star_topo

        phase = ilog2(9) + 1
        informs = 0
        trials = 200
        for seed in range(trials):
            outcome = decay_broadcast(star_topo(8), rng=seed)
            # the star completes within a constant number of phases
            informs += outcome.rounds <= 3 * phase
        assert informs / trials > 0.9
