"""Property-based integration tests on the simulation engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.decay import DecayProtocol, decay_broadcast
from repro.core.engine import Simulator
from repro.core.faults import FaultConfig, FaultModel
from repro.topologies.random_graphs import gnp, random_tree
from repro.util.rng import RandomSource


@given(
    n=st.integers(min_value=2, max_value=30),
    topo_seed=st.integers(min_value=0, max_value=100),
    run_seed=st.integers(min_value=0, max_value=100),
    p=st.sampled_from([0.0, 0.2, 0.5]),
    model=st.sampled_from([FaultModel.SENDER, FaultModel.RECEIVER]),
)
@settings(max_examples=30, deadline=None)
def test_decay_always_completes(n, topo_seed, run_seed, p, model):
    """Lemma 9 as a property: Decay completes on random trees under any
    fault configuration (within the generous default budget)."""
    network = random_tree(n, rng=topo_seed)
    faults = FaultConfig.faultless() if p == 0.0 else FaultConfig(model, p)
    outcome = decay_broadcast(network, faults=faults, rng=run_seed)
    assert outcome.success


@given(
    n=st.integers(min_value=2, max_value=25),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=20, deadline=None)
def test_simulation_is_deterministic(n, seed):
    """Identical seeds produce identical trajectories."""
    def run():
        network = gnp(n, 0.3, rng=seed)
        rng = RandomSource(seed)
        protocols = [
            DecayProtocol(n, rng.spawn(), informed=(v == network.source))
            for v in network.nodes()
        ]
        sim = Simulator(
            network, protocols, FaultConfig.receiver(0.4), rng=seed + 1
        )
        sim.run(max_rounds=2000)
        return sim.round_index, sim.done_count(), sim.counters.as_dict()

    assert run() == run()


@given(
    n=st.integers(min_value=3, max_value=25),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=20, deadline=None)
def test_informed_set_monotone(n, seed):
    """Once informed, a node stays informed — the done count never drops."""
    network = random_tree(n, rng=seed)
    rng = RandomSource(seed)
    protocols = [
        DecayProtocol(n, rng.spawn(), informed=(v == network.source))
        for v in network.nodes()
    ]
    sim = Simulator(network, protocols, FaultConfig.receiver(0.3), rng=seed)
    last = sim.done_count()
    for _ in range(200):
        if sim.all_done():
            break
        sim.step()
        current = sim.done_count()
        assert current >= last
        last = current


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_counters_consistent(seed):
    """deliveries + collisions + faults never exceed what broadcasts could
    have caused; rounds always advance by exactly the steps taken."""
    network = gnp(12, 0.4, rng=seed)
    rng = RandomSource(seed)
    protocols = [
        DecayProtocol(12, rng.spawn(), informed=(v == network.source))
        for v in network.nodes()
    ]
    sim = Simulator(network, protocols, FaultConfig.receiver(0.3), rng=seed)
    steps = 50
    for _ in range(steps):
        sim.step()
    c = sim.counters
    assert c.rounds == steps
    assert c.deliveries + c.receiver_faults <= c.broadcasts * network.max_degree
