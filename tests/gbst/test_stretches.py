"""Tests for fast-stretch decomposition."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gbst.ranked_bfs import build_ranked_bfs_tree
from repro.gbst.stretches import fast_stretches, path_stretch_decomposition
from repro.topologies.basic import balanced_tree, caterpillar, path, star
from repro.topologies.random_graphs import random_tree


class TestFastStretches:
    def test_path_single_stretch(self):
        tree = build_ranked_bfs_tree(path(8))
        stretches = fast_stretches(tree)
        assert len(stretches) == 1
        s = stretches[0]
        assert s.length == 7
        assert s.head == 0 and s.tail == 7
        assert s.rank == 1

    def test_star_no_stretches(self):
        tree = build_ranked_bfs_tree(star(6))
        assert fast_stretches(tree) == []

    def test_stretch_edges_are_fast(self):
        tree = build_ranked_bfs_tree(caterpillar(8, 1))
        for stretch in fast_stretches(tree):
            for a, b in zip(stretch.nodes, stretch.nodes[1:]):
                assert tree.parent[b] == a
                assert tree.rank[a] == tree.rank[b] == stretch.rank

    def test_stretches_are_maximal(self):
        tree = build_ranked_bfs_tree(balanced_tree(2, 4))
        for stretch in fast_stretches(tree):
            head = stretch.head
            p = tree.parent[head]
            if p != -1:
                # the head must not itself be a fast child of its parent
                assert tree.rank[p] != tree.rank[head] or tree.fast_child(p) != head

    def test_stretches_disjoint(self):
        tree = build_ranked_bfs_tree(balanced_tree(3, 3))
        seen = set()
        for stretch in fast_stretches(tree):
            for node in stretch.nodes:
                assert node not in seen or node == stretch.head
            seen.update(stretch.nodes)

    @given(
        n=st.integers(min_value=2, max_value=60),
        seed=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_fast_edge_in_exactly_one_stretch(self, n, seed):
        tree = build_ranked_bfs_tree(random_tree(n, rng=seed))
        fast_edges = {
            (v, tree.fast_child(v)) for v in tree.fast_nodes()
        }
        covered = set()
        for stretch in fast_stretches(tree):
            for a, b in zip(stretch.nodes, stretch.nodes[1:]):
                assert (a, b) not in covered
                covered.add((a, b))
        assert covered == fast_edges


class TestPathDecomposition:
    def test_path_decomposition_single_fast(self):
        tree = build_ranked_bfs_tree(path(6))
        segments = path_stretch_decomposition(tree, 5)
        assert len(segments) == 1
        kind, nodes = segments[0]
        assert kind == "fast" and nodes == [0, 1, 2, 3, 4, 5]

    def test_star_decomposition_single_slow(self):
        tree = build_ranked_bfs_tree(star(4))
        leaf = 1
        segments = path_stretch_decomposition(tree, leaf)
        assert len(segments) == 1
        assert segments[0][0] == "slow"

    def test_segments_cover_path(self):
        tree = build_ranked_bfs_tree(balanced_tree(2, 5))
        deepest = max(tree.network.nodes(), key=lambda v: tree.level[v])
        segments = path_stretch_decomposition(tree, deepest)
        # reconstruct the path from segments
        reconstructed = [segments[0][1][0]]
        for kind, nodes in segments:
            assert nodes[0] == reconstructed[-1]
            reconstructed.extend(nodes[1:])
        assert reconstructed == tree.tree_path(deepest)

    @given(
        n=st.integers(min_value=2, max_value=60),
        seed=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=25, deadline=None)
    def test_fast_segment_count_bounded_by_max_rank(self, n, seed):
        """At most r_max = O(log n) fast stretches per root-to-node path."""
        tree = build_ranked_bfs_tree(random_tree(n, rng=seed))
        for target in range(tree.network.n):
            segments = path_stretch_decomposition(tree, target)
            fast_count = sum(1 for kind, _ in segments if kind == "fast")
            assert fast_count <= tree.max_rank

    def test_source_target(self):
        tree = build_ranked_bfs_tree(path(4))
        assert path_stretch_decomposition(tree, 0) == []
