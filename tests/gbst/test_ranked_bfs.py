"""Tests for ranked BFS trees and the Lemma 7 rank bound."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gbst.ranked_bfs import RankedBFSTree, build_ranked_bfs_tree
from repro.topologies.basic import balanced_tree, caterpillar, grid, path, star
from repro.topologies.random_graphs import gnp, random_tree


class TestRankRule:
    def test_path_all_rank_one(self):
        tree = build_ranked_bfs_tree(path(6))
        # a path is a single chain: every node has exactly one child
        assert all(r == 1 for r in tree.rank)

    def test_star_hub_rank_two(self):
        tree = build_ranked_bfs_tree(star(5))
        hub = tree.network.source
        assert tree.rank[hub] == 2
        assert all(
            tree.rank[v] == 1 for v in tree.network.nodes() if v != hub
        )

    def test_star_single_leaf_rank_one(self):
        tree = build_ranked_bfs_tree(star(1))
        assert tree.rank[tree.network.source] == 1

    def test_balanced_binary_tree_rank_grows(self):
        # complete binary tree of height h has root rank h + 1
        tree = build_ranked_bfs_tree(balanced_tree(2, 3))
        assert tree.rank[tree.network.source] == 4

    def test_ranks_nonincreasing_towards_leaves(self):
        tree = build_ranked_bfs_tree(gnp(40, 0.15, rng=3))
        for v in tree.network.nodes():
            p = tree.parent[v]
            if p != -1:
                assert tree.rank[p] >= tree.rank[v]

    @given(
        n=st.integers(min_value=2, max_value=64),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_lemma7_rank_bound(self, n, seed):
        """Lemma 7: r_max <= ceil(log2 n)."""
        tree = build_ranked_bfs_tree(random_tree(n, rng=seed))
        assert tree.max_rank <= math.ceil(math.log2(n)) if n > 1 else 1

    @given(
        n=st.integers(min_value=4, max_value=48),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_lemma7_on_gnp(self, n, seed):
        tree = build_ranked_bfs_tree(gnp(n, 0.2, rng=seed))
        assert tree.max_rank <= math.ceil(math.log2(n))


class TestTreeStructure:
    def test_bfs_levels_respected(self):
        tree = build_ranked_bfs_tree(grid(4, 4))
        for v in tree.network.nodes():
            p = tree.parent[v]
            if p != -1:
                assert tree.level[v] == tree.level[p] + 1

    def test_children_inverse_of_parent(self):
        tree = build_ranked_bfs_tree(grid(3, 3))
        for v in tree.network.nodes():
            for c in tree.children[v]:
                assert tree.parent[c] == v

    def test_tree_path(self):
        tree = build_ranked_bfs_tree(path(5))
        assert tree.tree_path(4) == [0, 1, 2, 3, 4]
        assert tree.tree_path(0) == [0]

    def test_root_property(self):
        tree = build_ranked_bfs_tree(path(3))
        assert tree.root == 0
        assert tree.parent[0] == -1

    def test_spanning(self):
        net = gnp(30, 0.2, rng=1)
        tree = build_ranked_bfs_tree(net)
        non_roots = sum(1 for v in net.nodes() if tree.parent[v] != -1)
        assert non_roots == net.n - 1


class TestFastNodes:
    def test_path_interior_fast(self):
        tree = build_ranked_bfs_tree(path(5))
        # every node with a child shares rank 1 with it -> fast
        assert sorted(tree.fast_nodes()) == [0, 1, 2, 3]

    def test_star_hub_not_fast(self):
        tree = build_ranked_bfs_tree(star(4))
        assert tree.fast_nodes() == []

    def test_fast_child_unique(self):
        tree = build_ranked_bfs_tree(caterpillar(6, 2))
        for v in tree.fast_nodes():
            child = tree.fast_child(v)
            assert child is not None
            assert tree.rank[child] == tree.rank[v]
            same_rank = [
                c for c in tree.children[v] if tree.rank[c] == tree.rank[v]
            ]
            assert len(same_rank) == 1

    def test_fast_child_none_for_slow(self):
        tree = build_ranked_bfs_tree(star(4))
        assert tree.fast_child(tree.network.source) is None


class TestValidation:
    def test_rejects_wrong_parent_length(self):
        net = path(3)
        with pytest.raises(ValueError):
            RankedBFSTree(net, [-1, 0])

    def test_rejects_root_with_parent(self):
        net = path(3)
        with pytest.raises(ValueError):
            RankedBFSTree(net, [1, 0, 1])

    def test_rejects_non_bfs_edge(self):
        net = path(4)
        # node 3 claiming parent 1 skips a level
        with pytest.raises(ValueError):
            RankedBFSTree(net, [-1, 0, 1, 1])

    def test_rejects_non_graph_edge(self):
        net = grid(2, 3)
        parent = [-1] * net.n
        levels = net.levels()
        # assign valid parents first
        for v in net.nodes():
            if v == net.source:
                continue
            parent[v] = next(
                u for u in net.neighbors[v] if levels[u] == levels[v] - 1
            )
        # then corrupt one: find two level-2 nodes not adjacent
        two = [v for v in net.nodes() if levels[v] == 2]
        v = two[0]
        non_neighbor_prev = [
            u
            for u in net.nodes()
            if levels[u] == 1 and u not in net.neighbors[v]
        ]
        if non_neighbor_prev:
            parent[v] = non_neighbor_prev[0]
            with pytest.raises(ValueError):
                RankedBFSTree(net, parent)
