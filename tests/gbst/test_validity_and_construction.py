"""Tests for GBST validity (Figure 1) and the construction repair loop."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gbst.figure1 import (
    figure1_network,
    figure1_tree_invalid,
    figure1_tree_valid,
)
from repro.gbst.gbst import build_gbst
from repro.gbst.ranked_bfs import build_ranked_bfs_tree
from repro.gbst.validity import gbst_violations, is_gbst
from repro.topologies.basic import (
    balanced_tree,
    caterpillar,
    cycle,
    grid,
    path,
    star,
)
from repro.topologies.random_graphs import gnp, random_tree


class TestFigure1:
    """The paper's Figure 1: same graph, parent choice flips GBST validity."""

    def test_invalid_tree_detected(self):
        tree = figure1_tree_invalid()
        assert not is_gbst(tree)

    def test_violation_identifies_cross_edge(self):
        tree = figure1_tree_invalid()
        net = tree.network
        violations = gbst_violations(tree)
        assert violations
        v = violations[0]
        # the interference is at a2, between parent a1 and rival b1
        labels = {net.label_of(v.child), net.label_of(v.parent), net.label_of(v.rival)}
        assert labels == {"a2", "a1", "b1"}

    def test_valid_tree_accepted(self):
        assert is_gbst(figure1_tree_valid())

    def test_build_gbst_fixes_figure1(self):
        result = build_gbst(figure1_network())
        assert result.valid
        assert is_gbst(result.tree)


class TestValidityOnSimpleFamilies:
    def test_path_tree_is_gbst(self):
        assert is_gbst(build_ranked_bfs_tree(path(10)))

    def test_star_tree_is_gbst(self):
        assert is_gbst(build_ranked_bfs_tree(star(8)))

    def test_broom_is_gbst(self):
        """Two parallel bristles in a *tree* cannot interfere (no cross
        graph edges), so the operational property holds."""
        assert is_gbst(build_ranked_bfs_tree(balanced_tree(2, 4)))

    def test_violation_dataclass_fields(self):
        violations = gbst_violations(figure1_tree_invalid())
        v = violations[0]
        assert v.rank == 1
        assert v.level == 1


class TestBuildGBST:
    @pytest.mark.parametrize(
        "network",
        [
            path(12),
            star(9),
            cycle(9),
            grid(5, 5),
            caterpillar(10, 2),
            balanced_tree(3, 3),
        ],
        ids=lambda net: net.name,
    )
    def test_deterministic_families_converge(self, network):
        result = build_gbst(network)
        assert result.valid, (
            f"{network.name}: {result.remaining_violations} violations "
            f"after {result.repair_iterations} iterations"
        )

    @given(
        n=st.integers(min_value=2, max_value=50),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_trees_converge(self, n, seed):
        result = build_gbst(random_tree(n, rng=seed))
        assert result.valid

    @given(
        n=st.integers(min_value=4, max_value=40),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_gnp_converges(self, n, seed):
        result = build_gbst(gnp(n, 0.15, rng=seed))
        assert result.valid

    def test_result_reports_iterations(self):
        result = build_gbst(path(5))
        assert result.repair_iterations == 0  # already valid
        assert result.remaining_violations == 0

    def test_figure1_needs_repair(self):
        # the default parent heuristic may or may not trigger the conflict;
        # build from the known-bad tree shape by checking repair works at all
        result = build_gbst(figure1_network())
        assert result.valid
