"""Tests for GF(2^8) arithmetic, including property-based field axioms."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.gf256 import GF256

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestBasicValues:
    def test_add_is_xor(self):
        assert GF256.add(0b1010, 0b0110) == 0b1100

    def test_add_self_is_zero(self):
        assert GF256.add(123, 123) == 0

    def test_mul_identity(self):
        assert GF256.mul(1, 77) == 77

    def test_mul_zero(self):
        assert GF256.mul(0, 77) == 0
        assert GF256.mul(77, 0) == 0

    def test_known_aes_product(self):
        # 0x53 * 0xCA = 0x01 under the AES polynomial — a standard check.
        assert GF256.mul(0x53, 0xCA) == 0x01

    def test_inv_of_one(self):
        assert GF256.inv(1) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(1, 0)

    def test_div_zero_numerator(self):
        assert GF256.div(0, 5) == 0

    def test_pow_basics(self):
        assert GF256.pow(2, 0) == 1
        assert GF256.pow(2, 1) == 2
        assert GF256.pow(0, 0) == 1
        assert GF256.pow(0, 5) == 0

    def test_pow_negative_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.pow(0, -1)

    def test_pow_negative(self):
        a = 19
        assert GF256.mul(GF256.pow(a, -1), a) == 1

    def test_generator_has_full_order(self):
        seen = set()
        value = 1
        for _ in range(255):
            seen.add(value)
            value = GF256.mul(value, GF256.generator)
        assert len(seen) == 255
        assert value == 1  # full cycle returns to identity


class TestFieldAxiomsProperty:
    @given(elements, elements)
    def test_add_commutative(self, a, b):
        assert GF256.add(a, b) == GF256.add(b, a)

    @given(elements, elements)
    def test_mul_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(elements, elements, elements)
    def test_add_associative(self, a, b, c):
        assert GF256.add(GF256.add(a, b), c) == GF256.add(a, GF256.add(b, c))

    @given(elements, elements, elements)
    def test_mul_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(elements, elements, elements)
    def test_distributivity(self, a, b, c):
        left = GF256.mul(a, GF256.add(b, c))
        right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
        assert left == right

    @given(nonzero)
    def test_inverse_roundtrip(self, a):
        assert GF256.mul(a, GF256.inv(a)) == 1

    @given(elements, nonzero)
    def test_div_mul_roundtrip(self, a, b):
        assert GF256.mul(GF256.div(a, b), b) == a

    @given(nonzero, st.integers(min_value=-10, max_value=10))
    def test_pow_matches_repeated_mul(self, a, e):
        expected = 1
        if e >= 0:
            for _ in range(e):
                expected = GF256.mul(expected, a)
        else:
            inv = GF256.inv(a)
            for _ in range(-e):
                expected = GF256.mul(expected, inv)
        assert GF256.pow(a, e) == expected


class TestVectorOps:
    def test_mul_vec_matches_scalar(self):
        a = np.array([0, 1, 2, 255], dtype=np.uint8)
        b = np.array([7, 7, 7, 7], dtype=np.uint8)
        out = GF256.mul_vec(a, b)
        for i in range(len(a)):
            assert out[i] == GF256.mul(int(a[i]), int(b[i]))

    def test_scale_vec(self):
        v = np.arange(256, dtype=np.uint8)
        out = GF256.scale_vec(3, v)
        for i in (0, 1, 17, 255):
            assert out[i] == GF256.mul(3, i)

    def test_add_vec(self):
        a = np.array([1, 2, 3], dtype=np.uint8)
        assert np.array_equal(GF256.add_vec(a, a), np.zeros(3, dtype=np.uint8))

    def test_dot_vec(self):
        a = np.array([1, 2], dtype=np.uint8)
        b = np.array([3, 4], dtype=np.uint8)
        expected = GF256.add(GF256.mul(1, 3), GF256.mul(2, 4))
        assert GF256.dot_vec(a, b) == expected

    def test_dot_vec_empty(self):
        e = np.array([], dtype=np.uint8)
        assert GF256.dot_vec(e, e) == 0

    def test_dot_vec_shape_mismatch(self):
        with pytest.raises(ValueError):
            GF256.dot_vec(
                np.array([1], dtype=np.uint8), np.array([1, 2], dtype=np.uint8)
            )

    def test_inv_vec(self):
        v = np.arange(1, 256, dtype=np.uint8)
        out = GF256.inv_vec(v)
        assert np.array_equal(
            GF256.mul_vec(v, out), np.ones(255, dtype=np.uint8)
        )

    def test_inv_vec_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv_vec(np.array([0, 1], dtype=np.uint8))


class TestMatmul:
    def test_identity(self):
        eye = np.eye(4, dtype=np.uint8)
        m = np.arange(16, dtype=np.uint8).reshape(4, 4)
        assert np.array_equal(GF256.matmul(eye, m), m)

    def test_matches_scalar_definition(self):
        a = np.array([[1, 2], [3, 4]], dtype=np.uint8)
        b = np.array([[5, 6], [7, 8]], dtype=np.uint8)
        out = GF256.matmul(a, b)
        for i in range(2):
            for j in range(2):
                expected = GF256.add(
                    GF256.mul(int(a[i, 0]), int(b[0, j])),
                    GF256.mul(int(a[i, 1]), int(b[1, j])),
                )
                assert out[i, j] == expected

    def test_dimension_check(self):
        a = np.zeros((2, 3), dtype=np.uint8)
        b = np.zeros((2, 3), dtype=np.uint8)
        with pytest.raises(ValueError):
            GF256.matmul(a, b)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            GF256.matmul(
                np.zeros(3, dtype=np.uint8), np.zeros((3, 1), dtype=np.uint8)
            )

    def test_empty_inner_dimension(self):
        a = np.zeros((3, 0), dtype=np.uint8)
        b = np.zeros((0, 4), dtype=np.uint8)
        out = GF256.matmul(a, b)
        assert out.shape == (3, 4)
        assert not out.any()
        assert np.array_equal(out, GF256.matmul_reference(a, b))

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_broadcast_matches_reference(self, rows, inner, cols, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, size=(rows, inner), dtype=np.uint8)
        b = rng.integers(0, 256, size=(inner, cols), dtype=np.uint8)
        fast = GF256.matmul(a, b)
        ref = GF256.matmul_reference(a, b)
        assert fast.dtype == ref.dtype == np.uint8
        assert np.array_equal(fast, ref)

    def test_large_product_falls_back_to_reference(self, monkeypatch):
        # shrink the gate so a small product exercises the fallback branch
        monkeypatch.setattr(GF256, "MATMUL_BROADCAST_LIMIT", 8)
        rng = np.random.default_rng(3)
        a = rng.integers(0, 256, size=(5, 7), dtype=np.uint8)
        b = rng.integers(0, 256, size=(7, 6), dtype=np.uint8)
        assert np.array_equal(
            GF256.matmul(a, b), GF256.matmul_reference(a, b)
        )


class TestTables:
    def test_tables_read_only(self):
        with pytest.raises(ValueError):
            GF256.exp_table()[0] = 5
        with pytest.raises(ValueError):
            GF256.log_table()[1] = 5

    def test_exp_log_consistency(self):
        exp, log = GF256.exp_table(), GF256.log_table()
        for a in (1, 2, 3, 100, 255):
            assert exp[int(log[a])] == a
