"""Tests for random linear network coding: rank evolution and decoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.rlnc import (
    CodedPacket,
    RLNCDecoder,
    RLNCEncoder,
    random_coefficients,
)
from repro.util.rng import RandomSource


def unit_packet(k: int, index: int, payload: bytes = b"") -> CodedPacket:
    coeffs = bytearray(k)
    coeffs[index] = 1
    return CodedPacket(coefficients=bytes(coeffs), payload=payload)


class TestCodedPacket:
    def test_k_property(self):
        assert unit_packet(5, 0).k == 5

    def test_is_zero(self):
        assert CodedPacket(b"\x00\x00", b"").is_zero()
        assert not unit_packet(2, 1).is_zero()

    def test_arrays(self):
        p = CodedPacket(b"\x01\x02", b"\xff")
        assert np.array_equal(
            p.coefficient_array(), np.array([1, 2], dtype=np.uint8)
        )
        assert np.array_equal(p.payload_array(), np.array([255], dtype=np.uint8))


class TestRandomCoefficients:
    def test_never_zero(self):
        rng = RandomSource(0)
        for _ in range(50):
            assert np.any(random_coefficients(4, rng))

    def test_length(self):
        assert random_coefficients(7, RandomSource(1)).shape == (7,)


class TestDecoderRank:
    def test_initial_rank_zero(self):
        d = RLNCDecoder(k=4)
        assert d.rank == 0 and not d.is_complete()

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            RLNCDecoder(k=0)

    def test_rejects_negative_payload(self):
        with pytest.raises(ValueError):
            RLNCDecoder(k=1, payload_length=-1)

    def test_unit_vectors_fill_rank(self):
        d = RLNCDecoder(k=3)
        for i in range(3):
            assert d.receive(unit_packet(3, i))
        assert d.is_complete()

    def test_duplicate_not_innovative(self):
        d = RLNCDecoder(k=3)
        assert d.receive(unit_packet(3, 0))
        assert not d.receive(unit_packet(3, 0))
        assert d.rank == 1

    def test_linear_combination_not_innovative(self):
        d = RLNCDecoder(k=3)
        d.receive(unit_packet(3, 0))
        d.receive(unit_packet(3, 1))
        combo = CodedPacket(b"\x01\x01\x00", b"")  # m0 + m1
        assert not d.receive(combo)
        assert d.rank == 2

    def test_zero_packet_not_innovative(self):
        d = RLNCDecoder(k=2)
        assert not d.receive(CodedPacket(b"\x00\x00", b""))

    def test_counts(self):
        d = RLNCDecoder(k=2)
        d.receive(unit_packet(2, 0))
        d.receive(unit_packet(2, 0))
        assert d.received_count == 2
        assert d.innovative_count == 1

    def test_packet_k_mismatch(self):
        d = RLNCDecoder(k=3)
        with pytest.raises(ValueError):
            d.receive(unit_packet(2, 0))

    def test_payload_length_mismatch(self):
        d = RLNCDecoder(k=2, payload_length=4)
        with pytest.raises(ValueError):
            d.receive(unit_packet(2, 0, payload=b"xx"))

    def test_basis_coefficients_shape(self):
        d = RLNCDecoder(k=3)
        assert d.basis_coefficients().shape == (0, 3)
        d.receive(unit_packet(3, 1))
        assert d.basis_coefficients().shape == (1, 3)


class TestDecoding:
    def test_decode_before_complete_raises(self):
        d = RLNCDecoder(k=2, payload_length=1)
        d.receive(unit_packet(2, 0, b"\x01"))
        with pytest.raises(ValueError):
            d.decode()

    def test_decode_from_units(self):
        messages = [b"hello!!!", b"world...", b"packets!"]
        d = RLNCDecoder(k=3, payload_length=8)
        for i, msg in enumerate(messages):
            d.receive(unit_packet(3, i, msg))
        assert d.decode_messages() == messages

    def test_decode_from_random_combinations(self):
        rng = RandomSource(42)
        messages = [bytes(rng.bytes_array(16).tobytes()) for _ in range(5)]
        source = RLNCEncoder(k=5, payload_length=16, messages=messages)
        sink = RLNCDecoder(k=5, payload_length=16)
        emit_rng = RandomSource(7)
        while not sink.is_complete():
            packet = source.emit(emit_rng)
            sink.receive(packet)
        assert sink.decode_messages() == messages

    @given(
        k=st.integers(min_value=1, max_value=6),
        length=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, k, length, seed):
        rng = RandomSource(seed)
        messages = [bytes(rng.bytes_array(length).tobytes()) for _ in range(k)]
        source = RLNCEncoder(k=k, payload_length=length, messages=messages)
        sink = RLNCDecoder(k=k, payload_length=length)
        emit_rng = rng.spawn()
        for _ in range(20 * k):  # far more than enough w.h.p.
            sink.receive(source.emit(emit_rng))
            if sink.is_complete():
                break
        assert sink.is_complete()
        assert sink.decode_messages() == messages


class TestEncoder:
    def test_source_starts_complete(self):
        enc = RLNCEncoder(k=2, payload_length=1, messages=[b"a", b"b"])
        assert enc.is_complete() and enc.rank == 2

    def test_relay_starts_empty(self):
        enc = RLNCEncoder(k=2, payload_length=1)
        assert enc.rank == 0 and not enc.can_transmit()

    def test_emit_without_knowledge_raises(self):
        with pytest.raises(ValueError):
            RLNCEncoder(k=2).emit(RandomSource(0))

    def test_message_count_validation(self):
        with pytest.raises(ValueError):
            RLNCEncoder(k=2, payload_length=1, messages=[b"a"])

    def test_message_length_validation(self):
        with pytest.raises(ValueError):
            RLNCEncoder(k=1, payload_length=2, messages=[b"a"])

    def test_emitted_packets_in_known_subspace(self):
        enc = RLNCEncoder(k=4, payload_length=0)
        enc.receive(unit_packet(4, 0))
        enc.receive(unit_packet(4, 2))
        rng = RandomSource(3)
        for _ in range(20):
            packet = enc.emit(rng)
            coeffs = packet.coefficient_array()
            # components 1 and 3 must be zero: the node knows only e0, e2
            assert coeffs[1] == 0 and coeffs[3] == 0
            assert coeffs[0] != 0 or coeffs[2] != 0

    def test_relay_innovation_rate(self):
        """A relay that knows strictly more is innovative w.p. >= 1 - 1/256."""
        rng = RandomSource(5)
        messages = [bytes(rng.bytes_array(4).tobytes()) for _ in range(8)]
        source = RLNCEncoder(k=8, payload_length=4, messages=messages)
        sink = RLNCDecoder(k=8, payload_length=4)
        emit_rng = RandomSource(6)
        attempts = 0
        while not sink.is_complete():
            sink.receive(source.emit(emit_rng))
            attempts += 1
            assert attempts < 100  # would be ~8 w.h.p.
        # decoding needs exactly k innovative receptions
        assert sink.innovative_count == 8
