"""Tests for GF(2^8) matrices: RREF, rank, inversion, solving."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.coding.gf256 import GF256
from repro.coding.matrix import GFMatrix

small_matrices = arrays(
    dtype=np.uint8,
    shape=st.tuples(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    ),
)


class TestConstruction:
    def test_from_lists(self):
        m = GFMatrix([[1, 2], [3, 4]])
        assert m.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            GFMatrix(np.zeros(3, dtype=np.uint8))

    def test_data_is_copied(self):
        src = np.zeros((2, 2), dtype=np.uint8)
        m = GFMatrix(src)
        src[0, 0] = 9
        assert m.data[0, 0] == 0

    def test_zeros_and_identity(self):
        assert GFMatrix.zeros(2, 3).shape == (2, 3)
        eye = GFMatrix.identity(3)
        assert eye.rank() == 3

    def test_zeros_rejects_negative(self):
        with pytest.raises(ValueError):
            GFMatrix.zeros(-1, 2)

    def test_equality_and_hash(self):
        a = GFMatrix([[1, 2]])
        b = GFMatrix([[1, 2]])
        assert a == b and hash(a) == hash(b)
        assert a != GFMatrix([[1, 3]])
        assert a.__eq__(42) is NotImplemented


class TestArithmetic:
    def test_add_is_xor(self):
        a = GFMatrix([[1, 2]])
        assert (a + a) == GFMatrix.zeros(1, 2)

    def test_add_shape_mismatch(self):
        with pytest.raises(ValueError):
            GFMatrix.zeros(1, 2) + GFMatrix.zeros(2, 1)

    def test_sub_equals_add(self):
        a = GFMatrix([[5, 6]])
        b = GFMatrix([[1, 2]])
        assert (a - b) == (a + b)

    def test_matmul_identity(self):
        m = GFMatrix([[9, 8], [7, 6]])
        assert (GFMatrix.identity(2) @ m) == m

    def test_scale(self):
        m = GFMatrix([[1, 2]])
        scaled = m.scale(3)
        assert scaled.data[0, 0] == GF256.mul(3, 1)
        assert scaled.data[0, 1] == GF256.mul(3, 2)

    def test_transpose(self):
        m = GFMatrix([[1, 2, 3]])
        assert m.transpose().shape == (3, 1)


class TestRREFAndRank:
    def test_rank_of_zero_matrix(self):
        assert GFMatrix.zeros(3, 3).rank() == 0

    def test_rank_of_identity(self):
        assert GFMatrix.identity(5).rank() == 5

    def test_rank_of_duplicated_rows(self):
        m = GFMatrix([[1, 2, 3], [1, 2, 3], [0, 0, 1]])
        assert m.rank() == 2

    def test_rref_idempotent(self):
        m = GFMatrix([[3, 1, 4], [1, 5, 9], [2, 6, 5]])
        r1, p1 = m.rref()
        r2, p2 = r1.rref()
        assert r1 == r2 and p1 == p2

    def test_rref_pivot_columns_are_unit(self):
        m = GFMatrix([[3, 1], [1, 5]])
        reduced, pivots = m.rref()
        for row, col in enumerate(pivots):
            column = reduced.data[:, col]
            assert column[row] == 1
            assert np.count_nonzero(column) == 1

    @given(small_matrices)
    @settings(max_examples=50, deadline=None)
    def test_rank_bounded_by_dims(self, data):
        m = GFMatrix(data)
        assert 0 <= m.rank() <= min(m.shape)

    @given(small_matrices)
    @settings(max_examples=50, deadline=None)
    def test_rank_invariant_under_transpose(self, data):
        m = GFMatrix(data)
        assert m.rank() == m.transpose().rank()


class TestInverse:
    def test_inverse_roundtrip(self):
        m = GFMatrix([[1, 2], [3, 5]])
        assert (m @ m.inverse()) == GFMatrix.identity(2)
        assert (m.inverse() @ m) == GFMatrix.identity(2)

    def test_singular_raises(self):
        with pytest.raises(ValueError):
            GFMatrix([[1, 2], [1, 2]]).inverse()

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            GFMatrix.zeros(2, 3).inverse()

    def test_is_invertible(self):
        assert GFMatrix.identity(3).is_invertible()
        assert not GFMatrix.zeros(3, 3).is_invertible()
        assert not GFMatrix.zeros(2, 3).is_invertible()


class TestSolve:
    def test_solve_identity(self):
        rhs = GFMatrix([[7], [9]])
        x = GFMatrix.identity(2).solve(rhs)
        assert x == rhs

    def test_solve_roundtrip(self):
        a = GFMatrix([[1, 2], [3, 5]])
        rhs = GFMatrix([[10, 20], [30, 40]])
        x = a.solve(rhs)
        assert (a @ x) == rhs

    def test_solve_singular_raises(self):
        with pytest.raises(ValueError):
            GFMatrix([[1, 1], [1, 1]]).solve(GFMatrix([[1], [2]]))

    def test_solve_non_square_raises(self):
        with pytest.raises(ValueError):
            GFMatrix.zeros(2, 3).solve(GFMatrix.zeros(2, 1))

    def test_solve_rhs_shape_mismatch(self):
        with pytest.raises(ValueError):
            GFMatrix.identity(2).solve(GFMatrix.zeros(3, 1))


class TestVandermonde:
    def test_shape(self):
        v = GFMatrix.vandermonde([0, 1, 2], 3)
        assert v.shape == (3, 3)

    def test_first_column_is_ones(self):
        v = GFMatrix.vandermonde([5, 9, 200], 4)
        assert np.all(v.data[:, 0] == 1)

    def test_distinct_points_full_rank(self):
        # the MDS property: any k rows with distinct points are independent
        v = GFMatrix.vandermonde([3, 14, 15, 92, 65], 5)
        assert v.rank() == 5

    def test_repeated_points_rank_deficient(self):
        v = GFMatrix.vandermonde([7, 7, 8], 3)
        assert v.rank() == 2

    def test_rejects_out_of_field_points(self):
        with pytest.raises(ValueError):
            GFMatrix.vandermonde([256], 2)

    def test_rejects_non_positive_cols(self):
        with pytest.raises(ValueError):
            GFMatrix.vandermonde([1], 0)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=255),
            min_size=1,
            max_size=8,
            unique=True,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_any_distinct_point_set_is_full_rank(self, points):
        v = GFMatrix.vandermonde(points, len(points))
        assert v.rank() == len(points)


class TestRowAccess:
    def test_row_returns_copy(self):
        m = GFMatrix([[1, 2], [3, 4]])
        r = m.row(0)
        r[0] = 99
        assert m.data[0, 0] == 1
