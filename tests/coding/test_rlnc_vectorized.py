"""Cross-checks: vectorized RLNC kernels vs their scalar references.

The vectorized decoder keeps its basis in reduced row echelon form and
eliminates against every pivot in one batched pass; the reference decoder
is the original per-column loop over an echelon-only basis. Both must
agree on every innovation verdict, on the rank trajectory, on the spanned
subspace, and on the decoded messages.
"""

import numpy as np
import pytest

from repro.coding.gf256 import GF256
from repro.coding.rlnc import CodedPacket, RLNCDecoder, RLNCEncoder
from repro.util.rng import RandomSource


class TestDecoderEquivalence:
    def test_verdicts_rank_and_decode_match_reference(self):
        rng = RandomSource(0xD0C)
        for trial in range(60):
            k = rng.randint(1, 16)
            payload_length = rng.randint(0, 16)
            vectorized = RLNCDecoder(k, payload_length)
            reference = RLNCDecoder(k, payload_length, reference=True)
            for _ in range(3 * k):
                coefficients = rng.bytes_array(k)
                payload = rng.bytes_array(payload_length)
                got = vectorized.receive_raw(coefficients, payload)
                want = reference.receive_raw(coefficients.copy(), payload.copy())
                assert got == want, f"trial {trial}"
                assert vectorized.rank == reference.rank, f"trial {trial}"
            assert vectorized.received_count == reference.received_count
            assert vectorized.innovative_count == reference.innovative_count
            if vectorized.is_complete():
                assert np.array_equal(vectorized.decode(), reference.decode())

    def test_adversarial_dependent_rows(self):
        """Linear combinations of earlier receptions are never innovative."""
        k = 8
        rng = RandomSource(77)
        vectorized = RLNCDecoder(k)
        reference = RLNCDecoder(k, reference=True)
        seen: list[np.ndarray] = []
        for step in range(40):
            if seen and rng.bernoulli(0.5):
                weights = rng.bytes_array(len(seen))
                row = GF256.combine(weights, np.stack(seen))
            else:
                row = rng.bytes_array(k)
            seen.append(row.copy())
            got = vectorized.receive_raw(row.copy(), np.empty(0, dtype=np.uint8))
            want = reference.receive_raw(row.copy(), np.empty(0, dtype=np.uint8))
            assert got == want, f"step {step}"
            assert vectorized.rank == reference.rank

    def test_rref_invariant(self):
        """Every stored row has 1 at its own pivot and 0 at other pivots."""
        k = 12
        rng = RandomSource(5)
        decoder = RLNCDecoder(k, payload_length=4)
        while not decoder.is_complete():
            decoder.receive_raw(rng.bytes_array(k), rng.bytes_array(4))
        basis = decoder._basis
        for col in range(k):
            owner = int(decoder._pivot_of[col])
            assert owner >= 0
            column = basis[:k, col]
            assert column[owner] == 1
            assert not np.any(np.delete(column, owner))

    def test_full_rank_shortcut_counts_receptions(self):
        decoder = RLNCDecoder(k=2)
        assert decoder.receive(CodedPacket(b"\x01\x00", b""))
        assert decoder.receive(CodedPacket(b"\x00\x01", b""))
        assert decoder.is_complete()
        assert not decoder.receive(CodedPacket(b"\x05\x09", b""))
        assert decoder.received_count == 3
        assert decoder.innovative_count == 2

    def test_full_rank_shortcut_still_validates(self):
        decoder = RLNCDecoder(k=2, payload_length=2)
        decoder.receive(CodedPacket(b"\x01\x00", b"aa"))
        decoder.receive(CodedPacket(b"\x00\x01", b"bb"))
        with pytest.raises(ValueError):
            decoder.receive(CodedPacket(b"\x01", b"cc"))
        with pytest.raises(ValueError):
            decoder.receive(CodedPacket(b"\x01\x02", b"c"))


class TestEncoderEquivalence:
    def test_emit_spans_same_subspace_as_reference(self):
        """Both emitters produce vectors inside the known subspace and cover
        it (a long emission run reconstructs full rank at a fresh decoder)."""
        rng = RandomSource(21)
        k = 6
        messages = [bytes(rng.bytes_array(8).tobytes()) for _ in range(k)]
        encoder = RLNCEncoder(k, 8, messages=messages)
        for emit in (encoder.emit, encoder.emit_reference):
            sink = RLNCDecoder(k, 8)
            emit_rng = RandomSource(33)
            for _ in range(20 * k):
                sink.receive(emit(emit_rng))
                if sink.is_complete():
                    break
            assert sink.is_complete()
            assert sink.decode_messages() == messages

    def test_emit_partial_knowledge_stays_in_subspace(self):
        encoder = RLNCEncoder(k=5)
        unit = np.zeros(5, dtype=np.uint8)
        for index in (0, 3):
            unit[:] = 0
            unit[index] = 1
            encoder.decoder.receive_raw(unit, np.empty(0, dtype=np.uint8))
        rng = RandomSource(2)
        for _ in range(25):
            packet = encoder.emit(rng)
            coefficients = packet.coefficient_array()
            assert coefficients[1] == 0
            assert coefficients[2] == 0
            assert coefficients[4] == 0
            assert coefficients[0] != 0 or coefficients[3] != 0

    def test_reference_encoder_uses_reference_decoder(self):
        encoder = RLNCEncoder(k=2, payload_length=0, reference=True)
        assert encoder.decoder._reference


class TestGF256Batched:
    def test_combine_matches_scalar_loop(self):
        rng = RandomSource(4)
        for _ in range(20):
            rank = rng.randint(1, 20)
            width = rng.randint(1, 32)
            weights = rng.bytes_array(rank)
            rows = rng.bytes_array(rank * width).reshape(rank, width)
            expected = np.zeros(width, dtype=np.uint8)
            for i in range(rank):
                expected ^= GF256.scale_vec(int(weights[i]), rows[i])
            assert np.array_equal(GF256.combine(weights, rows), expected)

    def test_combine_empty_basis(self):
        empty = np.zeros((0, 7), dtype=np.uint8)
        assert np.array_equal(
            GF256.combine(np.zeros(0, dtype=np.uint8), empty),
            np.zeros(7, dtype=np.uint8),
        )

    def test_scale_rows_matches_scale_vec(self):
        rng = RandomSource(6)
        scalars = rng.bytes_array(9)
        rows = rng.bytes_array(9 * 13).reshape(9, 13)
        batched = GF256.scale_rows(scalars, rows)
        for i in range(9):
            assert np.array_equal(
                batched[i], GF256.scale_vec(int(scalars[i]), rows[i])
            )
