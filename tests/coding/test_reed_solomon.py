"""Tests for the Reed-Solomon erasure code, centered on the MDS property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.reed_solomon import ReedSolomonCode
from repro.util.rng import RandomSource


def make_packets(k: int, length: int, seed: int = 0) -> list[bytes]:
    rng = RandomSource(seed)
    return [bytes(rng.bytes_array(length).tobytes()) for _ in range(k)]


class TestConstruction:
    def test_valid_parameters(self):
        code = ReedSolomonCode(k=4, m=10)
        assert code.k == 4 and code.m == 10

    def test_k_equals_m_allowed(self):
        ReedSolomonCode(k=5, m=5)

    def test_rejects_k_out_of_range(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(k=0, m=5)
        with pytest.raises(ValueError):
            ReedSolomonCode(k=257, m=257)

    def test_rejects_m_below_k(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(k=5, m=4)

    def test_rejects_m_above_field(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(k=5, m=257)

    def test_repr(self):
        assert "k=3" in repr(ReedSolomonCode(3, 6))


class TestEncode:
    def test_produces_m_packets(self):
        code = ReedSolomonCode(k=3, m=7)
        coded = code.encode(make_packets(3, 16))
        assert len(coded) == 7
        assert all(len(c) == 16 for c in coded)

    def test_rejects_wrong_packet_count(self):
        code = ReedSolomonCode(k=3, m=7)
        with pytest.raises(ValueError):
            code.encode(make_packets(2, 16))

    def test_rejects_mixed_lengths(self):
        code = ReedSolomonCode(k=2, m=4)
        with pytest.raises(ValueError):
            code.encode([b"abcd", b"ab"])

    def test_rejects_empty_packets(self):
        code = ReedSolomonCode(k=2, m=4)
        with pytest.raises(ValueError):
            code.encode([b"", b""])

    def test_encode_array_shape(self):
        code = ReedSolomonCode(k=2, m=5)
        message = np.arange(2 * 8, dtype=np.uint8).reshape(2, 8)
        coded = code.encode_array(message)
        assert coded.shape == (5, 8)

    def test_encode_array_rejects_bad_rows(self):
        code = ReedSolomonCode(k=2, m=5)
        with pytest.raises(ValueError):
            code.encode_array(np.zeros((3, 4), dtype=np.uint8))


class TestMDSProperty:
    """Any k of the m coded packets reconstruct the message exactly."""

    def test_first_k(self):
        code = ReedSolomonCode(k=4, m=12)
        packets = make_packets(4, 32, seed=1)
        coded = code.encode(packets)
        decoded = code.decode(list(enumerate(coded))[:4])
        assert decoded == packets

    def test_last_k(self):
        code = ReedSolomonCode(k=4, m=12)
        packets = make_packets(4, 32, seed=2)
        coded = code.encode(packets)
        received = [(i, coded[i]) for i in range(8, 12)]
        assert code.decode(received) == packets

    def test_scattered_subset(self):
        code = ReedSolomonCode(k=5, m=20)
        packets = make_packets(5, 8, seed=3)
        coded = code.encode(packets)
        received = [(i, coded[i]) for i in (0, 7, 11, 13, 19)]
        assert code.decode(received) == packets

    def test_extra_packets_ignored(self):
        code = ReedSolomonCode(k=3, m=9)
        packets = make_packets(3, 8, seed=4)
        coded = code.encode(packets)
        received = [(i, coded[i]) for i in range(9)]
        assert code.decode(received) == packets

    def test_duplicate_indices_do_not_count_twice(self):
        code = ReedSolomonCode(k=3, m=9)
        packets = make_packets(3, 8, seed=5)
        coded = code.encode(packets)
        received = [(0, coded[0]), (0, coded[0]), (1, coded[1])]
        with pytest.raises(ValueError):
            code.decode(received)

    @given(
        k=st.integers(min_value=1, max_value=8),
        extra=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_subsets_decode(self, k, extra, seed):
        m = k + extra
        code = ReedSolomonCode(k=k, m=m)
        packets = make_packets(k, 8, seed=seed)
        coded = code.encode(packets)
        rng = RandomSource(seed)
        chosen = rng.sample(range(m), k)
        received = [(i, coded[i]) for i in chosen]
        assert code.decode(received) == packets


class TestDecodeErrors:
    def test_too_few_packets(self):
        code = ReedSolomonCode(k=4, m=10)
        coded = code.encode(make_packets(4, 8))
        with pytest.raises(ValueError):
            code.decode(list(enumerate(coded))[:3])

    def test_out_of_range_index(self):
        code = ReedSolomonCode(k=2, m=4)
        with pytest.raises(ValueError):
            code.decode([(4, b"xxxx"), (0, b"yyyy")])

    def test_mixed_length_payloads(self):
        code = ReedSolomonCode(k=2, m=4)
        with pytest.raises(ValueError):
            code.decode([(0, b"abcd"), (1, b"ab")])


class TestArrayRoundTrip:
    def test_decode_array(self):
        code = ReedSolomonCode(k=3, m=8)
        message = RandomSource(7).bytes_array(3 * 16).reshape(3, 16)
        coded = code.encode_array(message)
        indices = [2, 5, 7]
        decoded = code.decode_array(indices, coded[indices])
        assert np.array_equal(decoded, message)
