"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "A3" in out

    def test_list_enumerates_algorithms_and_topologies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "algorithms" in out
        assert "decay" in out and "star_coding" in out
        assert "topologies" in out
        assert "single_link" in out


class TestRun:
    def test_run_smoke(self, capsys):
        assert main(["run", "E18", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "single-link" in out

    def test_run_csv_format(self, capsys):
        assert main(["run", "E18", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert "k,adaptive_rounds" in out

    def test_run_markdown_format(self, capsys):
        assert main(["run", "E18", "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| k |")

    def test_unknown_experiment(self, capsys):
        assert main(["run", "E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_seed_flag(self, capsys):
        assert main(["run", "E18", "--seed", "7"]) == 0

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "E1", "--scale", "huge"])

    def test_run_json_format(self, capsys):
        assert main(["run", "E18", "--format", "json"]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert data["columns"][0] == "k"
        assert data["rows"]


class TestSweep:
    SWEEP_ARGS = [
        "sweep",
        "--algorithms", "decay,fastbc",
        "--topology", "path",
        "--n", "16",
        "--fault-model", "receiver",
        "--p", "0.3",
        "--seeds", "0:3",
    ]

    def test_emits_valid_json_reports(self, capsys):
        assert main(self.SWEEP_ARGS) == 0
        reports = json.loads(capsys.readouterr().out)
        assert len(reports) == 6  # 2 algorithms x 3 seeds
        assert {r["algorithm"] for r in reports} == {"decay", "fastbc"}
        assert {r["scenario"]["seed"] for r in reports} == {0, 1, 2}
        for report in reports:
            assert report["scenario"]["faults"] == {
                "model": "receiver",
                "p": 0.3,
            }
            assert report["rounds"] >= 1
            assert "wall_time_s" in report

    def test_parallel_matches_serial(self, capsys):
        assert main(self.SWEEP_ARGS) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(self.SWEEP_ARGS + ["--processes", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        for left, right in zip(serial, parallel):
            left.pop("wall_time_s"), right.pop("wall_time_s")
        assert serial == parallel

    def test_table_format(self, capsys):
        assert main(self.SWEEP_ARGS + ["--format", "table"]) == 0
        out = capsys.readouterr().out
        assert "algorithm" in out and "rounds" in out

    def test_output_file(self, capsys, tmp_path):
        target = tmp_path / "reports.json"
        assert main(self.SWEEP_ARGS + ["--output", str(target)]) == 0
        assert "wrote 6 reports" in capsys.readouterr().out
        assert len(json.loads(target.read_text())) == 6

    def test_param_flag_reaches_algorithm(self, capsys):
        assert main([
            "sweep", "--algorithms", "rlnc_decay", "--topology", "path",
            "--n", "12", "--param", "k=2", "--seeds", "1",
        ]) == 0
        (report,) = json.loads(capsys.readouterr().out)
        assert report["extras"]["k"] == 2

    def test_unknown_algorithm_fails_cleanly(self, capsys):
        assert main(["sweep", "--algorithms", "warp"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_bad_seed_spec_fails_cleanly(self, capsys):
        assert main(self.SWEEP_ARGS[:-1] + ["5:5"]) == 2
        assert "seed" in capsys.readouterr().err
