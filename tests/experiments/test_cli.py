"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "A3" in out


class TestRun:
    def test_run_smoke(self, capsys):
        assert main(["run", "E18", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "single-link" in out

    def test_run_csv_format(self, capsys):
        assert main(["run", "E18", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert "k,adaptive_rounds" in out

    def test_run_markdown_format(self, capsys):
        assert main(["run", "E18", "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| k |")

    def test_unknown_experiment(self, capsys):
        assert main(["run", "E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_seed_flag(self, capsys):
        assert main(["run", "E18", "--seed", "7"]) == 0

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "E1", "--scale", "huge"])
