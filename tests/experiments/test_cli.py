"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "A3" in out

    def test_list_enumerates_algorithms_and_topologies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "algorithms" in out
        assert "decay" in out and "star_coding" in out
        assert "topologies" in out
        assert "single_link" in out

    def test_list_includes_adversary_section(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "adversaries" in out
        assert "gilbert_elliott" in out and "budgeted_jammer" in out

    def test_list_adversaries_only(self, capsys):
        assert main(["list", "--adversaries"]) == 0
        out = capsys.readouterr().out
        assert "edge_churn" in out
        assert "E1" not in out and "star_coding" not in out

    def test_list_json_is_machine_readable(self, capsys):
        assert main(["list", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {
            "experiments",
            "algorithms",
            "topologies",
            "adversaries",
            "channels",
        }
        assert "E20" in {e["id"] for e in data["experiments"]}
        assert {c["name"] for c in data["channels"]} == {
            "default",
            "contention",
        }
        by_name = {a["name"]: a for a in data["algorithms"]}
        assert by_name["decay"]["supports_adversary"] is True
        assert by_name["star_coding"]["supports_adversary"] is False
        assert {p["name"] for p in by_name["rlnc_decay"]["params"]} == {
            "k",
            "payload_length",
        }
        assert "single_link" in data["topologies"]
        adversaries = {a["name"]: a for a in data["adversaries"]}
        assert set(adversaries) == {
            "iid",
            "gilbert_elliott",
            "budgeted_jammer",
            "edge_churn",
        }
        assert {p["name"] for p in adversaries["budgeted_jammer"]["params"]} == {
            "per_round",
            "budget",
            "policy",
        }

    def test_list_json_adversaries_only(self, capsys):
        assert main(["list", "--adversaries", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {"adversaries"}


class TestRun:
    def test_run_smoke(self, capsys):
        assert main(["run", "E18", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "single-link" in out

    def test_run_csv_format(self, capsys):
        assert main(["run", "E18", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert "k,adaptive_rounds" in out

    def test_run_markdown_format(self, capsys):
        assert main(["run", "E18", "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| k |")

    def test_unknown_experiment(self, capsys):
        assert main(["run", "E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_seed_flag(self, capsys):
        assert main(["run", "E18", "--seed", "7"]) == 0

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "E1", "--scale", "huge"])

    def test_run_json_format(self, capsys):
        assert main(["run", "E18", "--format", "json"]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert data["columns"][0] == "k"
        assert data["rows"]


class TestSweep:
    SWEEP_ARGS = [
        "sweep",
        "--algorithms", "decay,fastbc",
        "--topology", "path",
        "--n", "16",
        "--fault-model", "receiver",
        "--p", "0.3",
        "--seeds", "0:3",
    ]

    def test_emits_valid_json_reports(self, capsys):
        assert main(self.SWEEP_ARGS) == 0
        reports = json.loads(capsys.readouterr().out)
        assert len(reports) == 6  # 2 algorithms x 3 seeds
        assert {r["algorithm"] for r in reports} == {"decay", "fastbc"}
        assert {r["scenario"]["seed"] for r in reports} == {0, 1, 2}
        for report in reports:
            assert report["scenario"]["faults"] == {
                "model": "receiver",
                "p": 0.3,
            }
            assert report["rounds"] >= 1
            assert "wall_time_s" in report

    def test_parallel_matches_serial(self, capsys):
        assert main(self.SWEEP_ARGS) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(self.SWEEP_ARGS + ["--processes", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        for left, right in zip(serial, parallel):
            left.pop("wall_time_s"), right.pop("wall_time_s")
        assert serial == parallel

    def test_table_format(self, capsys):
        assert main(self.SWEEP_ARGS + ["--format", "table"]) == 0
        out = capsys.readouterr().out
        assert "algorithm" in out and "rounds" in out

    def test_output_file(self, capsys, tmp_path):
        target = tmp_path / "reports.json"
        assert main(self.SWEEP_ARGS + ["--output", str(target)]) == 0
        assert "wrote 6 reports" in capsys.readouterr().out
        assert len(json.loads(target.read_text())) == 6

    def test_param_flag_reaches_algorithm(self, capsys):
        assert main([
            "sweep", "--algorithms", "rlnc_decay", "--topology", "path",
            "--n", "12", "--param", "k=2", "--seeds", "1",
        ]) == 0
        (report,) = json.loads(capsys.readouterr().out)
        assert report["extras"]["k"] == 2

    def test_unknown_algorithm_fails_cleanly(self, capsys):
        assert main(["sweep", "--algorithms", "warp"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_bad_seed_spec_fails_cleanly(self, capsys):
        assert main(self.SWEEP_ARGS[:-1] + ["5:5"]) == 2
        assert "seed" in capsys.readouterr().err


class TestAdversaryFlags:
    def test_sweep_with_adversary(self, capsys):
        assert main([
            "sweep", "--algorithms", "decay", "--topology", "path",
            "--n", "16", "--seeds", "0:2",
            "--adversary", "gilbert_elliott",
            "--adversary-param", "p_bad=0.9",
        ]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert len(reports) == 2
        for report in reports:
            assert report["scenario"]["adversary"] == {
                "kind": "gilbert_elliott",
                "params": {"p_bad": 0.9},
            }

    def test_sweep_unknown_adversary_fails_cleanly(self, capsys):
        assert main([
            "sweep", "--algorithms", "decay", "--adversary", "emp",
        ]) == 2
        assert "unknown adversary" in capsys.readouterr().err

    def test_sweep_adversary_param_without_adversary(self, capsys):
        assert main([
            "sweep", "--algorithms", "decay",
            "--adversary-param", "p_bad=0.9",
        ]) == 2
        assert "--adversary" in capsys.readouterr().err

    def test_sweep_adversary_conflicts_with_fault_model(self, capsys):
        assert main([
            "sweep", "--algorithms", "decay",
            "--fault-model", "receiver", "--p", "0.3",
            "--adversary", "edge_churn",
        ]) == 2
        assert "replaces the fault coins" in capsys.readouterr().err

    def test_run_e20_accepts_adversary(self, capsys):
        assert main([
            "run", "E20", "--scale", "smoke",
            "--adversary", "budgeted_jammer",
            "--adversary-param", "per_round=2",
        ]) == 0
        out = capsys.readouterr().out
        assert "budgeted_jammer" in out
        assert "faultless" in out

    def test_run_classic_experiment_rejects_adversary(self, capsys):
        assert main(["run", "E2", "--adversary", "edge_churn"]) == 2
        assert "does not accept an adversary" in capsys.readouterr().err

    def test_run_unknown_adversary_fails_cleanly(self, capsys):
        assert main(["run", "E20", "--adversary", "emp_blast"]) == 2
        assert "unknown adversary" in capsys.readouterr().err

    def test_run_unknown_adversary_param_fails_cleanly(self, capsys):
        assert main([
            "run", "E20", "--adversary", "gilbert_elliott",
            "--adversary-param", "bogus=1",
        ]) == 2
        assert "unknown parameters" in capsys.readouterr().err


class TestRunE20:
    def test_smoke_table_shape(self, capsys):
        assert main(["run", "E20", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "gilbert_elliott" in out
        assert "jammer_frontier" in out
        assert "slowdown" in out


class TestStoreFlags:
    SWEEP_ARGS = [
        "sweep",
        "--algorithms", "decay",
        "--topology", "path",
        "--n", "16",
        "--fault-model", "receiver",
        "--p", "0.3",
        "--seeds", "0:3",
    ]

    def test_sweep_store_records_reports(self, capsys, tmp_path):
        from repro.store import ResultStore

        db = str(tmp_path / "sweep.db")
        assert main(self.SWEEP_ARGS + ["--store", db]) == 0
        with ResultStore(db) as store:
            assert len(store) == 3

    def test_sweep_resume_replays_identical_bytes(self, capsys, tmp_path):
        db = str(tmp_path / "sweep.db")
        assert main(self.SWEEP_ARGS + ["--store", db, "--resume"]) == 0
        captured = capsys.readouterr()
        assert "resume: 0/3" in captured.err
        fresh = json.loads(captured.out)
        assert main(self.SWEEP_ARGS + ["--store", db, "--resume"]) == 0
        captured = capsys.readouterr()
        assert "resume: 3/3" in captured.err
        cached = json.loads(captured.out)
        for left, right in zip(fresh, cached):
            left.pop("wall_time_s"), right.pop("wall_time_s")
        assert cached == fresh

    def test_resume_without_store_fails_cleanly(self, capsys):
        assert main(self.SWEEP_ARGS + ["--resume"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_store_stats_command(self, capsys, tmp_path):
        db = str(tmp_path / "sweep.db")
        assert main(self.SWEEP_ARGS + ["--store", db]) == 0
        capsys.readouterr()
        assert main(["store", db]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["reports"] == 3
        assert stats["by_algorithm"] == {"decay": 3}

    def test_store_export_command(self, capsys, tmp_path):
        db = str(tmp_path / "sweep.db")
        assert main(self.SWEEP_ARGS + ["--store", db]) == 0
        out = str(tmp_path / "export.json")
        assert main(["store", db, "--export", out, "--algorithm", "decay"]) == 0
        with open(out, encoding="utf-8") as handle:
            assert len(json.load(handle)) == 3

    def test_store_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["store", str(tmp_path / "absent.db")]) == 2
        assert "no store" in capsys.readouterr().err

    def test_sweep_reports_carry_cache_keys(self, capsys):
        assert main(self.SWEEP_ARGS) == 0
        reports = json.loads(capsys.readouterr().out)
        assert all(len(r["cache_key"]) == 64 for r in reports)

    def test_store_invalid_file_fails_cleanly(self, capsys, tmp_path):
        garbage = tmp_path / "garbage.db"
        garbage.write_text("not a database")
        assert main(["store", str(garbage)]) == 2
        assert "cannot open store" in capsys.readouterr().err

    def test_sweep_invalid_store_file_fails_cleanly(self, capsys, tmp_path):
        garbage = tmp_path / "garbage.db"
        garbage.write_text("not a database")
        assert main(self.SWEEP_ARGS + ["--store", str(garbage)]) == 2
        assert "cannot open store" in capsys.readouterr().err
