"""Tests for the experiment registration framework itself."""

import pytest

from repro.experiments.common import Experiment, register
from repro.util.tables import Table


class TestRegistration:
    def test_duplicate_id_rejected(self):
        def driver(scale: str, seed: int) -> Table:
            t = Table(["x"])
            t.add_row(1)
            return t

        register("T-dup", "first", "claim")(driver)
        with pytest.raises(ValueError, match="already registered"):
            register("T-dup", "second", "claim")(driver)

    def test_decorator_returns_experiment(self):
        def driver(scale: str, seed: int) -> Table:
            t = Table(["scale"])
            t.add_row(scale)
            return t

        experiment = register("T-ret", "returns", "claim")(driver)
        assert isinstance(experiment, Experiment)
        table = experiment(scale="smoke", seed=0)
        assert table.column("scale") == ["smoke"]

    def test_experiment_is_frozen(self):
        def driver(scale: str, seed: int) -> Table:
            return Table(["x"])

        experiment = register("T-frozen", "frozen", "claim")(driver)
        with pytest.raises(AttributeError):
            experiment.title = "other"  # type: ignore[misc]
