"""Smoke tests: every experiment driver runs at reduced scale, produces a
well-formed table, and exhibits the claimed qualitative shape."""

import pytest

from repro.experiments import all_experiments, get_experiment
from repro.util.tables import Table

ALL_IDS = [e.id for e in all_experiments()]


class TestRegistry:
    def test_expected_experiments_registered(self):
        expected = {f"E{i}" for i in range(1, 24)} | {"A1", "A2", "A3", "X1"}
        assert set(ALL_IDS) == expected

    def test_get_experiment(self):
        e4 = get_experiment("E4")
        assert e4.id == "E4"
        assert "Lemma 10" in e4.claim

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            get_experiment("E1")(scale="galactic")


@pytest.mark.parametrize("experiment_id", ALL_IDS)
def test_smoke_run_produces_table(experiment_id):
    experiment = get_experiment(experiment_id)
    table = experiment(scale="smoke", seed=0)
    assert isinstance(table, Table)
    assert len(table) > 0
    assert table.title
    # renders without error
    assert table.to_text()
    assert table.to_csv()


class TestQualitativeShapes:
    """Spot checks that smoke-scale outputs already show the right shape."""

    def test_e2_noisy_slower_than_faultless(self):
        table = get_experiment("E2")(scale="smoke", seed=1)
        rows = list(table)
        quiet = [r for r in rows if r["p"] == 0.0]
        noisy = [r for r in rows if r["p"] == 0.5]
        assert noisy[0]["rounds"] > quiet[0]["rounds"]
        assert all(r["success_rate"] == 1.0 for r in rows)

    def test_e4_noisy_wave_slower(self):
        table = get_experiment("E4")(scale="smoke", seed=1)
        rows = list(table)
        by_p = {(r["n"], r["p"]): r["wave_rounds"] for r in rows}
        assert by_p[(64, 0.5)] > by_p[(64, 0.0)]

    def test_e10_gap_exceeds_one(self):
        table = get_experiment("E10")(scale="smoke", seed=1)
        for row in table:
            assert row["gap"] > 1.0

    def test_e16_receiver_gap_exceeds_sender_gap(self):
        table = get_experiment("E16")(scale="smoke", seed=1)
        rows = list(table)
        sender = next(r for r in rows if r["model"] == "sender")
        receiver = next(r for r in rows if r["model"] == "receiver")
        assert receiver["gap"] > 1.5 * sender["gap"]

    def test_e17_success_rate_high(self):
        table = get_experiment("E17")(scale="smoke", seed=1)
        for row in table:
            assert row["success_rate"] >= 0.8

    def test_e18_per_message_near_two(self):
        table = get_experiment("E18")(scale="smoke", seed=1)
        for row in table:
            assert 1.5 < row["adaptive_per_msg"] < 2.6
            assert 1.5 < row["coding_per_msg"] < 2.6

    def test_a3_zero_margin_worse(self):
        table = get_experiment("A3")(scale="smoke", seed=1)
        rows = list(table)
        zero = next(r for r in rows if r["margin_c"] == 0.0)
        big = next(r for r in rows if r["margin_c"] == 2.0)
        assert big["success_rate"] >= zero["success_rate"]
