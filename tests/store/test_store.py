"""Store semantics: round-trips, queries, batching, concurrent writers."""

import json
import multiprocessing
import sqlite3

import pytest

from repro.core.faults import AdversaryConfig, FaultConfig
from repro.runner import RunReport, Scenario, run
from repro.store import STORE_SCHEMA_VERSION, ResultStore

BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 16},
    faults=FaultConfig.receiver(0.3),
    seed=0,
)


def fabricate(scenario: Scenario, rounds: int = 7) -> RunReport:
    """A synthetic report under the scenario's real cache key (no run)."""
    return RunReport(
        scenario=scenario.describe(),
        algorithm=scenario.algorithm,
        success=True,
        rounds=rounds,
        informed=16,
        total=16,
        network_n=16,
        network_name="path-16",
        wall_time_s=0.001,
        cache_key=scenario.cache_key(),
    )


@pytest.fixture
def store(tmp_path):
    with ResultStore(str(tmp_path / "store.db")) as result_store:
        yield result_store


class TestRoundTrip:
    def test_put_get_byte_identical(self, store):
        report = run(BASE)
        assert store.put(report) == 1
        cached = store.get(BASE.cache_key())
        assert cached.to_json(canonical=True) == report.to_json(canonical=True)
        assert store.get_json(BASE.cache_key()) == report.to_json(canonical=True)

    def test_get_preserves_wall_time(self, store):
        report = run(BASE)
        store.put(report)
        assert store.get(BASE.cache_key()).wall_time_s == report.wall_time_s

    def test_adversary_round_trip(self, store):
        scenario = BASE.with_(
            faults=FaultConfig.faultless(),
            adversary=AdversaryConfig("gilbert_elliott", {"p_bad": 0.9}),
        )
        report = run(scenario)
        store.put(report)
        cached = store.get(scenario.cache_key())
        assert cached.to_json(canonical=True) == report.to_json(canonical=True)
        assert cached.scenario["adversary"]["kind"] == "gilbert_elliott"

    def test_get_missing_returns_none(self, store):
        assert store.get("0" * 64) is None
        assert store.get_json("0" * 64) is None

    def test_contains_and_len(self, store):
        assert BASE.cache_key() not in store
        store.put(fabricate(BASE))
        assert BASE.cache_key() in store
        assert len(store) == 1


class TestPutSemantics:
    def test_put_many_batch(self, store):
        reports = [fabricate(BASE.with_(seed=seed)) for seed in range(20)]
        assert store.put_many(reports) == 20
        assert len(store) == 20
        assert store.keys() == sorted(r.cache_key for r in reports)

    def test_put_ignores_existing_keys(self, store):
        store.put(fabricate(BASE, rounds=7))
        assert store.put(fabricate(BASE, rounds=99)) == 0
        assert store.get(BASE.cache_key()).rounds == 7

    def test_put_replace_overwrites(self, store):
        store.put(fabricate(BASE, rounds=7))
        assert store.put(fabricate(BASE, rounds=99), replace=True) == 1
        assert store.get(BASE.cache_key()).rounds == 99

    def test_put_rejects_missing_cache_key(self, store):
        report = RunReport(
            scenario={}, algorithm="decay", success=True,
            rounds=1, informed=1, total=1,
        )
        with pytest.raises(ValueError, match="cache_key"):
            store.put(report)

    def test_put_many_empty_is_noop(self, store):
        assert store.put_many([]) == 0


class TestQuery:
    @pytest.fixture
    def populated(self, store):
        scenarios = [
            BASE.with_(seed=seed, algorithm=algorithm)
            for algorithm in ("decay", "fastbc")
            for seed in range(5)
        ]
        scenarios.append(
            BASE.with_(
                seed=0,
                faults=FaultConfig.faultless(),
                adversary=AdversaryConfig("budgeted_jammer", {"per_round": 2}),
            )
        )
        store.put_many([fabricate(s) for s in scenarios])
        return store

    def test_filter_by_algorithm(self, populated):
        reports = populated.query(algorithm="fastbc")
        assert len(reports) == 5
        assert {r.algorithm for r in reports} == {"fastbc"}

    def test_filter_by_seed_range(self, populated):
        reports = populated.query(algorithm="decay", seed_min=1, seed_max=3)
        assert sorted(r.scenario["seed"] for r in reports) == [1, 2, 3]

    def test_filter_by_adversary(self, populated):
        jammed = populated.query(adversary="budgeted_jammer")
        assert len(jammed) == 1
        assert populated.count(adversary="none") == 10

    def test_filter_by_topology_and_limit(self, populated):
        assert populated.count(topology="path") == 11
        assert len(populated.query(topology="path", limit=3)) == 3

    def test_query_order_is_deterministic(self, populated):
        first = [r.cache_key for r in populated.query()]
        second = [r.cache_key for r in populated.query()]
        assert first == second

    def test_stats(self, populated):
        stats = populated.stats()
        assert stats["reports"] == 11
        assert stats["by_algorithm"] == {"decay": 6, "fastbc": 5}
        assert stats["by_adversary"] == {"none": 10, "budgeted_jammer": 1}
        assert stats["schema_version"] == STORE_SCHEMA_VERSION


class TestExport:
    def test_export_json(self, store, tmp_path):
        store.put_many([fabricate(BASE.with_(seed=s)) for s in range(3)])
        out = tmp_path / "export.json"
        assert store.export_json(str(out)) == 3
        data = json.loads(out.read_text())
        assert len(data) == 3
        assert all("cache_key" in row and "wall_time_s" in row for row in data)

    def test_export_with_filter(self, store, tmp_path):
        store.put_many(
            [fabricate(BASE.with_(seed=s, algorithm=a))
             for a in ("decay", "fastbc") for s in range(2)]
        )
        out = tmp_path / "decay.json"
        assert store.export_json(str(out), algorithm="decay") == 2


class TestSchemaVersion:
    def test_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "old.db")
        ResultStore(path).close()
        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE store_meta SET value = '999' "
                "WHERE key = 'schema_version'"
            )
        with pytest.raises(ValueError, match="schema version"):
            ResultStore(path)


def _writer(path: str, offset: int, count: int) -> int:
    with ResultStore(path) as store:
        reports = [
            fabricate(BASE.with_(seed=offset + index)) for index in range(count)
        ]
        return store.put_many(reports)


class TestConcurrentWriters:
    def test_two_processes_put_many_without_corruption(self, tmp_path):
        path = str(tmp_path / "shared.db")
        ResultStore(path).close()  # create before the writers race
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with context.Pool(2) as pool:
            written = pool.starmap(
                _writer, [(path, 0, 40), (path, 20, 40)]
            )
        # the 20 overlapping seeds are content-addressed: exactly one
        # writer wins each, and the union is intact
        assert sum(written) == 60
        with ResultStore(path) as store:
            assert len(store) == 60
            check = store.backend._connection.execute(
                "PRAGMA integrity_check"
            ).fetchone()[0]
            assert check == "ok"
            for key in store.keys():
                assert store.get(key) is not None
