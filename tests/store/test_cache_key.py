"""Scenario.cache_key(): stability, sensitivity, and report surfacing."""

import json

import pytest

from repro.core.faults import AdversaryConfig, FaultConfig
from repro.runner import RunReport, Scenario, run
from repro.topologies import path

BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 16},
    faults=FaultConfig.receiver(0.3),
    seed=4,
)


class TestCacheKey:
    def test_is_hex_sha256(self):
        key = BASE.cache_key()
        assert len(key) == 64
        int(key, 16)

    def test_equal_scenarios_share_a_key(self):
        clone = Scenario.from_dict(BASE.to_dict())
        assert clone.cache_key() == BASE.cache_key()

    @pytest.mark.parametrize(
        "changes",
        [
            {"seed": 5},
            {"algorithm": "fastbc"},
            {"topology_params": {"n": 17}},
            {"faults": FaultConfig.receiver(0.2)},
            {"max_rounds": 500},
        ],
    )
    def test_any_field_change_changes_the_key(self, changes):
        assert BASE.with_(**changes).cache_key() != BASE.cache_key()

    def test_iid_adversary_spelling_shares_the_faults_key(self):
        # construction canonicalizes iid back into faults, so both
        # spellings are one scenario and one content address
        spelled = Scenario(
            algorithm="decay",
            topology="path",
            topology_params={"n": 16},
            adversary=AdversaryConfig("iid", {"model": "receiver", "p": 0.3}),
            seed=4,
        )
        assert spelled.cache_key() == BASE.cache_key()

    def test_adversary_scenarios_get_distinct_keys(self):
        jammer = BASE.with_(
            faults=FaultConfig.faultless(),
            adversary=AdversaryConfig("budgeted_jammer", {"per_round": 2}),
        )
        churn = BASE.with_(
            faults=FaultConfig.faultless(),
            adversary=AdversaryConfig("edge_churn", {}),
        )
        assert jammer.cache_key() != churn.cache_key()

    def test_explicit_network_is_not_cacheable(self):
        scenario = Scenario(algorithm="decay", topology=path(8))
        assert not scenario.cacheable
        with pytest.raises(ValueError):
            scenario.cache_key()


class TestReportCacheKey:
    def test_run_surfaces_the_key(self):
        report = run(BASE)
        assert report.cache_key == BASE.cache_key()
        data = report.to_dict()
        assert data["cache_key"] == BASE.cache_key()
        assert json.loads(report.to_json(canonical=True))["cache_key"] == (
            BASE.cache_key()
        )

    def test_round_trips_through_dict(self):
        report = run(BASE)
        assert RunReport.from_dict(report.to_dict()).cache_key == report.cache_key

    def test_explicit_network_report_has_no_key(self):
        report = run(Scenario(algorithm="decay", topology=path(8)))
        assert report.cache_key == ""
        assert "cache_key" not in report.to_dict()

    def test_keyless_reports_keep_pre_store_canonical_bytes(self):
        # reports that don't opt in (hand-built, or loaded from old JSON)
        # must render exactly as they did before the store existed
        report = RunReport(
            scenario={"algorithm": "decay", "seed": 0},
            algorithm="decay",
            success=True,
            rounds=12,
            informed=8,
            total=8,
            network_n=8,
            network_name="path-8",
        )
        data = json.loads(report.to_json(canonical=True))
        assert set(data) == {
            "scenario", "algorithm", "success", "rounds", "informed",
            "total", "counters", "extras", "network_n", "network_name",
        }
