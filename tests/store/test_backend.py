"""The store backend split: sharded and single-file engines agree."""

import pytest

from repro.core.faults import FaultConfig
from repro.runner import Scenario, expand_grid, run_batch
from repro.store import (
    ResultStore,
    ShardedSQLiteBackend,
    SQLiteBackend,
    open_backend,
    shard_index,
)

BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 16},
    faults=FaultConfig.receiver(0.2),
)


@pytest.fixture(scope="module")
def reports():
    return run_batch(
        expand_grid(
            BASE, seeds=range(10), grid={"algorithm": ["decay", "fastbc"]}
        )
    )


def _strip_timing(rows):
    """Wall time is outside the canonical form, so equality ignores it."""
    return [row._replace(wall_time_s=0.0) for row in rows]


class TestOpenBackend:
    def test_file_path_opens_single_sqlite(self, tmp_path):
        backend = open_backend(str(tmp_path / "one.db"))
        assert isinstance(backend, SQLiteBackend)
        backend.close()

    def test_shards_parameter_creates_directory(self, tmp_path):
        path = tmp_path / "farm"
        backend = open_backend(str(path), shards=3)
        assert isinstance(backend, ShardedSQLiteBackend)
        backend.close()
        names = sorted(p.name for p in path.iterdir())
        assert names == ["shard-00.db", "shard-01.db", "shard-02.db"]

    def test_existing_directory_autodetects_shard_count(self, tmp_path):
        path = str(tmp_path / "farm")
        open_backend(path, shards=4).close()
        backend = open_backend(path)  # no shards= needed on reopen
        assert len(backend.shard_stats()) == 4
        backend.close()

    def test_shard_count_mismatch_is_a_hard_error(self, tmp_path):
        path = str(tmp_path / "farm")
        open_backend(path, shards=2).close()
        with pytest.raises(ValueError, match="2"):
            open_backend(path, shards=3)

    def test_shards_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            open_backend(str(tmp_path / "farm"), shards=0)


class TestShardRouting:
    def test_shard_index_is_stable_and_in_range(self):
        keys = [f"{i:064x}" for i in range(100)]
        for key in keys:
            index = shard_index(key, 4)
            assert 0 <= index < 4
            assert index == shard_index(key, 4)

    def test_rows_land_on_their_routed_shard(self, tmp_path, reports):
        store = ResultStore(str(tmp_path / "farm"), shards=3)
        store.put_many(reports)
        per_shard = {
            entry["shard"]: entry["reports"] for entry in store.shard_stats()
        }
        expected = {0: 0, 1: 0, 2: 0}
        for report in reports:
            expected[shard_index(report.cache_key, 3)] += 1
        assert per_shard == expected
        store.close()


class TestShardedEquivalence:
    """The sharded engine is indistinguishable from the single file."""

    @pytest.fixture()
    def pair(self, tmp_path, reports):
        single = ResultStore(str(tmp_path / "single.db"))
        sharded = ResultStore(str(tmp_path / "farm"), shards=3)
        single.put_many(reports)
        sharded.put_many(reports)
        yield single, sharded
        single.close()
        sharded.close()

    def test_keys_identical(self, pair):
        single, sharded = pair
        assert single.keys() == sharded.keys()

    def test_payload_bytes_identical(self, pair, reports):
        single, sharded = pair
        for report in reports:
            assert single.get_json(report.cache_key) == sharded.get_json(
                report.cache_key
            )

    def test_iter_rows_order_identical(self, pair):
        single, sharded = pair
        assert _strip_timing(single.iter_rows()) == _strip_timing(
            sharded.iter_rows()
        )

    def test_query_with_filters_identical(self, pair):
        single, sharded = pair
        for filters in (
            {"algorithm": "decay"},
            {"seed_min": 3, "seed_max": 7},
            {"order_by": "seed"},
        ):
            assert [r.cache_key for r in single.query(**filters)] == [
                r.cache_key for r in sharded.query(**filters)
            ]

    def test_pagination_walks_without_gaps_or_dupes(self, pair):
        single, sharded = pair
        full = [r.cache_key for r in single.query()]
        paged = []
        offset = 0
        while True:
            page = sharded.query(limit=7, offset=offset)
            if not page:
                break
            paged.extend(r.cache_key for r in page)
            offset += 7
        assert paged == full

    def test_stats_counts_agree(self, pair):
        single, sharded = pair
        lhs, rhs = single.stats(), sharded.stats()
        for key in ("reports", "by_algorithm", "by_topology", "by_adversary"):
            assert lhs[key] == rhs[key]
        assert lhs["backend"] == "sqlite"
        assert rhs["backend"] == "sharded-sqlite"
        assert rhs["shards"] == 3


class TestDedupAccounting:
    def test_duplicate_puts_raise_attempted_not_reports(self, tmp_path, reports):
        store = ResultStore(str(tmp_path / "farm"), shards=2)
        assert store.put_many(reports) == len(reports)
        assert store.put_many(reports) == 0  # every offer a duplicate
        stats = store.stats()
        assert stats["reports"] == len(reports)
        assert stats["puts_attempted"] == 2 * len(reports)
        assert stats["dedup_ratio"] == 0.5
        store.close()

    def test_attempted_survives_reopen(self, tmp_path, reports):
        path = str(tmp_path / "farm")
        store = ResultStore(path, shards=2)
        store.put_many(reports)
        store.put_many(reports[:5])
        store.close()
        reopened = ResultStore(path)
        assert reopened.stats()["puts_attempted"] == len(reports) + 5
        reopened.close()

    def test_shard_stats_partition_the_totals(self, tmp_path, reports):
        store = ResultStore(str(tmp_path / "farm"), shards=3)
        store.put_many(reports)
        store.put_many(reports)
        entries = store.shard_stats()
        assert sum(e["reports"] for e in entries) == len(reports)
        assert sum(e["attempted"] for e in entries) == 2 * len(reports)
        store.close()
