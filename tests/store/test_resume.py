"""run_batch/sweep with a store: resume determinism and the fast path."""

import pytest

import repro.runner.runner as runner_module
from repro.core.faults import AdversaryConfig, FaultConfig
from repro.runner import Scenario, expand_grid, run_batch, sweep
from repro.store import ResultStore
from repro.topologies import path

BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 16},
    faults=FaultConfig.receiver(0.3),
    seed=0,
)


@pytest.fixture
def store(tmp_path):
    with ResultStore(str(tmp_path / "resume.db")) as result_store:
        yield result_store


def canonical(reports):
    return [report.to_json(canonical=True) for report in reports]


class TestResumeDeterminism:
    def test_cached_batch_matches_fresh_batch_byte_for_byte(self, store):
        scenarios = expand_grid(
            BASE, seeds=range(4), grid={"algorithm": ["decay", "fastbc"]}
        )
        fresh = run_batch(scenarios, store=store)
        cached = run_batch(scenarios, store=store)
        assert canonical(cached) == canonical(fresh)

    def test_adversary_scenarios_resume_byte_identical(self, store):
        base = BASE.with_(faults=FaultConfig.faultless())
        scenarios = expand_grid(
            base,
            seeds=range(3),
            grid={
                "adversary": [
                    AdversaryConfig("gilbert_elliott", {"p_bad": 0.9}),
                    AdversaryConfig("budgeted_jammer", {"per_round": 2}),
                ]
            },
        )
        fresh = run_batch(scenarios, store=store)
        cached = run_batch(scenarios, store=store)
        assert canonical(cached) == canonical(fresh)

    def test_interrupted_sweep_resumes_to_identical_bytes(self, store):
        scenarios = expand_grid(BASE, seeds=range(6))
        # the "interrupted" first attempt computed only half the sweep
        run_batch(scenarios[:3], store=store)
        resumed = run_batch(scenarios, store=store)
        uninterrupted = run_batch(scenarios)
        assert canonical(resumed) == canonical(uninterrupted)

    def test_cache_hits_skip_execution(self, store, monkeypatch):
        scenarios = expand_grid(BASE, seeds=range(3))
        run_batch(scenarios, store=store)

        def explode(scenario):
            raise AssertionError("cache hit should not execute")

        monkeypatch.setattr(runner_module, "run", explode)
        cached = run_batch(scenarios, store=store)
        assert len(cached) == 3

    def test_reuse_false_recomputes(self, store, monkeypatch):
        scenarios = expand_grid(BASE, seeds=range(2))
        run_batch(scenarios, store=store)
        calls = []
        real_run = runner_module.run

        def counting(scenario):
            calls.append(scenario)
            return real_run(scenario)

        monkeypatch.setattr(runner_module, "run", counting)
        run_batch(scenarios, store=store, reuse=False)
        assert len(calls) == 2

    def test_sweep_accepts_store(self, store):
        first = sweep(BASE, seeds=range(3), store=store)
        second = sweep(BASE, seeds=range(3), store=store)
        assert canonical(first) == canonical(second)
        assert len(store) == 3

    def test_mixed_hits_and_misses_preserve_input_order(self, store):
        scenarios = expand_grid(BASE, seeds=range(5))
        run_batch([scenarios[1], scenarios[3]], store=store)
        reports = run_batch(scenarios, store=store)
        assert [r.scenario["seed"] for r in reports] == [0, 1, 2, 3, 4]
        assert canonical(reports) == canonical(run_batch(scenarios))

    def test_parallel_batch_with_store_matches_serial(self, store):
        scenarios = expand_grid(BASE, seeds=range(4))
        parallel = run_batch(scenarios, processes=2, store=store)
        serial = run_batch(scenarios)
        assert canonical(parallel) == canonical(serial)

    def test_explicit_network_scenarios_run_but_are_not_stored(self, store):
        explicit = Scenario(algorithm="decay", topology=path(8))
        reports = run_batch([explicit], store=store)
        assert reports[0].success is not None
        assert len(store) == 0


class TestFastPath:
    def test_single_survivor_skips_pool_creation(self, store, monkeypatch):
        scenarios = expand_grid(BASE, seeds=range(4))
        run_batch(scenarios[:3], store=store)

        def no_pool(*args, **kwargs):
            raise AssertionError("pool must not be created for one survivor")

        monkeypatch.setattr(
            runner_module.multiprocessing, "get_context", no_pool
        )
        # 4 scenarios requested in parallel, but only one cache miss left
        reports = run_batch(scenarios, processes=4, store=store)
        assert len(reports) == 4

    def test_single_worker_skips_pool_creation(self, monkeypatch):
        def no_pool(*args, **kwargs):
            raise AssertionError("pool must not be created for one worker")

        monkeypatch.setattr(
            runner_module.multiprocessing, "get_context", no_pool
        )
        reports = run_batch(expand_grid(BASE, seeds=range(3)), processes=1)
        assert len(reports) == 3
