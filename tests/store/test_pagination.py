"""Deterministic ordering, pagination, and streaming on the store.

The pagination contract: every ordering is total (cache_key tiebreak),
so walking ``limit``/``offset`` pages reassembles exactly the unpaged
result — no duplicates, no drops — even for columns with heavy ties.
The streaming contract: ``iter_rows``/``iter_reports`` yield the same
rows as ``query`` in the same order, a batch at a time, and
``export_json`` writes byte-identical output to a one-shot dump while
holding only one batch in memory.
"""

import json

import pytest

from repro.core.faults import FaultConfig
from repro.runner import RunReport, Scenario
from repro.store import ORDERABLE_COLUMNS, ResultStore


def _fabricated(count, algorithms=("decay", "fastbc")):
    reports = []
    for index in range(count):
        algorithm = algorithms[index % len(algorithms)]
        scenario = Scenario(
            algorithm=algorithm,
            topology="path",
            topology_params={"n": 16},
            faults=FaultConfig.receiver(0.3),
            seed=index,
        )
        reports.append(
            RunReport(
                scenario=scenario.describe(),
                algorithm=algorithm,
                success=index % 7 != 0,
                rounds=100 + (index * 37) % 50,  # heavy ties on purpose
                informed=16,
                total=16,
                network_n=16,
                network_name="path-16",
                wall_time_s=0.001,
                cache_key=scenario.cache_key(),
            )
        )
    return reports


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    store = ResultStore(str(tmp_path_factory.mktemp("paging") / "p.db"))
    store.put_many(_fabricated(120))
    yield store
    store.close()


class TestPagination:
    def test_pages_reassemble_exactly(self, store):
        full = [r.cache_key for r in store.query()]
        paged = []
        offset = 0
        while True:
            page = store.query(limit=17, offset=offset)
            if not page:
                break
            paged.extend(r.cache_key for r in page)
            offset += 17
        assert paged == full

    @pytest.mark.parametrize("column", ORDERABLE_COLUMNS)
    def test_every_ordering_is_total(self, store, column):
        """Tied columns must still paginate without dups or drops."""
        full = [r.cache_key for r in store.query(order_by=column)]
        paged = []
        for offset in range(0, 120, 13):
            paged.extend(
                r.cache_key
                for r in store.query(order_by=column, limit=13, offset=offset)
            )
        assert paged == full
        assert len(set(full)) == len(full) == 120

    def test_order_by_actually_orders(self, store):
        rounds = [r.rounds for r in store.query(order_by="rounds")]
        assert rounds == sorted(rounds)

    def test_offset_without_limit(self, store):
        assert len(store.query(offset=100)) == 20

    def test_bad_order_by_and_offset_rejected(self, store):
        with pytest.raises(ValueError):
            store.query(order_by="canonical_json")  # not queryable
        with pytest.raises(ValueError):
            store.query(offset=-1)


class TestStreaming:
    def test_iter_rows_matches_query(self, store):
        rows = list(store.iter_rows(batch_size=11))
        reports = store.query()
        assert [row.cache_key for row in rows] == [r.cache_key for r in reports]
        for row, report in zip(rows, reports):
            assert row.rounds == report.rounds
            assert row.success == report.success
            assert row.seed == report.scenario["seed"]
            assert row.network_n == report.network_n

    def test_iter_reports_matches_query(self, store):
        streamed = list(store.iter_reports(batch_size=7, algorithm="decay"))
        assert [r.to_json(canonical=True) for r in streamed] == [
            r.to_json(canonical=True) for r in store.query(algorithm="decay")
        ]

    def test_iter_rows_honors_filters_and_order(self, store):
        rows = list(
            store.iter_rows(batch_size=9, algorithm="fastbc", order_by="seed")
        )
        assert all(row.algorithm == "fastbc" for row in rows)
        assert [row.seed for row in rows] == sorted(row.seed for row in rows)

    def test_unknown_filter_rejected(self, store):
        with pytest.raises(TypeError):
            list(store.iter_rows(flavor="spicy"))


class TestStreamingExport:
    def test_export_matches_one_shot_dump_on_thousands_of_rows(self, tmp_path):
        """ISSUE-5 satellite: chunked export, identical bytes, flat memory."""
        with ResultStore(str(tmp_path / "big.db")) as store:
            store.put_many(_fabricated(3000))
            out = tmp_path / "export.json"
            written = store.export_json(str(out), batch_size=256)
            assert written == 3000
            expected = (
                json.dumps(
                    [r.to_dict() for r in store.query()],
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
        assert out.read_text() == expected
        # and the export parses back to every report
        assert len(json.loads(out.read_text())) == 3000

    def test_export_with_filters(self, store, tmp_path):
        out = tmp_path / "decay.json"
        written = store.export_json(str(out), algorithm="decay")
        data = json.loads(out.read_text())
        assert written == len(data) == 60
        assert {entry["algorithm"] for entry in data} == {"decay"}

    def test_empty_export_is_valid_json(self, store, tmp_path):
        out = tmp_path / "none.json"
        assert store.export_json(str(out), algorithm="nope") == 0
        assert json.loads(out.read_text()) == []
