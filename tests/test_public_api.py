"""The public API surface: everything advertised resolves and works."""

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_snippet(self):
        """The README / docstring quickstart must keep working verbatim."""
        from repro import FaultConfig, decay_broadcast, path

        outcome = decay_broadcast(
            path(64), faults=FaultConfig.receiver(0.3), rng=1
        )
        assert outcome.success
        assert outcome.rounds > 0


class TestChannelValidation:
    def test_invalid_broadcaster_rejected(self):
        from repro import Channel, FaultConfig, path
        from repro.core.errors import SimulationError
        from repro.core.packets import MessagePacket

        channel = Channel(path(3), FaultConfig.faultless(), rng=0)
        with pytest.raises(SimulationError):
            channel.transmit({99: MessagePacket(0)})
        with pytest.raises(SimulationError):
            channel.transmit({"a": MessagePacket(0)})  # type: ignore[dict-item]


class TestProtocolContract:
    def test_single_message_protocols_reject_foreign_packets(self):
        from repro.algorithms.decay import DecayProtocol
        from repro.core.errors import ProtocolError
        from repro.core.packets import RSPacket
        from repro.util.rng import RandomSource

        protocol = DecayProtocol(8, RandomSource(0))
        with pytest.raises(ProtocolError):
            protocol.on_receive(0, RSPacket(0), sender=1)


class TestErrorHierarchy:
    def test_all_domain_errors_derive_from_repro_error(self):
        from repro.core.errors import (
            BroadcastTimeout,
            ProtocolError,
            ReproError,
            SimulationError,
            TopologyError,
        )

        for error_type in (
            TopologyError,
            SimulationError,
            ProtocolError,
            BroadcastTimeout,
        ):
            assert issubclass(error_type, ReproError)

    def test_broadcast_timeout_carries_progress(self):
        from repro.core.errors import BroadcastTimeout

        error = BroadcastTimeout(rounds=100, informed=5, total=10)
        assert error.rounds == 100
        assert "5/10" in str(error)
