"""Tests for the dense-wave RLNC candidate (the open-problem exploration)."""

import pytest

from repro.algorithms.multi.rlnc_broadcast import (
    rlnc_dense_wave_broadcast,
    rlnc_robust_fastbc_broadcast,
)
from repro.core.faults import FaultConfig
from repro.topologies.basic import balanced_tree, grid, path, star


class TestCompletion:
    @pytest.mark.parametrize(
        "topo",
        [path(24), star(12), grid(5, 5), balanced_tree(2, 4)],
        ids=lambda t: t.name,
    )
    def test_faultless_completes(self, topo):
        outcome = rlnc_dense_wave_broadcast(topo, k=4, rng=1)
        assert outcome.success

    @pytest.mark.parametrize("faults", [
        FaultConfig.sender(0.3), FaultConfig.receiver(0.3),
    ], ids=str)
    def test_noisy_completes(self, faults):
        outcome = rlnc_dense_wave_broadcast(path(20), k=4, faults=faults, rng=2)
        assert outcome.success

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            rlnc_dense_wave_broadcast(path(4), k=0)

    def test_payload_integrity(self):
        from repro.util.rng import RandomSource

        rng = RandomSource(5)
        messages = [bytes(rng.bytes_array(8).tobytes()) for _ in range(3)]
        outcome = rlnc_dense_wave_broadcast(
            path(10),
            k=3,
            faults=FaultConfig.receiver(0.2),
            rng=6,
            payload_length=8,
            messages=messages,
        )
        assert outcome.success


class TestOpenProblemShape:
    def test_beats_lemma13_on_deep_path(self):
        """The whole point of the candidate: full-rate pipelining removes
        the superround factor from the k-term."""
        n, k = 64, 8
        faults = FaultConfig.receiver(0.3)
        dense = rlnc_dense_wave_broadcast(path(n), k=k, faults=faults, rng=3)
        robust = rlnc_robust_fastbc_broadcast(
            path(n), k=k, faults=faults, rng=3
        )
        assert dense.success and robust.success
        assert dense.rounds * 2 < robust.rounds

    def test_per_message_cost_small_on_path(self):
        """On a path the candidate's rounds/message approaches a small
        constant over 1-p — consistent with the open problem's target
        k log n term (log n here being the Decay slow-edge cost it never
        pays on a pure stretch)."""
        n, k = 64, 32
        faults = FaultConfig.receiver(0.3)
        outcome = rlnc_dense_wave_broadcast(path(n), k=k, faults=faults, rng=4)
        assert outcome.success
        assert outcome.rounds_per_message < 30
