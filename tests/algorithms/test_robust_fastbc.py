"""Tests for Robust FASTBC (Theorem 11)."""

import pytest

from repro.algorithms.fastbc import fastbc_broadcast
from repro.algorithms.robust_fastbc import (
    RobustFastBCProtocol,
    block_size,
    make_robust_fastbc_protocols,
    robust_fastbc_broadcast,
)
from repro.core.faults import FaultConfig
from repro.gbst.gbst import build_gbst
from repro.topologies.basic import caterpillar, grid, path, star
from repro.util.rng import RandomSource


class TestBlockSize:
    def test_small_n(self):
        assert block_size(2) >= 1
        assert block_size(16) >= 1

    def test_grows_doubly_logarithmically(self):
        assert block_size(2**16) <= 2 * block_size(16) + 2
        assert block_size(2**32) > block_size(4)


class TestProtocolMechanics:
    def test_rejects_bad_multiplier(self):
        net = path(4)
        tree = build_gbst(net).tree
        with pytest.raises(ValueError):
            RobustFastBCProtocol(0, tree, RandomSource(1), round_multiplier=0)

    def test_rejects_bad_block(self):
        net = path(4)
        tree = build_gbst(net).tree
        with pytest.raises(ValueError):
            RobustFastBCProtocol(0, tree, RandomSource(1), block=0)

    def test_uninformed_is_silent(self):
        net = path(6)
        tree = build_gbst(net).tree
        p = RobustFastBCProtocol(3, tree, RandomSource(1))
        assert all(p.act(t) is None for t in range(60))

    def test_mod3_gating_on_even_rounds(self):
        """An active fast node only broadcasts when l ≡ t (mod 3), t the
        even-round index."""
        net = path(12)
        tree = build_gbst(net).tree
        p = RobustFastBCProtocol(
            0, tree, RandomSource(1), informed=True, block=2, round_multiplier=3
        )
        fired = []
        # scan past a full schedule period: 6*max_rank superrounds of
        # c*S even rounds each
        horizon = 4 * (6 * p.max_rank) * (3 * 2) * 2
        for r in range(0, horizon, 2):
            if p.act(r) is not None:
                fired.append(r // 2)
        assert fired, "the source's block must fire during its superround"
        assert all(t % 3 == p.level % 3 for t in fired)

    def test_factory(self):
        protocols = make_robust_fastbc_protocols(path(8), RandomSource(2))
        assert len(protocols) == 8
        assert sum(pr.informed for pr in protocols) == 1


class TestBroadcastCompletion:
    @pytest.mark.parametrize("topo", [path(24), star(12), grid(5, 5),
                                      caterpillar(12, 1)],
                             ids=lambda t: t.name)
    def test_faultless_completes(self, topo):
        outcome = robust_fastbc_broadcast(topo, rng=1)
        assert outcome.success

    @pytest.mark.parametrize("faults", [
        FaultConfig.sender(0.3),
        FaultConfig.receiver(0.3),
        FaultConfig.sender(0.6),
        FaultConfig.receiver(0.6),
    ], ids=str)
    def test_noisy_completes(self, faults):
        outcome = robust_fastbc_broadcast(path(24), faults=faults, rng=2)
        assert outcome.success

    def test_determinism(self):
        a = robust_fastbc_broadcast(path(16), FaultConfig.receiver(0.4), rng=5)
        b = robust_fastbc_broadcast(path(16), FaultConfig.receiver(0.4), rng=5)
        assert a.rounds == b.rounds


class TestTheorem11Shape:
    """The headline claim, measured as growth rates: under faults the
    per-hop cost of Robust FASTBC is (near-)constant in n, while plain
    FASTBC pays Θ(log n) per hop (Lemma 10). At laptop scales the
    asymptotic regime shows up as a slope difference in n, not as an
    absolute winner — see EXPERIMENTS.md (E5)."""

    @staticmethod
    def _per_hop(broadcast, n, p, seeds=range(2)):
        total = 0
        for seed in seeds:
            outcome = broadcast(
                path(n),
                faults=FaultConfig.receiver(p),
                rng=seed,
                decay_interleave=False,  # isolate the wave mechanism
            )
            assert outcome.success
            total += outcome.rounds
        return total / len(list(seeds)) / (n - 1)

    def test_robust_wave_beats_plain_wave_under_faults(self):
        """The isolated wave comparison at n=384, p=0.5: plain pays a full
        Θ(log n) period per dropped hop; robust absorbs drops in-block."""
        p = 0.5
        n = 384
        plain = self._per_hop(fastbc_broadcast, n, p)
        robust = self._per_hop(robust_fastbc_broadcast, n, p)
        assert robust < plain

    def test_plain_wave_per_hop_grows_with_n_but_robust_does_not(self):
        p = 0.5
        small, large = 96, 384  # 2 doublings apart
        plain_growth = self._per_hop(fastbc_broadcast, large, p) - self._per_hop(
            fastbc_broadcast, small, p
        )
        robust_growth = self._per_hop(
            robust_fastbc_broadcast, large, p
        ) - self._per_hop(robust_fastbc_broadcast, small, p)
        # plain degrades measurably with log n; robust stays flat (its
        # fixed polylog startup only amortizes away as n grows)
        assert plain_growth > 2.0
        assert robust_growth < plain_growth

    def test_faulty_robust_close_to_faultless_robust(self):
        """Faults should cost Robust FASTBC only a constant factor."""
        n = 160
        quiet = robust_fastbc_broadcast(path(n), rng=7)
        noisy = robust_fastbc_broadcast(
            path(n), faults=FaultConfig.receiver(0.3), rng=7
        )
        assert noisy.success
        assert noisy.rounds < 6 * quiet.rounds + 500
