"""Tests for FASTBC (Lemmas 8 and 10) and the repetition baselines."""

import pytest

from repro.algorithms.base import ilog2
from repro.algorithms.decay import decay_broadcast
from repro.algorithms.fastbc import fastbc_broadcast, make_fastbc_protocols
from repro.algorithms.repetition import (
    RepeatedFastBCProtocol,
    repeat_factor_log,
    repeat_factor_loglog,
    repeated_fastbc_broadcast,
)
from repro.core.faults import FaultConfig
from repro.gbst.gbst import build_gbst
from repro.topologies.basic import caterpillar, grid, path, star
from repro.util.rng import RandomSource


class TestFaultlessFastBC:
    def test_path_completes(self):
        outcome = fastbc_broadcast(path(32), rng=1)
        assert outcome.success

    def test_star_completes(self):
        outcome = fastbc_broadcast(star(16), rng=2)
        assert outcome.success

    def test_grid_completes(self):
        outcome = fastbc_broadcast(grid(5, 5), rng=3)
        assert outcome.success

    def test_caterpillar_completes(self):
        outcome = fastbc_broadcast(caterpillar(20, 1), rng=4)
        assert outcome.success

    def test_lemma8_diameter_linear_on_deep_path(self):
        """Faultless FASTBC on a path: D + O(log^2 n) — close to D."""
        n = 128
        outcome = fastbc_broadcast(path(n), rng=5)
        assert outcome.success
        # wave crosses one hop per 2 rounds once started; allow the
        # log^2 n additive start-up plus slack
        additive = 40 * (ilog2(n) + 1) ** 2
        assert outcome.rounds <= 2 * (n - 1) + additive

    def test_faultless_fastbc_beats_decay_on_deep_path(self):
        """The whole point of FASTBC: linear in D vs Decay's D log n."""
        n = 192
        fastbc_rounds = fastbc_broadcast(path(n), rng=6).rounds
        decay_rounds = decay_broadcast(path(n), rng=6).rounds
        assert fastbc_rounds < decay_rounds


class TestNoisyFastBC:
    """Lemma 10: FASTBC still completes but degrades to ~D log n."""

    @pytest.mark.parametrize(
        "faults",
        [FaultConfig.sender(0.4), FaultConfig.receiver(0.4)],
        ids=str,
    )
    def test_completes_under_faults(self, faults):
        outcome = fastbc_broadcast(path(24), faults=faults, rng=7)
        assert outcome.success

    def test_lemma10_degradation_on_path(self):
        """With faults the wave restarts cost Θ(log n) each: noisy FASTBC
        should lose its advantage over Decay on a deep path."""
        n = 128
        p = 0.5
        noisy_fast = fastbc_broadcast(
            path(n), faults=FaultConfig.receiver(p), rng=8
        )
        quiet_fast = fastbc_broadcast(path(n), rng=8)
        assert noisy_fast.success
        # Lemma 10: expected rounds ~ p/(1-p) D log n vs faultless ~ D:
        # demand at least a 2x degradation at this scale
        assert noisy_fast.rounds > 2 * quiet_fast.rounds


class TestProtocolFactory:
    def test_shared_tree_accepted(self):
        net = path(10)
        tree = build_gbst(net).tree
        protocols = make_fastbc_protocols(net, RandomSource(1), tree=tree)
        assert len(protocols) == 10
        assert protocols[net.source].informed

    def test_only_source_informed(self):
        protocols = make_fastbc_protocols(path(6), RandomSource(1))
        informed = [p.informed for p in protocols]
        assert sum(informed) == 1


class TestRepetitionBaselines:
    def test_factors(self):
        assert repeat_factor_log(1024) == 11
        assert repeat_factor_loglog(1024) >= 2
        assert repeat_factor_log(1024) > repeat_factor_loglog(1024)

    def test_rejects_bad_repeat(self):
        net = path(4)
        tree = build_gbst(net).tree
        with pytest.raises(ValueError):
            RepeatedFastBCProtocol(0, tree, RandomSource(1), repeat=0)

    def test_repeated_broadcast_completes_under_faults(self):
        outcome = repeated_fastbc_broadcast(
            path(16),
            repeat=repeat_factor_loglog(16),
            faults=FaultConfig.receiver(0.4),
            rng=9,
        )
        assert outcome.success

    def test_repeat_one_is_plain_fastbc_schedule(self):
        net = path(8)
        tree = build_gbst(net).tree
        plain = make_fastbc_protocols(net, RandomSource(3), tree=tree)
        repeated = [
            RepeatedFastBCProtocol(
                v, tree, RandomSource(3).spawn(), repeat=1,
                informed=(v == net.source),
            )
            for v in net.nodes()
        ]
        # same wave schedule: fast-round actions agree for the source
        for t in range(0, 40, 2):
            assert (plain[0].act(t) is None) == (repeated[0].act(t) is None)

    def test_repetition_slows_faultless_run(self):
        plain = fastbc_broadcast(path(48), rng=10)
        slow = repeated_fastbc_broadcast(path(48), repeat=4, rng=10)
        assert slow.success
        assert slow.rounds > plain.rounds
