"""Tests for star schedules: the Lemma 15/16 Θ(log n) receiver-fault gap."""

import math

import pytest

from repro.algorithms.multi.star import star_adaptive_routing, star_rs_coding
from repro.core.faults import FaultModel


class TestAdaptiveRouting:
    def test_faultless_takes_one_round_per_message(self):
        outcome = star_adaptive_routing(n_leaves=16, k=8, p=0.0, rng=1)
        assert outcome.success
        assert outcome.rounds == 8

    def test_receiver_faults_slow_it_down(self):
        outcome = star_adaptive_routing(n_leaves=64, k=16, p=0.5, rng=2)
        assert outcome.success
        # Lemma 15: ~log2(64) = 6 rounds per message at p = 1/2
        assert outcome.rounds >= 3 * 16

    def test_rounds_scale_with_log_n(self):
        """The per-message cost grows with log n (last-straggler effect)."""
        small = star_adaptive_routing(n_leaves=8, k=32, p=0.5, rng=3)
        large = star_adaptive_routing(n_leaves=512, k=32, p=0.5, rng=3)
        assert small.success and large.success
        # log2(512)/log2(8) = 3: expect roughly tripled per-message cost
        assert large.rounds > 1.8 * small.rounds

    def test_validation(self):
        with pytest.raises(ValueError):
            star_adaptive_routing(n_leaves=0, k=1, p=0.1)
        with pytest.raises(ValueError):
            star_adaptive_routing(n_leaves=4, k=0, p=0.1)
        with pytest.raises(ValueError):
            star_adaptive_routing(n_leaves=4, k=1, p=1.0)

    def test_budget_exhaustion_reports_failure(self):
        outcome = star_adaptive_routing(
            n_leaves=32, k=16, p=0.5, rng=4, max_rounds=5
        )
        assert not outcome.success
        assert outcome.rounds == 5

    def test_reception_counts_tracked(self):
        outcome = star_adaptive_routing(n_leaves=16, k=4, p=0.3, rng=5)
        assert outcome.min_receptions >= 4  # every leaf got all messages
        assert outcome.max_receptions >= outcome.min_receptions

    def test_sender_fault_model(self):
        outcome = star_adaptive_routing(
            n_leaves=16, k=4, p=0.3, rng=6, fault_model=FaultModel.SENDER
        )
        assert outcome.success


class TestRSCoding:
    def test_faultless_close_to_k_rounds(self):
        outcome = star_rs_coding(n_leaves=16, k=8, p=0.0, rng=1)
        assert outcome.success
        assert outcome.rounds == 8

    def test_receiver_faults_constant_overhead(self):
        """Lemma 16: Θ(k) rounds — about k/(1-p) plus a log n tail."""
        k = 32
        outcome = star_rs_coding(n_leaves=64, k=k, p=0.5, rng=2)
        assert outcome.success
        assert outcome.rounds < 4 * k + 60

    def test_per_message_cost_flat_in_n(self):
        small = star_rs_coding(n_leaves=8, k=64, p=0.5, rng=3)
        large = star_rs_coding(n_leaves=512, k=64, p=0.5, rng=3)
        assert small.success and large.success
        assert large.rounds < 1.6 * small.rounds

    def test_validated_decode_roundtrip(self):
        """End-to-end: leaves actually decode the k original messages."""
        outcome = star_rs_coding(
            n_leaves=8, k=8, p=0.3, rng=4, max_rounds=100, validate_decode=True
        )
        assert outcome.success

    def test_validate_decode_guard(self):
        with pytest.raises(ValueError):
            star_rs_coding(
                n_leaves=4, k=300, p=0.1, validate_decode=True
            )


class TestTheorem17Gap:
    """Routing/coding round ratio on the star grows like log n."""

    def test_gap_grows_with_n(self):
        k, p = 24, 0.5
        gaps = {}
        for n_leaves in (8, 128):
            routing = star_adaptive_routing(n_leaves, k, p, rng=7)
            coding = star_rs_coding(n_leaves, k, p, rng=7)
            assert routing.success and coding.success
            gaps[n_leaves] = routing.rounds / coding.rounds
        assert gaps[128] > gaps[8]

    def test_gap_magnitude_tracks_log_n(self):
        k, p = 32, 0.5
        n_leaves = 256
        routing = star_adaptive_routing(n_leaves, k, p, rng=8)
        coding = star_rs_coding(n_leaves, k, p, rng=8)
        gap = routing.rounds / coding.rounds
        # at p = 1/2 routing needs ~log2(n) rounds/message, coding ~2:
        # the gap should be within a small factor of log2(n)/2
        predicted = math.log2(n_leaves) / 2
        assert predicted / 3 < gap < predicted * 3
