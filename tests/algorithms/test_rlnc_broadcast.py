"""Tests for RLNC multi-message broadcast (Lemmas 12-13)."""

import pytest

from repro.algorithms.multi.rlnc_broadcast import (
    rlnc_decay_broadcast,
    rlnc_robust_fastbc_broadcast,
)
from repro.core.faults import FaultConfig
from repro.topologies.basic import grid, path, star
from repro.topologies.random_graphs import gnp


class TestRLNCDecay:
    def test_faultless_star(self):
        outcome = rlnc_decay_broadcast(star(8), k=4, rng=1)
        assert outcome.success
        assert outcome.k == 4

    def test_faultless_path(self):
        outcome = rlnc_decay_broadcast(path(12), k=4, rng=2)
        assert outcome.success

    def test_faultless_grid(self):
        outcome = rlnc_decay_broadcast(grid(4, 4), k=3, rng=3)
        assert outcome.success

    @pytest.mark.parametrize("faults", [
        FaultConfig.sender(0.3), FaultConfig.receiver(0.3),
    ], ids=str)
    def test_noisy_completes(self, faults):
        outcome = rlnc_decay_broadcast(path(10), k=4, faults=faults, rng=4)
        assert outcome.success

    def test_end_to_end_payload_integrity(self):
        """With payloads on, every node must decode the exact messages."""
        from repro.algorithms.multi.rlnc_broadcast import RLNCGossipProtocol
        from repro.coding.rlnc import RLNCEncoder
        from repro.core.engine import Simulator
        from repro.util.rng import RandomSource

        net = star(5)
        k, length = 3, 8
        rng = RandomSource(7)
        messages = [bytes(rng.bytes_array(length).tobytes()) for _ in range(k)]
        outcome = rlnc_decay_broadcast(
            net, k=k, rng=8, payload_length=length, messages=messages
        )
        assert outcome.success

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            rlnc_decay_broadcast(path(4), k=0)

    def test_rounds_grow_linearly_in_k(self):
        """Lemma 12 shape: the k-dependence is ~k log n."""
        small = rlnc_decay_broadcast(star(16), k=4, rng=9)
        large = rlnc_decay_broadcast(star(16), k=16, rng=9)
        assert small.success and large.success
        # 4x the messages should cost >= 2x the rounds (additive terms
        # shrink the ratio below 4 at this scale)
        assert large.rounds >= 2 * small.rounds

    def test_determinism(self):
        a = rlnc_decay_broadcast(path(8), k=3, rng=11)
        b = rlnc_decay_broadcast(path(8), k=3, rng=11)
        assert a.rounds == b.rounds

    def test_outcome_metrics(self):
        outcome = rlnc_decay_broadcast(path(6), k=2, rng=12)
        assert outcome.rounds_per_message == outcome.rounds / 2
        assert outcome.completed_nodes == outcome.total_nodes == 6


class TestRLNCRobustFastBC:
    def test_faultless_path(self):
        outcome = rlnc_robust_fastbc_broadcast(path(12), k=3, rng=1)
        assert outcome.success

    def test_noisy_path(self):
        outcome = rlnc_robust_fastbc_broadcast(
            path(12), k=3, faults=FaultConfig.receiver(0.3), rng=2
        )
        assert outcome.success

    def test_noisy_sender_faults(self):
        outcome = rlnc_robust_fastbc_broadcast(
            path(12), k=3, faults=FaultConfig.sender(0.3), rng=3
        )
        assert outcome.success

    def test_gnp(self):
        outcome = rlnc_robust_fastbc_broadcast(
            gnp(24, 0.2, rng=4), k=3, faults=FaultConfig.receiver(0.2), rng=5
        )
        assert outcome.success

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            rlnc_robust_fastbc_broadcast(path(4), k=-1)
