"""Tests for single-link schedules (Appendix A)."""

import math

import pytest

from repro.algorithms.multi.single_link import (
    minimal_nonadaptive_repetitions,
    single_link_adaptive_routing,
    single_link_coding,
    single_link_nonadaptive_routing,
)


class TestMinimalRepetitions:
    def test_grows_logarithmically(self):
        r64 = minimal_nonadaptive_repetitions(64, 0.5)
        r4096 = minimal_nonadaptive_repetitions(4096, 0.5)
        assert r4096 > r64
        assert r4096 == pytest.approx(2 * math.log2(4096), abs=2)

    def test_faultless_needs_one(self):
        assert minimal_nonadaptive_repetitions(100, 0.0) == 1

    def test_k_one(self):
        assert minimal_nonadaptive_repetitions(1, 0.5) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            minimal_nonadaptive_repetitions(0, 0.5)
        with pytest.raises(ValueError):
            minimal_nonadaptive_repetitions(4, 1.0)


class TestNonAdaptiveRouting:
    def test_rounds_are_k_times_repetitions(self):
        outcome = single_link_nonadaptive_routing(16, 0.5, rng=1)
        r = minimal_nonadaptive_repetitions(16, 0.5)
        assert outcome.rounds == 16 * r

    def test_default_budget_succeeds_usually(self):
        successes = sum(
            single_link_nonadaptive_routing(32, 0.5, rng=seed).success
            for seed in range(20)
        )
        assert successes >= 18  # failure probability is ~1/k

    def test_underprovisioned_repetitions_fail_often(self):
        """Lemma 29's lower-bound mechanism: with ~log(k)/2 repetitions a
        constant fraction of messages is lost."""
        failures = sum(
            not single_link_nonadaptive_routing(
                64, 0.5, rng=seed, repetitions=3
            ).success
            for seed in range(20)
        )
        assert failures >= 15

    def test_faultless(self):
        outcome = single_link_nonadaptive_routing(8, 0.0, rng=2)
        assert outcome.success and outcome.rounds == 8

    def test_rejects_bad_repetitions(self):
        with pytest.raises(ValueError):
            single_link_nonadaptive_routing(4, 0.2, repetitions=0)


class TestAdaptiveRouting:
    def test_faultless_is_k_rounds(self):
        outcome = single_link_adaptive_routing(16, 0.0, rng=1)
        assert outcome.success and outcome.rounds == 16

    def test_rounds_near_k_over_1mp(self):
        """Lemma 32: ~k/(1-p) rounds — constant per message."""
        k, p = 500, 0.5
        outcome = single_link_adaptive_routing(k, p, rng=2)
        assert outcome.success
        expected = k / (1 - p)
        assert 0.8 * expected < outcome.rounds < 1.3 * expected

    def test_budget_respected(self):
        outcome = single_link_adaptive_routing(100, 0.5, rng=3, round_budget=10)
        assert not outcome.success
        assert outcome.rounds <= 10

    def test_delivered_counts(self):
        outcome = single_link_adaptive_routing(10, 0.3, rng=4)
        assert outcome.delivered == 10


class TestCoding:
    def test_faultless_is_k_rounds(self):
        outcome = single_link_coding(16, 0.0, rng=1)
        assert outcome.success and outcome.rounds == 16

    def test_rounds_near_k_over_1mp(self):
        """Lemma 30: a single negative-binomial wait, ~k/(1-p) rounds."""
        k, p = 500, 0.5
        outcome = single_link_coding(k, p, rng=2)
        assert outcome.success
        expected = k / (1 - p)
        assert 0.8 * expected < outcome.rounds < 1.3 * expected

    def test_budget(self):
        outcome = single_link_coding(1000, 0.5, rng=3, max_rounds=100)
        assert not outcome.success


class TestAppendixAGaps:
    def test_lemma31_nonadaptive_gap_grows_with_k(self):
        """Coding vs non-adaptive routing gap ~ Θ(log k)."""
        p = 0.5
        gaps = {}
        for k in (16, 1024):
            routing = single_link_nonadaptive_routing(k, p, rng=5)
            coding = single_link_coding(k, p, rng=5)
            assert coding.success
            gaps[k] = routing.rounds / coding.rounds
        assert gaps[1024] > gaps[16]

    def test_lemma33_adaptive_gap_constant(self):
        """Coding vs adaptive routing gap ~ Θ(1) for all k."""
        p = 0.5
        for k in (64, 1024):
            routing = single_link_adaptive_routing(k, p, rng=6)
            coding = single_link_coding(k, p, rng=6)
            assert routing.success and coding.success
            gap = routing.rounds / coding.rounds
            assert 0.5 < gap < 2.0
