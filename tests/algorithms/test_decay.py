"""Tests for the Decay algorithm (Lemmas 5, 6, 9)."""

import pytest

from repro.algorithms.base import ilog2
from repro.algorithms.decay import DecayProtocol, decay_broadcast
from repro.core.faults import FaultConfig
from repro.core.packets import MessagePacket
from repro.topologies.basic import grid, path, star
from repro.topologies.random_graphs import gnp
from repro.util.rng import RandomSource


class TestIlog2:
    def test_values(self):
        assert ilog2(1) == 0
        assert ilog2(2) == 1
        assert ilog2(3) == 2
        assert ilog2(1024) == 10

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ilog2(0)


class TestProtocolMechanics:
    def test_uninformed_never_broadcasts(self):
        p = DecayProtocol(16, RandomSource(1), informed=False)
        assert all(p.act(t) is None for t in range(100))

    def test_informed_broadcasts_in_round_zero_of_phase(self):
        # probability 2^0 = 1 in the first round of each phase
        p = DecayProtocol(16, RandomSource(1), informed=True)
        assert p.act(0) is not None
        assert p.act(p.phase_length) is not None

    def test_becomes_informed_on_receive(self):
        p = DecayProtocol(16, RandomSource(1))
        assert not p.is_done()
        p.on_receive(3, MessagePacket(0), sender=5)
        assert p.is_done()
        assert p.informed_round == 3
        assert p.active

    def test_broadcast_rate_halves_per_round_of_phase(self):
        rng = RandomSource(7)
        p = DecayProtocol(256, rng, informed=True)
        # round index 3 within phase -> probability 1/8
        hits = sum(p.act(3) is not None for _ in range(4000))
        assert 0.09 < hits / 4000 < 0.16


class TestFaultlessBroadcast:
    def test_path_completes(self):
        outcome = decay_broadcast(path(20), rng=1)
        assert outcome.success
        assert outcome.informed == 20

    def test_star_completes_fast(self):
        outcome = decay_broadcast(star(30), rng=2)
        assert outcome.success
        # one phase suffices: hub broadcasts alone with probability 1 at i=0
        assert outcome.rounds <= 2 * (ilog2(31) + 1)

    def test_grid_completes(self):
        outcome = decay_broadcast(grid(6, 6), rng=3)
        assert outcome.success

    def test_gnp_completes(self):
        outcome = decay_broadcast(gnp(40, 0.2, rng=4), rng=5)
        assert outcome.success

    def test_single_node(self):
        outcome = decay_broadcast(path(1), rng=0)
        assert outcome.success and outcome.rounds == 0

    def test_rounds_scale_with_diameter(self):
        """Lemma 6 shape: rounds grow roughly linearly in D·log n."""
        short = decay_broadcast(path(8), rng=11)
        long = decay_broadcast(path(64), rng=11)
        assert long.rounds > short.rounds * 3


class TestNoisyBroadcast:
    """Lemma 9: Decay still completes under either fault model."""

    @pytest.mark.parametrize("faults", [
        FaultConfig.sender(0.3),
        FaultConfig.receiver(0.3),
        FaultConfig.sender(0.6),
        FaultConfig.receiver(0.6),
    ], ids=str)
    def test_completes_under_faults(self, faults):
        outcome = decay_broadcast(path(16), faults=faults, rng=6)
        assert outcome.success

    def test_faults_slow_but_do_not_stop(self):
        quiet = decay_broadcast(path(24), rng=8)
        noisy_total = 0
        trials = 5
        for t in range(trials):
            noisy = decay_broadcast(
                path(24), faults=FaultConfig.receiver(0.5), rng=100 + t
            )
            assert noisy.success
            noisy_total += noisy.rounds
        # Lemma 9: ~1/(1-p) = 2x slowdown; allow wide tolerance but
        # demand a real gap
        assert noisy_total / trials > quiet.rounds

    def test_determinism(self):
        a = decay_broadcast(path(16), FaultConfig.receiver(0.4), rng=9)
        b = decay_broadcast(path(16), FaultConfig.receiver(0.4), rng=9)
        assert a.rounds == b.rounds

    def test_outcome_fields(self):
        outcome = decay_broadcast(path(4), rng=1)
        assert outcome.total == 4
        assert outcome.informed_fraction == 1.0
        assert outcome.counters.rounds == outcome.rounds
