"""Property-based tests on the collapsed WCT simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.multi.wct_sim import WCTBroadcastSimulator
from repro.topologies.wct import worst_case_topology


@given(
    seed=st.integers(min_value=0, max_value=200),
    subset_seed=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=25, deadline=None)
def test_hearing_matches_bruteforce(seed, subset_seed):
    """hearing_clusters == 'exactly one adjacent broadcaster' by definition."""
    wct = worst_case_topology(100, rng=seed)
    sim = WCTBroadcastSimulator(wct, p=0.2, rng=seed)
    rng = np.random.default_rng(subset_seed)
    mask = rng.random(wct.num_senders) < 0.4
    hearing = sim.hearing_clusters(mask)
    for j in range(wct.num_clusters):
        count = int(np.sum(wct.adjacency[j] & mask))
        assert hearing[j] == (count == 1)


@given(seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=10, deadline=None)
def test_faultless_members_receive_together(seed):
    """With p=0 every member of a hearing cluster receives — atomicity."""
    wct = worst_case_topology(100, rng=seed)
    sim = WCTBroadcastSimulator(wct, p=0.0, rng=seed)
    mask = np.zeros(wct.num_senders, dtype=bool)
    mask[0] = True
    hearing = sim.hearing_clusters(mask)
    successes = sim._member_successes(hearing)
    for j in range(wct.num_clusters):
        assert successes[j].all() == hearing[j]
        assert successes[j].any() == hearing[j]


@given(
    seed=st.integers(min_value=0, max_value=50),
    k=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=8, deadline=None)
def test_coding_never_slower_than_routing(seed, k):
    """Per-reception usefulness dominates: coding rounds <= routing rounds
    on the same topology and fault level (up to shared source phase)."""
    wct = worst_case_topology(144, rng=seed)
    routing = WCTBroadcastSimulator(wct, p=0.5, rng=seed).run_routing(k=k)
    coding = WCTBroadcastSimulator(wct, p=0.5, rng=seed).run_coding(k=k)
    assert routing.success and coding.success
    assert coding.rounds <= routing.rounds * 1.2 + 50
