"""Tests for bipartite/pipelined routing (Lemmas 20-21) and the WCT
cluster simulator (Lemmas 19, 22, 23)."""

import numpy as np
import pytest

from repro.algorithms.multi.pipelined import (
    bipartite_routing_broadcast,
    pipelined_routing_broadcast,
)
from repro.algorithms.multi.wct_sim import WCTBroadcastSimulator
from repro.core.engine import Channel
from repro.core.faults import FaultConfig
from repro.core.packets import MessagePacket
from repro.topologies.basic import path
from repro.topologies.layered import bipartite_network, layered_network
from repro.topologies.wct import worst_case_topology


class TestBipartiteRouting:
    def test_faultless_completes(self):
        net = bipartite_network(4, 8)
        outcome = bipartite_routing_broadcast(
            net, k=4, faults=FaultConfig.faultless(), rng=1
        )
        assert outcome.success

    def test_receiver_faults_completes(self):
        net = bipartite_network(4, 8)
        outcome = bipartite_routing_broadcast(
            net, k=4, faults=FaultConfig.receiver(0.4), rng=2
        )
        assert outcome.success

    def test_sparse_bipartite(self):
        net = bipartite_network(6, 12, edge_probability=0.5, rng=3)
        outcome = bipartite_routing_broadcast(
            net, k=3, faults=FaultConfig.receiver(0.3), rng=4
        )
        assert outcome.success

    def test_needs_two_layers(self):
        with pytest.raises(ValueError):
            bipartite_routing_broadcast(
                path(2), k=1, faults=FaultConfig.faultless()
            )

    def test_rounds_scale_with_k(self):
        net = bipartite_network(4, 8)
        small = bipartite_routing_broadcast(
            net, k=2, faults=FaultConfig.receiver(0.3), rng=5
        )
        large = bipartite_routing_broadcast(
            net, k=16, faults=FaultConfig.receiver(0.3), rng=5
        )
        assert large.rounds > 3 * small.rounds


class TestPipelinedRouting:
    def test_faultless_layered(self):
        net = layered_network(4, 4)
        outcome = pipelined_routing_broadcast(
            net, k=4, faults=FaultConfig.faultless(), rng=1
        )
        assert outcome.success

    def test_receiver_faults_layered(self):
        net = layered_network(3, 4)
        outcome = pipelined_routing_broadcast(
            net, k=6, faults=FaultConfig.receiver(0.3), rng=2
        )
        assert outcome.success

    def test_path_topology(self):
        outcome = pipelined_routing_broadcast(
            path(8), k=4, faults=FaultConfig.receiver(0.3), rng=3
        )
        assert outcome.success

    def test_pipelining_beats_naive_depth_times_k(self):
        """With batches pipelined 3 apart, total rounds ~ (D + k), not D*k
        (in units of the per-batch cost)."""
        net = layered_network(6, 3)
        outcome = pipelined_routing_broadcast(
            net, k=12, faults=FaultConfig.receiver(0.2), rng=4, batch_size=2
        )
        assert outcome.success

    def test_completed_nodes_reported(self):
        net = layered_network(2, 3)
        outcome = pipelined_routing_broadcast(
            net, k=2, faults=FaultConfig.faultless(), rng=5
        )
        assert outcome.completed_nodes == outcome.total_nodes == net.n


class TestWCTSimulatorEquivalence:
    """The collapsed model must match the full Channel semantics."""

    def test_hearing_matches_channel(self):
        wct = worst_case_topology(100, rng=1)
        sim = WCTBroadcastSimulator(wct, p=0.0, rng=2)
        net = wct.network
        channel = Channel(net, FaultConfig.faultless(), rng=3)
        for trial in range(10):
            # random sender subset
            mask = np.zeros(wct.num_senders, dtype=bool)
            rng = np.random.default_rng(trial)
            chosen = rng.choice(
                wct.num_senders, size=max(1, trial % wct.num_senders), replace=False
            )
            mask[chosen] = True
            hearing = sim.hearing_clusters(mask)
            actions = {
                wct.senders[i]: MessagePacket(0)
                for i in range(wct.num_senders)
                if mask[i]
            }
            result = channel.transmit(actions)
            received_nodes = {d.receiver for d in result.deliveries}
            for j, members in enumerate(wct.clusters):
                if hearing[j]:
                    assert set(members) <= received_nodes
                else:
                    assert not (set(members) & received_nodes)


class TestWCTSchedules:
    def test_routing_completes(self):
        wct = worst_case_topology(144, rng=1)
        sim = WCTBroadcastSimulator(wct, p=0.5, rng=2)
        outcome = sim.run_routing(k=4)
        assert outcome.success

    def test_coding_completes(self):
        wct = worst_case_topology(144, rng=1)
        sim = WCTBroadcastSimulator(wct, p=0.5, rng=2)
        outcome = sim.run_coding(k=4)
        assert outcome.success

    def test_coding_beats_routing(self):
        """Theorem 24's mechanism: routing pays an extra log factor."""
        wct = worst_case_topology(900, rng=3)
        sim_r = WCTBroadcastSimulator(wct, p=0.5, rng=4)
        sim_c = WCTBroadcastSimulator(wct, p=0.5, rng=4)
        routing = sim_r.run_routing(k=8)
        coding = sim_c.run_coding(k=8)
        assert routing.success and coding.success
        assert coding.rounds < routing.rounds

    def test_budget_failure(self):
        wct = worst_case_topology(144, rng=1)
        sim = WCTBroadcastSimulator(wct, p=0.5, rng=2)
        outcome = sim.run_routing(k=8, max_rounds=10)
        assert not outcome.success

    def test_rejects_bad_k(self):
        wct = worst_case_topology(144, rng=1)
        sim = WCTBroadcastSimulator(wct, p=0.5, rng=2)
        with pytest.raises(ValueError):
            sim.run_routing(k=0)

    def test_rejects_bad_p(self):
        wct = worst_case_topology(144, rng=1)
        with pytest.raises(ValueError):
            WCTBroadcastSimulator(wct, p=1.0)
