"""Tests for the shared algorithm scaffolding."""

import pytest

from repro.algorithms.base import BroadcastOutcome, broadcast_probe
from repro.algorithms.decay import decay_broadcast
from repro.core.trace import ChannelCounters
from repro.topologies.basic import path
from repro.util.rng import RandomSource


class TestBroadcastOutcome:
    def test_informed_fraction(self):
        outcome = BroadcastOutcome(
            success=False,
            rounds=10,
            informed=3,
            total=4,
            counters=ChannelCounters(),
        )
        assert outcome.informed_fraction == 0.75

    def test_frozen(self):
        outcome = BroadcastOutcome(
            success=True, rounds=1, informed=1, total=1,
            counters=ChannelCounters(),
        )
        with pytest.raises(AttributeError):
            outcome.rounds = 2  # type: ignore[misc]


class TestBroadcastProbe:
    def test_runs_requested_trials(self):
        outcomes = broadcast_probe(
            lambda seed: decay_broadcast(path(6), rng=seed),
            trials=4,
            rng=1,
        )
        assert len(outcomes) == 4
        assert all(o.success for o in outcomes)

    def test_trials_get_distinct_seeds(self):
        seen = []
        broadcast_probe(lambda seed: seen.append(seed) or decay_broadcast(
            path(3), rng=seed), trials=5, rng=2)
        assert len(set(seen)) == 5

    def test_reproducible(self):
        def collect(top_seed):
            seeds = []
            broadcast_probe(
                lambda seed: seeds.append(seed) or decay_broadcast(
                    path(3), rng=seed),
                trials=3,
                rng=top_seed,
            )
            return seeds

        assert collect(7) == collect(7)
        assert collect(7) != collect(8)

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            broadcast_probe(lambda seed: None, trials=0)


class TestIterBernoulli:
    def test_stream(self):
        rng = RandomSource(3)
        stream = rng.iter_bernoulli(0.5)
        draws = [next(stream) for _ in range(100)]
        assert any(draws) and not all(draws)
