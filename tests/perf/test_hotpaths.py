"""Smoke tests for the hot-path benchmark suite (tiny iteration counts)."""

import json

import pytest

from repro.perf.hotpaths import (
    SCHEMA,
    BenchResult,
    bench_channel_rounds,
    bench_gf_matmul,
    bench_rlnc_emit,
    bench_rlnc_receive,
    bench_star_rlnc_round_loop,
    consistency_check,
    run_hotpath_benchmarks,
    write_report,
)


class TestConsistency:
    def test_kernels_match_references(self):
        assert consistency_check(samples=6, rounds=4) == []


class TestBenchFunctions:
    def test_channel_rounds_result(self):
        result = bench_channel_rounds(rounds=5, n=64)
        assert result.name == "channel_rounds"
        assert result.ops_per_sec > 0
        assert result.reference_ops_per_sec > 0
        assert result.speedup is not None

    def test_star_round_loop_result(self):
        result = bench_star_rlnc_round_loop(rounds=4, n=40, k=4, payload_length=4)
        assert result.name == "star_rlnc_round_loop"
        assert result.ops_per_sec > 0
        assert result.meta["n"] == 40

    def test_rlnc_ops_results(self):
        emit = bench_rlnc_emit(ops=25, k=8, payload_length=8)
        receive = bench_rlnc_receive(ops=25, k=8, payload_length=8)
        assert emit.ops_per_sec > 0 and receive.ops_per_sec > 0

    def test_gf_matmul_result(self):
        result = bench_gf_matmul(ops=3, size=16)
        assert result.ops_per_sec > 0
        assert result.speedup is None

    def test_result_to_dict_round_trips_json(self):
        result = BenchResult("x", 10.0, 5.0, meta={"n": 1})
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["speedup"] == 2.0


class TestReport:
    def test_rejects_unknown_scale(self):
        with pytest.raises(ValueError):
            run_hotpath_benchmarks(scale="galactic")

    def test_write_report(self, tmp_path):
        path = tmp_path / "BENCH_hotpaths.json"
        report = {
            "schema": SCHEMA,
            "scale": "smoke",
            "results": [BenchResult("x", 1.0).to_dict()],
        }
        write_report(report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCHEMA
        assert loaded["results"][0]["name"] == "x"
