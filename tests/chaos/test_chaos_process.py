"""Tentpole acceptance: coordinator SIGKILLed mid-sweep, recovered.

Thin pytest wrapper over :func:`repro.chaos.smoke.run_chaos_smoke`,
which runs a real sweep through a seeded fault-injecting proxy with a
kamikaze worker, a slow-heartbeat worker, and a steady worker, SIGKILLs
the coordinator mid-sweep, restarts it with ``--recover``, and checks
the sweep completes with the sharded store byte-identical to serial
``run_batch``, no worker hung, and ``completed`` never exceeding the
scenario count.
"""

from repro.chaos.smoke import SCENARIOS, run_chaos_smoke


def test_kill_the_coordinator_mid_chaos_full_recovery():
    evidence = run_chaos_smoke(verbose=False)
    assert evidence["scenarios"] == SCENARIOS >= 90
    assert evidence["recovery_seconds"] < 30.0
    # the proxy really injected faults on worker traffic
    stats = evidence["faults"]
    injected = (
        stats["dropped"] + stats["delayed"] + stats["errors"]
        + stats["blackholed"]
    )
    assert injected > 0, stats
    # kamikaze self-killed (42); the survivors exited cleanly — nobody hung
    assert evidence["exit_codes"] == {"kamikaze": 42, "slowbeat": 0, "steady": 0}
