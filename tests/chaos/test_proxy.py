"""ChaosProxy semantics: seeded schedule, clean forwarding, and the
client deadline that bounds a black-holed coordinator.

The upstream here is a tiny echo server, not a ReproService — the proxy
is HTTP-level and upstream-agnostic, and these tests pin the transport
contract the chaos smoke relies on: injected 500s never reach the
upstream, drops are transport errors (retryable), and a black hole
costs a deadline-bearing client at most its deadline, never forever.
"""

import http.client
import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.chaos import ChaosProxy
from repro.service.client import ServiceClient


class _EchoHandler(BaseHTTPRequestHandler):
    """Answers every request with what it saw; counts arrivals."""

    def log_message(self, *args):
        pass

    def _answer(self):
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length).decode() if length else ""
        self.server.seen.append((self.command, self.path, body))
        payload = json.dumps(
            {"method": self.command, "path": self.path, "body": body}
        ).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    do_GET = do_POST = do_PUT = do_DELETE = _answer


@pytest.fixture()
def upstream():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _EchoHandler)
    server.seen = []
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield server, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read()


class TestSchedule:
    def test_same_seed_same_decisions(self, upstream):
        _, url = upstream
        kwargs = dict(drop=0.2, delay=0.2, error=0.2, blackhole=0.1)
        first = ChaosProxy(url, seed=42, **kwargs)
        second = ChaosProxy(url, seed=42, **kwargs)
        decisions = [first._decide() for _ in range(200)]
        assert decisions == [second._decide() for _ in range(200)]
        # a mixed schedule actually mixes
        kinds = {kind for kind, _delay in decisions}
        assert {"drop", "delay", "error", "forward"} <= kinds

    def test_different_seed_different_schedule(self, upstream):
        _, url = upstream
        kwargs = dict(drop=0.25, delay=0.25, error=0.25)
        first = ChaosProxy(url, seed=1, **kwargs)
        second = ChaosProxy(url, seed=2, **kwargs)
        assert [first._decide() for _ in range(100)] != [
            second._decide() for _ in range(100)
        ]

    def test_zero_rates_always_forward(self, upstream):
        _, url = upstream
        proxy = ChaosProxy(url, drop=0.0, delay=0.0, error=0.0)
        assert all(
            proxy._decide() == ("forward", 0.0) for _ in range(50)
        )

    def test_bad_rates_rejected(self, upstream):
        _, url = upstream
        with pytest.raises(ValueError):
            ChaosProxy(url, drop=1.2)
        with pytest.raises(ValueError):
            ChaosProxy(url, drop=0.6, delay=0.6)
        with pytest.raises(ValueError):
            ChaosProxy("not-a-url")


class TestForwarding:
    def test_clean_proxy_is_transparent(self, upstream):
        server, url = upstream
        with ChaosProxy(url, drop=0.0, delay=0.0, error=0.0) as proxy:
            status, body = _get(f"{proxy.url}/health?x=1")
            assert status == 200
            echoed = json.loads(body)
            assert echoed == {"method": "GET", "path": "/health?x=1", "body": ""}

            request = urllib.request.Request(
                f"{proxy.url}/jobs", data=b'{"base": 1}', method="POST"
            )
            with urllib.request.urlopen(request, timeout=5.0) as response:
                echoed = json.loads(response.read())
            assert echoed["method"] == "POST"
            assert echoed["body"] == '{"base": 1}'
        assert [m for m, _p, _b in server.seen] == ["GET", "POST"]
        assert proxy.stats()["forwarded"] == 2

    def test_injected_500_never_reaches_upstream(self, upstream):
        server, url = upstream
        with ChaosProxy(url, drop=0.0, delay=0.0, error=1.0) as proxy:
            with pytest.raises(urllib.error.HTTPError) as caught:
                _get(f"{proxy.url}/jobs")
            assert caught.value.code == 500
            assert b"chaos" in caught.value.read()
        assert server.seen == []  # a retried POST could not double-execute
        assert proxy.stats()["errors"] == 1

    def test_drop_is_a_transport_error(self, upstream):
        _, url = upstream
        with ChaosProxy(url, drop=1.0, delay=0.0, error=0.0) as proxy:
            with pytest.raises(
                (urllib.error.URLError, ConnectionError,
                 http.client.RemoteDisconnected)
            ):
                _get(f"{proxy.url}/health")
        assert proxy.stats()["dropped"] == 1

    def test_delay_still_delivers(self, upstream):
        _, url = upstream
        with ChaosProxy(
            url, drop=0.0, delay=1.0, error=0.0, delay_s=(0.05, 0.05)
        ) as proxy:
            started = time.monotonic()
            status, _body = _get(f"{proxy.url}/health")
            elapsed = time.monotonic() - started
        assert status == 200
        assert elapsed >= 0.05
        assert proxy.stats()["delayed"] == 1


class TestClientDeadline:
    def test_deadline_bounds_a_black_hole(self, upstream):
        """The acceptance pathology: the coordinator accepts and never
        answers. Socket timeouts plus retries would wait ~forever; the
        total deadline caps the loss at ~deadline seconds."""
        _, url = upstream
        with ChaosProxy(
            url, drop=0.0, delay=0.0, error=0.0, blackhole=1.0, blackhole_s=30.0
        ) as proxy:
            client = ServiceClient(
                proxy.url, timeout=10.0, retries=5, deadline=1.0
            )
            started = time.monotonic()
            with pytest.raises(TimeoutError) as caught:
                client.health()
            elapsed = time.monotonic() - started
        assert "deadline" in str(caught.value)
        assert elapsed < 5.0  # bounded by the deadline, not 10s x 6 attempts

    def test_deadline_forbids_retries_past_it(self, upstream):
        """Drops are retryable, but never past the deadline."""
        _, url = upstream
        with ChaosProxy(url, drop=1.0, delay=0.0, error=0.0) as proxy:
            client = ServiceClient(
                proxy.url, timeout=5.0, retries=50, backoff=0.2, deadline=0.8
            )
            started = time.monotonic()
            with pytest.raises((TimeoutError, urllib.error.URLError, ConnectionError)):
                client.health()
            elapsed = time.monotonic() - started
        assert elapsed < 4.0

    def test_deadline_leaves_fast_calls_alone(self, upstream):
        _, url = upstream
        with ChaosProxy(url, drop=0.0, delay=0.0, error=0.0) as proxy:
            client = ServiceClient(proxy.url, deadline=5.0)
            echoed = client._json("/anything", idempotent=True)
        assert echoed["path"] == "/anything"
