"""The observability CLI: ``repro top``, ``repro trace``, store stats."""

import json

from repro.cli import main
from repro.core.faults import FaultConfig
from repro.runner import Scenario, expand_grid, run_batch
from repro.service import ReproService
from repro.store import ResultStore
from repro.telemetry import TraceSink, Tracer, trace_id_for_key

BASE = Scenario(
    algorithm="decay",
    topology="path",
    topology_params={"n": 12},
    faults=FaultConfig.receiver(0.2),
)


def _seeded_store(tmp_path, count=3):
    path = str(tmp_path / "results.db")
    with ResultStore(path) as store:
        store.put_many(run_batch(expand_grid(BASE, seeds=range(count))))
    return path


def _trace_file(tmp_path):
    path = str(tmp_path / "spans.jsonl")
    tracer = Tracer()
    tracer.configure(TraceSink(path))
    first = trace_id_for_key("a" * 64)
    second = trace_id_for_key("b" * 64)
    tracer.record_span("runner.run", first, 0.25, algorithm="decay", rounds=9)
    tracer.record_span("runner.run", second, 0.75, algorithm="decay")
    tracer.record_span("worker.lease", first, 1.5, executed=4)
    tracer.configure(None)
    return path, first


class TestStoreStats:
    def test_stats_json_is_machine_readable(self, capsys, tmp_path):
        path = _seeded_store(tmp_path)
        assert main(["store", path, "--stats", "--format", "json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["reports"] == 3
        assert stats["quarantined"] == []
        assert len(stats["shard_stats"]) == stats["shards"]
        assert sum(s["reports"] for s in stats["shard_stats"]) == 3

    def test_stats_text_renders_shard_table(self, capsys, tmp_path):
        path = _seeded_store(tmp_path)
        assert main(["store", path, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "shard" in out
        assert "total: 3 reports" in out

    def test_plain_store_output_still_json(self, capsys, tmp_path):
        # the pre-existing contract: `repro store DB` prints stats JSON
        path = _seeded_store(tmp_path)
        assert main(["store", path]) == 0
        assert json.loads(capsys.readouterr().out)["reports"] == 3


class TestTrace:
    def test_show_prints_one_line_per_span(self, capsys, tmp_path):
        path, _ = _trace_file(tmp_path)
        assert main(["trace", "show", path]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert any("runner.run" in line and "rounds=9" in line
                   for line in lines)

    def test_show_filters_by_trace_prefix(self, capsys, tmp_path):
        path, first = _trace_file(tmp_path)
        assert main(["trace", "show", path, "--trace", first[:8]]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2

    def test_show_limit_notes_overflow(self, capsys, tmp_path):
        path, _ = _trace_file(tmp_path)
        assert main(["trace", "show", path, "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "... 2 more" in out

    def test_summarize_aggregates_per_span_name(self, capsys, tmp_path):
        path, _ = _trace_file(tmp_path)
        assert main(["trace", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "3 span(s), 2 trace(s)" in out
        assert "runner.run" in out and "worker.lease" in out
        assert "500" in out  # mean of 0.25s and 0.75s in ms

    def test_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["trace", "show", str(tmp_path / "absent.jsonl")]) == 2
        assert "no trace file" in capsys.readouterr().err


class TestTop:
    def test_single_frame_against_farm_service(self, capsys, tmp_path):
        store_path = str(tmp_path / "farm.db")
        with ReproService(
            store_path, port=0, remote_workers=True, lease_scenarios=4
        ) as service:
            assert main(["top", "--connect", service.url, "--count", "1"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "queue: 0 pending" in out
        assert "no workers registered" in out
        assert "throughput" in out

    def test_single_frame_against_local_service(self, capsys, tmp_path):
        store_path = str(tmp_path / "local.db")
        with ReproService(store_path, port=0, workers=1) as service:
            client_url = service.url
            assert main(["top", "--connect", client_url, "--count", "1"]) == 0
        out = capsys.readouterr().out
        assert "local-worker service: 0 job(s)" in out

    def test_unreachable_service_reports_and_exits(self, capsys):
        assert main([
            "top", "--connect", "http://127.0.0.1:9", "--count", "1",
        ]) == 0
        assert "cannot reach" in capsys.readouterr().out
