"""The observability invariant: telemetry never changes canonical bytes.

Runs the same scenario grid with the global registry + tracer fully off
and fully on (rate 1.0, so every span actually writes), through both the
serial runner and the in-process farm coordinator, and asserts the
canonical report JSON — and the store contents behind it — are
byte-identical.
"""

import pytest

from repro.core.faults import FaultConfig
from repro.farm import Coordinator
from repro.runner import Scenario, expand_grid, run_batch
from repro.service.jobs import Job
from repro.store import ResultStore
from repro.telemetry import METRICS, TRACER, TraceSink


def _grid():
    """A small multi-algorithm grid; rlnc_decay exercises the RLNC
    decode counters, decay the channel counters."""
    scenarios = []
    for algorithm, params in (("decay", {}), ("rlnc_decay", {"k": 2})):
        base = Scenario(
            algorithm=algorithm,
            topology="path",
            topology_params={"n": 16},
            params=params,
            faults=FaultConfig.receiver(0.2),
        )
        scenarios.extend(expand_grid(base, seeds=range(3)))
    return scenarios


@pytest.fixture()
def telemetry_on(tmp_path):
    """Flip the global registry + tracer on; conftest restores them."""
    METRICS.enable()
    TRACER.configure(TraceSink(str(tmp_path / "identity.jsonl"), rate=1.0))
    yield
    TRACER.configure(None)
    METRICS.disable()


def _canonical_off(scenarios):
    METRICS.disable()
    sink = TRACER.sink
    TRACER.configure(None)
    try:
        return [r.to_json(canonical=True) for r in run_batch(scenarios)]
    finally:
        TRACER.configure(sink)


class TestRunnerPath:
    def test_report_bytes_identical_with_telemetry_on(self, telemetry_on):
        scenarios = _grid()
        off = _canonical_off(scenarios)
        METRICS.enable()
        on = [r.to_json(canonical=True) for r in run_batch(scenarios)]
        assert on == off
        # the run was actually observed, not silently un-instrumented
        assert TRACER.sink.written == len(scenarios)
        assert METRICS.get("repro_runner_runs_total").value >= len(scenarios)

    def test_store_contents_identical(self, telemetry_on, tmp_path):
        scenarios = _grid()
        with ResultStore(str(tmp_path / "on.db")) as store:
            store.put_many(run_batch(scenarios))
            on = {s.cache_key(): store.get_json(s.cache_key())
                  for s in scenarios}
        off = dict(zip((s.cache_key() for s in scenarios),
                       _canonical_off(scenarios)))
        assert on == off


class TestFarmPath:
    def _farm_store_bytes(self, tmp_path, tag, scenarios):
        """Drain the grid through an in-process coordinator."""
        with ResultStore(str(tmp_path / f"{tag}.db")) as store:
            coordinator = Coordinator(
                store, lease_scenarios=4, lease_timeout=30.0
            )
            coordinator.add_job(Job(f"job-{tag}", scenarios))
            worker = coordinator.register(tag)["worker"]
            while True:
                lease = coordinator.lease(worker)
                if lease is None:
                    break
                leased = [Scenario.from_dict(s) for s in lease["scenarios"]]
                coordinator.complete(
                    lease["id"], worker, run_batch(leased),
                    executed=len(leased),
                )
            return {s.cache_key(): store.get_json(s.cache_key())
                    for s in scenarios}

    def test_farmed_store_identical_with_telemetry_on(
        self, telemetry_on, tmp_path
    ):
        scenarios = _grid()
        on = self._farm_store_bytes(tmp_path, "on", scenarios)
        serial = dict(zip((s.cache_key() for s in scenarios),
                          _canonical_off(scenarios)))
        METRICS.disable()
        TRACER.configure(None)
        off = self._farm_store_bytes(tmp_path, "off", scenarios)
        assert on == off == serial
        assert None not in on.values()
