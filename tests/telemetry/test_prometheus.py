"""Prometheus text exposition (format 0.0.4): a golden-output test.

The exposition is an interface other software parses; this pins the
exact bytes a known registry renders so formatting regressions
(floats growing ``.0``, label ordering, bucket cumulation) fail loudly.
"""

import re

from repro.telemetry.metrics import MetricsRegistry

GOLDEN = """\
# HELP t_requests_total Requests handled.
# TYPE t_requests_total counter
t_requests_total{method="GET",route="health"} 2
t_requests_total{method="POST",route="jobs"} 1
# HELP t_queue_depth Scenarios pending.
# TYPE t_queue_depth gauge
t_queue_depth 7
# HELP t_put_seconds Store put latency.
# TYPE t_put_seconds histogram
t_put_seconds_bucket{le="0.1"} 1
t_put_seconds_bucket{le="1"} 2
t_put_seconds_bucket{le="+Inf"} 3
t_put_seconds_sum 2.5625
t_put_seconds_count 3
"""

#: one exposition sample: name{labels} value
_SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})?'
    r" -?[0-9.e+-]+$"
)


def _golden_registry():
    registry = MetricsRegistry(enabled=True)
    requests = registry.counter(
        "t_requests_total", "Requests handled.", labelnames=("method", "route")
    )
    requests.inc_labels(("GET", "health"))
    requests.inc_labels(("GET", "health"))
    requests.inc_labels(("POST", "jobs"))
    registry.gauge("t_queue_depth", "Scenarios pending.").set(7)
    latency = registry.histogram(
        "t_put_seconds", "Store put latency.", buckets=(0.1, 1.0)
    )
    # dyadic observations: the sum (2.5625) is float-exact, so the
    # golden text is stable across platforms
    for value in (0.0625, 0.5, 2.0):
        latency.observe(value)
    return registry


class TestExposition:
    def test_golden_output(self):
        assert _golden_registry().prometheus_text() == GOLDEN

    def test_every_sample_line_is_well_formed(self):
        for line in _golden_registry().prometheus_text().splitlines():
            if line.startswith("#"):
                continue
            assert _SAMPLE.match(line), line

    def test_ends_with_single_newline(self):
        text = _golden_registry().prometheus_text()
        assert text.endswith("\n") and not text.endswith("\n\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        weird = registry.counter("t_weird_total", labelnames=("path",))
        weird.inc_labels(('a"b\\c\nd',))
        text = registry.prometheus_text()
        assert 't_weird_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_integer_floats_render_without_decimal(self):
        registry = MetricsRegistry()
        registry.gauge("t_whole").set(3.0)
        assert "t_whole 3\n" in registry.prometheus_text()

    def test_help_omitted_when_empty(self):
        registry = MetricsRegistry()
        registry.counter("t_bare_total").inc()
        text = registry.prometheus_text()
        assert "# HELP" not in text
        assert "# TYPE t_bare_total counter" in text
