"""Metric primitives: counters, gauges, histograms, and the registry."""

import threading

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_labeled_children_are_separate(self):
        counter = Counter("c_total", labelnames=("method", "route"))
        counter.inc_labels(("GET", "health"))
        counter.inc_labels(("GET", "health"), 2)
        counter.inc_labels(("POST", "jobs"))
        samples = dict(counter.samples())
        assert samples['{method="GET",route="health"}'] == 3
        assert samples['{method="POST",route="jobs"}'] == 1

    def test_wrong_label_arity_raises(self):
        counter = Counter("c_total", labelnames=("method",))
        with pytest.raises(ValueError):
            counter.inc_labels(("GET", "health"))

    def test_reset_zeroes_value_and_children(self):
        counter = Counter("c_total", labelnames=("k",))
        counter.inc()
        counter.inc_labels(("a",))
        counter.reset()
        assert counter.value == 0
        assert counter.to_dict() == {"kind": "counter", "value": 0}

    def test_thread_safety_under_contention(self):
        counter = Counter("c_total")
        per_thread = 10_000

        def spin():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8 * per_thread


class TestGauge:
    def test_set_and_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8
        assert gauge.to_dict()["kind"] == "gauge"


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = Histogram("h_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5.55)
        assert histogram.cumulative() == [
            (0.1, 1), (1.0, 2), (float("inf"), 3),
        ]

    def test_to_dict_uses_inf_key(self):
        histogram = Histogram("h_seconds", buckets=(1.0,))
        histogram.observe(2.0)
        assert histogram.to_dict()["buckets"] == {"1": 0, "+Inf": 1}

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 0.5))

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 5.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_disabled_by_default(self):
        assert MetricsRegistry().enabled is False
        assert MetricsRegistry(enabled=True).enabled is True

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help text")
        second = registry.counter("c_total")
        assert first is second
        assert registry.names() == ["c_total"]

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("seam")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("seam")

    def test_gauge_is_not_a_counter_despite_subclassing(self):
        registry = MetricsRegistry()
        registry.gauge("g")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("g")

    def test_enable_disable_flip_the_flag(self):
        registry = MetricsRegistry()
        registry.enable()
        assert registry.enabled
        registry.disable()
        assert not registry.enabled

    def test_reset_keeps_registrations(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc(9)
        registry.reset()
        assert registry.get("c_total") is counter
        assert counter.value == 0

    def test_snapshot_is_json_shaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["c_total"] == {"kind": "counter", "value": 2}
        assert snapshot["h_seconds"]["count"] == 1
