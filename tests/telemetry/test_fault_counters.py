"""Fault attribution reaches /metrics: sender and receiver fault counters."""

from repro.core.faults import FaultConfig
from repro.runner import Scenario, run
from repro.telemetry import METRICS


def _value(name):
    metric = METRICS.get(name)
    assert metric is not None, name
    return metric.value


def _run(fault_config, seed=3):
    return run(
        Scenario(
            algorithm="decay",
            topology="gnp",
            topology_params={"n": 24},
            faults=fault_config,
            seed=seed,
        )
    )


class TestChannelFaultCounters:
    def test_sender_faults_feed_their_counter(self):
        METRICS.enable()
        before = _value("repro_channel_sender_faults_total")
        report = _run(FaultConfig.sender(0.4))
        METRICS.disable()
        delta = _value("repro_channel_sender_faults_total") - before
        assert delta == report.counters["sender_faults"]
        assert delta > 0

    def test_receiver_faults_feed_their_counter(self):
        METRICS.enable()
        before = _value("repro_channel_receiver_faults_total")
        report = _run(FaultConfig.receiver(0.4))
        METRICS.disable()
        delta = _value("repro_channel_receiver_faults_total") - before
        assert delta == report.counters["receiver_faults"]
        assert delta > 0

    def test_faultless_runs_leave_both_untouched(self):
        METRICS.enable()
        sender_before = _value("repro_channel_sender_faults_total")
        receiver_before = _value("repro_channel_receiver_faults_total")
        _run(FaultConfig.faultless())
        METRICS.disable()
        assert _value("repro_channel_sender_faults_total") == sender_before
        assert _value("repro_channel_receiver_faults_total") == receiver_before

    def test_disabled_metrics_cost_no_counts(self):
        METRICS.disable()
        before = _value("repro_channel_sender_faults_total")
        _run(FaultConfig.sender(0.4), seed=9)
        assert _value("repro_channel_sender_faults_total") == before
