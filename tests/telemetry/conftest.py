"""Telemetry tests mutate process-wide singletons; restore them."""

import pytest

from repro.telemetry import METRICS, TRACER


@pytest.fixture(autouse=True)
def _restore_telemetry_globals():
    enabled = METRICS.enabled
    sink = TRACER.sink
    yield
    METRICS.enabled = enabled
    if TRACER.sink is not sink:
        TRACER.configure(sink)
