"""Span tracing: deterministic ids, sampling, JSONL sinks, env config."""

import json

import pytest

from repro.telemetry.tracing import (
    TRACER,
    TraceSink,
    Tracer,
    configure_from_env,
    read_trace_file,
    span_id_for,
    trace_id_for_key,
    trace_id_for_keys,
)

KEY = "ab" * 32  # a plausible 64-hex cache key


class TestIds:
    def test_trace_id_is_cache_key_prefix(self):
        assert trace_id_for_key(KEY) == KEY[:32]
        assert trace_id_for_key("") == ""

    def test_group_id_is_order_insensitive(self):
        assert trace_id_for_keys(["b" * 64, "a" * 64]) == trace_id_for_keys(
            ["a" * 64, "b" * 64]
        )
        assert trace_id_for_keys([]) == ""
        assert trace_id_for_keys(["", ""]) == ""

    def test_group_id_differs_from_member_ids(self):
        group = trace_id_for_keys([KEY])
        assert len(group) == 32
        assert group != trace_id_for_key(KEY)

    def test_span_ids_are_deterministic_and_distinct(self):
        trace = trace_id_for_key(KEY)
        assert span_id_for(trace, "runner.run") == span_id_for(
            trace, "runner.run"
        )
        assert span_id_for(trace, "runner.run") != span_id_for(
            trace, "worker.lease"
        )
        assert span_id_for(trace, "a", parent="p") != span_id_for(trace, "a")
        assert len(span_id_for(trace, "a")) == 16


class TestSampling:
    def test_rate_extremes(self, tmp_path):
        sink = TraceSink(str(tmp_path / "t.jsonl"), rate=1.0)
        assert sink.should_sample("deadbeef" * 4)
        sink = TraceSink(str(tmp_path / "t.jsonl"), rate=0.0)
        assert not sink.should_sample("deadbeef" * 4)

    def test_rate_coin_is_the_trace_id_prefix(self, tmp_path):
        sink = TraceSink(str(tmp_path / "t.jsonl"), rate=0.5)
        for trace_id in ("00000000" + "0" * 24, "ffffffff" + "0" * 24):
            coin = int(trace_id[:8], 16) / float(1 << 32)
            assert sink.should_sample(trace_id) == (coin < 0.5)

    def test_two_sinks_keep_the_same_traces(self, tmp_path):
        ids = [trace_id_for_key(f"{i:064x}") for i in range(64)]
        a = TraceSink(str(tmp_path / "a.jsonl"), rate=0.3)
        b = TraceSink(str(tmp_path / "b.jsonl"), rate=0.3)
        assert [a.should_sample(t) for t in ids] == [
            b.should_sample(t) for t in ids
        ]

    def test_allowlist_bypasses_the_rate(self, tmp_path):
        sink = TraceSink(str(tmp_path / "t.jsonl"), rate=0.0, allow=("decay",))
        trace = trace_id_for_key(KEY)
        assert sink.should_sample(trace, algorithm="decay")
        assert not sink.should_sample(trace, algorithm="fastbc")
        assert not sink.should_sample(trace)

    def test_empty_trace_id_never_sampled(self, tmp_path):
        sink = TraceSink(str(tmp_path / "t.jsonl"), rate=1.0)
        assert not sink.should_sample("")

    def test_bad_rate_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TraceSink(str(tmp_path / "t.jsonl"), rate=1.5)


class TestTracer:
    def test_record_span_writes_jsonl(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        tracer.configure(TraceSink(path))
        trace = trace_id_for_key(KEY)
        assert tracer.record_span(
            "runner.run", trace, 0.25, algorithm="decay", rounds=12
        )
        tracer.configure(None)
        (record,) = read_trace_file(path)
        assert record["trace"] == trace
        assert record["span"] == span_id_for(trace, "runner.run")
        assert record["duration_s"] == 0.25
        assert record["attrs"] == {"algorithm": "decay", "rounds": 12}

    def test_unsampled_span_counts_but_writes_nothing(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        tracer.configure(TraceSink(path, rate=0.0))
        assert not tracer.record_span("x", trace_id_for_key(KEY), 0.1)
        assert tracer.sink.sampled_out == 1
        assert tracer.sink.written == 0
        tracer.configure(None)

    def test_span_context_manager_times_and_takes_attrs(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        tracer.configure(TraceSink(path))
        with tracer.span("work", trace_id_for_key(KEY), lease="L1") as attrs:
            assert attrs is not None
            attrs["executed"] = 3
        tracer.configure(None)
        (record,) = read_trace_file(path)
        assert record["name"] == "work"
        assert record["attrs"]["lease"] == "L1"
        assert record["attrs"]["executed"] == 3
        assert record["duration_s"] >= 0.0

    def test_span_records_errors_and_reraises(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        tracer.configure(TraceSink(path))
        with pytest.raises(RuntimeError):
            with tracer.span("boom", trace_id_for_key(KEY)):
                raise RuntimeError("simulated")
        tracer.configure(None)
        (record,) = read_trace_file(path)
        assert record["attrs"]["error"] == "RuntimeError: simulated"

    def test_unsampled_context_yields_none(self, tmp_path):
        tracer = Tracer()
        tracer.configure(TraceSink(str(tmp_path / "t.jsonl"), rate=0.0))
        with tracer.span("x", trace_id_for_key(KEY)) as attrs:
            assert attrs is None
        tracer.configure(None)

    def test_disabled_tracer_has_no_sink(self):
        tracer = Tracer()
        assert not tracer.enabled
        assert tracer.sink is None

    def test_jsonl_lines_are_sorted_and_parseable(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        tracer.configure(TraceSink(path))
        tracer.record_span("a", trace_id_for_key(KEY), 0.1)
        tracer.record_span("b", trace_id_for_key(KEY), 0.2)
        tracer.configure(None)
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert list(record) == sorted(record)


class TestEnvConfig:
    def test_disabled_without_variable(self):
        previous = TRACER.sink
        try:
            assert configure_from_env({}) is False
        finally:
            TRACER.configure(previous)

    def test_path_rate_and_allowlist(self, tmp_path):
        previous = TRACER.sink
        path = str(tmp_path / "env.jsonl")
        try:
            assert configure_from_env({
                "REPRO_TRACE": path,
                "REPRO_TRACE_RATE": "0.25",
                "REPRO_TRACE_ALLOW": "decay, rlnc_decay",
            })
            assert TRACER.enabled
            assert TRACER.sink.path == path
            assert TRACER.sink.rate == 0.25
            assert TRACER.sink.allow == {"decay", "rlnc_decay"}
        finally:
            TRACER.configure(previous)
