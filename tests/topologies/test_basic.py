"""Tests for deterministic topology generators."""

import pytest

from repro.topologies.basic import (
    balanced_tree,
    barbell,
    caterpillar,
    cycle,
    grid,
    path,
    single_link,
    star,
)


class TestSingleLink:
    def test_two_nodes_one_edge(self):
        net = single_link()
        assert net.n == 2 and net.edge_count == 1
        assert net.diameter == 1


class TestPath:
    def test_structure(self):
        net = path(5)
        assert net.n == 5
        assert net.diameter == 4
        assert net.source_eccentricity == 4  # source at the end

    def test_single_node(self):
        assert path(1).n == 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            path(0)


class TestStar:
    def test_structure(self):
        net = star(10)
        assert net.n == 11
        assert net.degree(net.source) == 10
        assert net.source_eccentricity == 1

    def test_rejects_zero_leaves(self):
        with pytest.raises(ValueError):
            star(0)


class TestCycle:
    def test_structure(self):
        net = cycle(6)
        assert net.n == 6 and net.edge_count == 6
        assert all(net.degree(u) == 2 for u in net.nodes())

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            cycle(2)


class TestGrid:
    def test_structure(self):
        net = grid(3, 4)
        assert net.n == 12
        assert net.diameter == 5  # (3-1) + (4-1)

    def test_corner_source(self):
        net = grid(2, 2)
        assert net.degree(net.source) == 2

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            grid(0, 3)


class TestBalancedTree:
    def test_structure(self):
        net = balanced_tree(2, 3)
        assert net.n == 15  # 2^4 - 1
        assert net.source_eccentricity == 3

    def test_height_zero(self):
        assert balanced_tree(2, 0).n == 1

    def test_rejects_negative_height(self):
        with pytest.raises(ValueError):
            balanced_tree(2, -1)


class TestCaterpillar:
    def test_structure(self):
        net = caterpillar(5, 2)
        assert net.n == 5 + 10
        assert net.source_eccentricity == 5  # spine end + leg

    def test_no_legs_is_path(self):
        net = caterpillar(4, 0)
        assert net.n == 4 and net.diameter == 3

    def test_single_spine_node(self):
        net = caterpillar(1, 3)
        assert net.n == 4

    def test_rejects_negative_legs(self):
        with pytest.raises(ValueError):
            caterpillar(3, -1)


class TestBarbell:
    def test_structure(self):
        net = barbell(4, 2)
        assert net.n == 4 + 4 + 2
        # cliques have internal degree clique_size - 1 (+1 for the bridge node)
        assert net.max_degree == 4

    def test_rejects_small_clique(self):
        with pytest.raises(ValueError):
            barbell(1, 2)

    def test_rejects_negative_bridge(self):
        with pytest.raises(ValueError):
            barbell(3, -1)
