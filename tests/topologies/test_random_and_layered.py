"""Tests for random and layered topology generators."""

import networkx as nx
import pytest

from repro.topologies.layered import bipartite_network, layered_network
from repro.topologies.random_graphs import gnp, random_tree
from repro.topologies.registry import TOPOLOGY_FAMILIES, make_topology


class TestGnp:
    def test_connected_even_when_sparse(self):
        # p = 0 forces the bridging logic to connect everything
        net = gnp(20, 0.0, rng=1)
        assert net.n == 20  # connectivity asserted by RadioNetwork itself

    def test_deterministic_per_seed(self):
        a = gnp(30, 0.2, rng=5)
        b = gnp(30, 0.2, rng=5)
        assert nx.utils.graphs_equal(a.graph, b.graph)

    def test_different_seeds_differ(self):
        a = gnp(30, 0.2, rng=5)
        b = gnp(30, 0.2, rng=6)
        assert not nx.utils.graphs_equal(a.graph, b.graph)

    def test_dense_is_complete(self):
        net = gnp(10, 1.0, rng=0)
        assert net.edge_count == 45

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            gnp(10, 1.5)


class TestRandomTree:
    def test_is_tree(self):
        net = random_tree(25, rng=3)
        assert net.edge_count == 24

    def test_single_node(self):
        assert random_tree(1).n == 1

    def test_deterministic(self):
        a, b = random_tree(12, rng=9), random_tree(12, rng=9)
        assert nx.utils.graphs_equal(a.graph, b.graph)


class TestBipartite:
    def test_complete_bipartite_structure(self):
        net = bipartite_network(3, 5)
        # source + 3 left + 5 right
        assert net.n == 9
        # each right node adjacent to all 3 left nodes
        right = [net.index_of(("R", j)) for j in range(5)]
        assert all(net.degree(r) == 3 for r in right)

    def test_sparse_stays_connected(self):
        net = bipartite_network(4, 10, edge_probability=0.0, rng=2)
        assert net.n == 15  # every right node got one fallback edge

    def test_levels(self):
        net = bipartite_network(3, 4)
        assert net.source_eccentricity == 2


class TestLayered:
    def test_levels_match_layers(self):
        net = layered_network(4, 3)
        assert net.source_eccentricity == 4
        layers = net.bfs_layers()
        assert [len(layer) for layer in layers] == [1, 3, 3, 3, 3]

    def test_single_layer(self):
        net = layered_network(1, 5)
        assert net.n == 6

    def test_sparse_connected(self):
        net = layered_network(3, 4, edge_probability=0.0, rng=7)
        assert net.source_eccentricity == 3


class TestRegistry:
    def test_all_families_build(self):
        for family in TOPOLOGY_FAMILIES:
            net = make_topology(family, 20, seed=1)
            assert net.n >= 2

    def test_deterministic(self):
        a = make_topology("gnp", 25, seed=4)
        b = make_topology("gnp", 25, seed=4)
        assert nx.utils.graphs_equal(a.graph, b.graph)

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            make_topology("klein-bottle", 10)

    def test_star_family_size(self):
        net = make_topology("star", 16)
        assert net.n == 16
