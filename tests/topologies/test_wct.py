"""Tests for the worst case topology construction (Figure 2, Lemma 18)."""

import math

import pytest

from repro.topologies.wct import worst_case_topology


class TestConstruction:
    def test_basic_shape(self):
        wct = worst_case_topology(400, rng=1)
        assert wct.num_senders == 20
        assert wct.cluster_size == 20
        assert wct.num_clusters >= 5
        assert wct.network.n == 1 + 20 + wct.num_clusters * 20

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            worst_case_topology(8)

    def test_source_adjacent_to_all_senders(self):
        wct = worst_case_topology(256, rng=2)
        src_neighbors = set(wct.network.neighbors[wct.network.source])
        assert src_neighbors == set(wct.senders)

    def test_radius_two(self):
        wct = worst_case_topology(256, rng=3)
        assert wct.network.source_eccentricity == 2

    def test_deterministic(self):
        a = worst_case_topology(256, rng=9)
        b = worst_case_topology(256, rng=9)
        assert (a.adjacency == b.adjacency).all()


class TestClusterAtomicity:
    """All nodes of a cluster share one sender neighborhood — the property
    that makes each cluster behave as a single star receiver (Lemma 19)."""

    def test_identical_neighborhoods_within_cluster(self):
        wct = worst_case_topology(400, rng=4)
        net = wct.network
        sender_set = set(wct.senders)
        for members in wct.clusters:
            neighborhoods = {
                frozenset(set(net.neighbors[v]) & sender_set) for v in members
            }
            assert len(neighborhoods) == 1

    def test_adjacency_matrix_matches_graph(self):
        wct = worst_case_topology(300, rng=5)
        net = wct.network
        for j, members in enumerate(wct.clusters):
            rep = members[0]
            graph_senders = {
                wct.senders.index(u)
                for u in net.neighbors[rep]
                if u in set(wct.senders)
            }
            matrix_senders = {
                i for i in range(wct.num_senders) if wct.adjacency[j, i]
            }
            assert graph_senders == matrix_senders

    def test_clusters_connect_only_to_senders(self):
        wct = worst_case_topology(300, rng=6)
        net = wct.network
        sender_set = set(wct.senders)
        for members in wct.clusters:
            for v in members:
                assert set(net.neighbors[v]) <= sender_set

    def test_cluster_of_node(self):
        wct = worst_case_topology(256, rng=7)
        assert wct.cluster_of_node(wct.clusters[2][0]) == 2
        assert wct.cluster_of_node(wct.network.source) == -1


class TestInformedFraction:
    def test_empty_broadcast_set(self):
        wct = worst_case_topology(256, rng=8)
        assert wct.informed_fraction([]) == 0.0

    def test_all_senders_collide_everywhere(self):
        wct = worst_case_topology(400, rng=8)
        # every cluster has degree >= 2, so all-senders => all collisions
        assert wct.informed_fraction(range(wct.num_senders)) == 0.0

    def test_out_of_range_sender(self):
        wct = worst_case_topology(256, rng=8)
        with pytest.raises(ValueError):
            wct.informed_fraction([999])

    def test_lemma18_fraction_decreases_with_n(self):
        """The core Lemma 18 shape: max informed fraction ~ O(1/log n)."""
        fractions = {}
        for n in (256, 1024, 4096):
            wct = worst_case_topology(n, rng=11)
            fractions[n] = wct.max_singleton_fraction(
                trials_per_size=10, rng=13
            )
        assert fractions[4096] < fractions[256]
        # and the absolute level is consistent with c / log2(n) for small c
        for n, frac in fractions.items():
            assert frac <= 6.0 / math.log2(n), (n, frac)
