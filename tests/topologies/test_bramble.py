"""Tests for the bramble topology and its role as a Decay stress test."""

import pytest

from repro.algorithms.decay import decay_broadcast
from repro.algorithms.fastbc import fastbc_broadcast
from repro.gbst.gbst import build_gbst
from repro.topologies.basic import bramble


class TestStructure:
    def test_node_count(self):
        net = bramble(5, 3)
        # 5 spine + 3 interior nodes x 3 bag nodes
        assert net.n == 5 + 3 * 3

    def test_single_spine(self):
        assert bramble(1, 4).n == 1

    def test_zero_bags_is_path(self):
        net = bramble(6, 0)
        assert net.n == 6 and net.diameter == 5

    def test_rejects_negative_bag(self):
        with pytest.raises(ValueError):
            bramble(3, -1)

    def test_spine_eccentricity(self):
        net = bramble(8, 2)
        assert net.source_eccentricity == 7

    def test_bag_nodes_skip_their_spine_node(self):
        net = bramble(4, 2)
        for i in range(1, 3):
            for b in range(2):
                bag = net.index_of(("b", i, b))
                neighbors = {net.label_of(u) for u in net.neighbors[bag]}
                assert neighbors == {("v", i - 1), ("v", i + 1)}


class TestGBST:
    def test_gbst_valid(self):
        result = build_gbst(bramble(10, 4))
        assert result.valid

    def test_spine_is_fast_stretch(self):
        net = bramble(10, 4)
        tree = build_gbst(net).tree
        spine = [net.index_of(("v", i)) for i in range(10)]
        # the spine forms a fast stretch except near the rank drop at the
        # tail (the last rank-2 node's child is rank 1, a slow edge)
        for i in range(10 - 3):
            assert tree.fast_child(spine[i]) == spine[i + 1]


class TestBroadcastCompletion:
    def test_decay_completes(self):
        outcome = decay_broadcast(bramble(24, 7), rng=2)
        assert outcome.success

    def test_fastbc_completes(self):
        outcome = fastbc_broadcast(bramble(24, 7), rng=2)
        assert outcome.success

    def test_fastbc_wave_unblocked_by_bags(self):
        """Bags never join the fast set, so the faultless wave still
        crosses the spine at a constant rate despite the dense
        neighborhoods."""
        dense = fastbc_broadcast(bramble(32, 7), rng=1)
        bare = fastbc_broadcast(bramble(32, 0), rng=1)
        assert dense.success and bare.success
        assert dense.rounds < 3 * bare.rounds
