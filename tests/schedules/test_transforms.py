"""Tests for the Lemma 25/26 schedule transformations."""

import pytest

from repro.core.faults import FaultModel
from repro.schedules.schedule import path_pipeline_schedule, star_schedule
from repro.schedules.transforms import (
    transform_coding_schedule,
    transform_routing_schedule,
)


class TestRoutingTransform:
    """Lemma 25: routing -> sender-fault-robust routing, ~(1-p) throughput."""

    def test_star_success_with_adequate_x(self):
        s = star_schedule(n_leaves=8, k=4)
        outcome = transform_routing_schedule(s, x=24, p=0.3, rng=1)
        assert outcome.success
        assert outcome.reproduced == outcome.expected

    def test_path_pipeline_success(self):
        s = path_pipeline_schedule(6, 4)
        outcome = transform_routing_schedule(s, x=24, p=0.3, rng=2)
        assert outcome.success

    def test_throughput_ratio_near_one_minus_p(self):
        s = star_schedule(n_leaves=8, k=4)
        p = 0.4
        outcome = transform_routing_schedule(s, x=64, p=p, eta=0.5, rng=3)
        assert outcome.success
        # ratio -> (1-p)/(1+eta); allow simulation slack
        assert 0.45 * (1 - p) < outcome.throughput_ratio <= 1.0

    def test_tiny_x_fails_sometimes(self):
        """x = 1 gives each sub-message no slack; with many broadcasters
        some meta-round overruns."""
        s = star_schedule(n_leaves=8, k=8)
        failures = sum(
            not transform_routing_schedule(s, x=1, p=0.6, eta=0.01, rng=seed).success
            for seed in range(10)
        )
        assert failures > 0

    def test_transformed_k_and_rounds(self):
        s = star_schedule(n_leaves=4, k=2)
        outcome = transform_routing_schedule(s, x=8, p=0.25, rng=4)
        assert outcome.k_transformed == 16
        assert outcome.transformed_rounds == (
            s.length * outcome.meta_round_length
        )

    def test_validation(self):
        s = star_schedule(4, 2)
        with pytest.raises(ValueError):
            transform_routing_schedule(s, x=0, p=0.2)
        with pytest.raises(ValueError):
            transform_routing_schedule(s, x=4, p=1.0)
        with pytest.raises(ValueError):
            transform_routing_schedule(s, x=4, p=0.2, eta=0.0)


class TestCodingTransform:
    """Lemma 26: coding robust to sender AND receiver faults."""

    @pytest.mark.parametrize(
        "fault_model", [FaultModel.SENDER, FaultModel.RECEIVER], ids=str
    )
    def test_star_success(self, fault_model):
        s = star_schedule(n_leaves=8, k=4)
        outcome = transform_coding_schedule(
            s, x=32, p=0.3, fault_model=fault_model, rng=1
        )
        assert outcome.success

    def test_path_pipeline_receiver_faults(self):
        s = path_pipeline_schedule(6, 4)
        outcome = transform_coding_schedule(
            s, x=32, p=0.3, fault_model=FaultModel.RECEIVER, rng=2
        )
        assert outcome.success

    def test_throughput_ratio(self):
        s = star_schedule(n_leaves=8, k=4)
        p = 0.5
        outcome = transform_coding_schedule(s, x=64, p=p, eta=0.5, rng=3)
        assert outcome.success
        assert 0.45 * (1 - p) < outcome.throughput_ratio <= 1.0

    def test_rejects_faultless_model(self):
        s = star_schedule(4, 2)
        with pytest.raises(ValueError):
            transform_coding_schedule(
                s, x=4, p=0.2, fault_model=FaultModel.NONE
            )

    def test_small_x_high_p_fails_often(self):
        s = star_schedule(n_leaves=16, k=4)
        failures = sum(
            not transform_coding_schedule(
                s, x=2, p=0.6, eta=0.01, rng=seed
            ).success
            for seed in range(10)
        )
        assert failures > 0


class TestLemma26BeatsLemma25Scope:
    """The coding transform also survives receiver faults, where the
    routing transform's premise (senders observe their own faults) breaks."""

    def test_coding_under_receiver_faults_succeeds(self):
        s = star_schedule(n_leaves=8, k=4)
        outcome = transform_coding_schedule(
            s, x=64, p=0.4, fault_model=FaultModel.RECEIVER, eta=0.75, rng=5
        )
        assert outcome.success
