"""Tests for static routing schedules and the reference executor."""

import pytest

from repro.schedules.schedule import (
    StaticRoutingSchedule,
    execute_reference,
    path_pipeline_schedule,
    star_schedule,
)
from repro.topologies.basic import path


class TestStaticSchedule:
    def test_validation_rejects_unknown_node(self):
        with pytest.raises(ValueError):
            StaticRoutingSchedule(network=path(3), k=1, rounds=[{9: 0}])

    def test_validation_rejects_bad_message(self):
        with pytest.raises(ValueError):
            StaticRoutingSchedule(network=path(3), k=2, rounds=[{0: 2}])

    def test_throughput(self):
        s = star_schedule(4, 8)
        assert s.throughput == 1.0

    def test_empty_schedule_throughput(self):
        s = StaticRoutingSchedule(network=path(2), k=1, rounds=[])
        assert s.throughput == 0.0


class TestStarSchedule:
    def test_length(self):
        s = star_schedule(n_leaves=5, k=7)
        assert s.length == 7

    def test_reference_delivers_everything(self):
        s = star_schedule(n_leaves=5, k=3)
        ref = execute_reference(s)
        for v in s.network.nodes():
            if v != s.network.source:
                assert ref.known[v] == {0, 1, 2}

    def test_reference_delivery_count(self):
        s = star_schedule(n_leaves=5, k=3)
        ref = execute_reference(s)
        total = sum(len(r) for r in ref.deliveries)
        assert total == 5 * 3


class TestPathPipeline:
    def test_no_collisions_in_reference(self):
        """The mod-3 spacing guarantees collision-free pipelining."""
        s = path_pipeline_schedule(10, 6)
        ref = execute_reference(s)
        # every node must end up with every message
        for v in s.network.nodes():
            assert ref.known[v] == set(range(6)), v

    def test_throughput_approaches_one_third(self):
        s = path_pipeline_schedule(8, 64)
        assert 0.30 < s.throughput < 0.34

    def test_broadcasters_mod3_disjoint(self):
        s = path_pipeline_schedule(12, 5)
        for actions in s.rounds:
            residues = {node % 3 for node in actions}
            assert len(residues) <= 1

    def test_silent_until_informed(self):
        """A node scheduled before the message reaches it stays silent and
        the pipeline still completes (schedule indices are aligned)."""
        s = path_pipeline_schedule(5, 2)
        ref = execute_reference(s)
        assert all(ref.known[v] == {0, 1} for v in s.network.nodes())

    def test_rejects_tiny_path(self):
        with pytest.raises(ValueError):
            path_pipeline_schedule(1, 3)
