"""Tests for the Definition 14 adaptive scheduler framework."""

import pytest

from repro.core.faults import FaultConfig
from repro.schedules.adaptive import (
    GreedyFrontierScheduler,
    RoundRobinSourceScheduler,
    run_adaptive_schedule,
)
from repro.topologies.basic import grid, path, star


class TestRoundRobinSource:
    def test_star_faultless_one_round_per_message(self):
        scheduler = RoundRobinSourceScheduler(star(8), k=5)
        outcome = run_adaptive_schedule(
            scheduler, FaultConfig.faultless(), rng=1
        )
        assert outcome.success
        assert outcome.rounds == 5

    def test_star_receiver_faults_lemma15_shape(self):
        scheduler = RoundRobinSourceScheduler(star(64), k=16)
        outcome = run_adaptive_schedule(
            scheduler, FaultConfig.receiver(0.5), rng=2
        )
        assert outcome.success
        # ~log2(64) = 6 rounds per message
        assert outcome.rounds > 3 * 16

    def test_matches_specialized_star_schedule(self):
        """The framework reproduces the hand-written Lemma 15 runner."""
        from repro.algorithms.multi.star import star_adaptive_routing

        framework, direct = [], []
        for seed in range(5):
            scheduler = RoundRobinSourceScheduler(star(32), k=8)
            framework.append(
                run_adaptive_schedule(
                    scheduler, FaultConfig.receiver(0.5), rng=seed
                ).rounds
            )
            direct.append(star_adaptive_routing(32, 8, 0.5, rng=seed).rounds)
        # same distribution: means within 30%
        f, d = sum(framework) / 5, sum(direct) / 5
        assert abs(f - d) / d < 0.3

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            RoundRobinSourceScheduler(star(4), k=0)


class TestGreedyFrontier:
    def test_path_completes(self):
        scheduler = GreedyFrontierScheduler(path(12), k=3)
        outcome = run_adaptive_schedule(
            scheduler, FaultConfig.receiver(0.3), rng=3
        )
        assert outcome.success

    def test_grid_completes(self):
        scheduler = GreedyFrontierScheduler(grid(4, 4), k=3)
        outcome = run_adaptive_schedule(
            scheduler, FaultConfig.receiver(0.3), rng=4
        )
        assert outcome.success

    def test_sender_faults(self):
        scheduler = GreedyFrontierScheduler(path(10), k=2)
        outcome = run_adaptive_schedule(
            scheduler, FaultConfig.sender(0.3), rng=5
        )
        assert outcome.success

    def test_beats_single_broadcaster_on_path(self):
        """Using the whole frontier must beat the source-only baseline on
        a multi-hop topology (the source alone can't even reach hop 2)."""
        greedy = run_adaptive_schedule(
            GreedyFrontierScheduler(path(10), k=2),
            FaultConfig.faultless(),
            rng=6,
        )
        assert greedy.success
        # source-only cannot complete on a path: non-neighbors never hear it
        baseline = run_adaptive_schedule(
            RoundRobinSourceScheduler(path(10), k=2),
            FaultConfig.faultless(),
            rng=6,
            max_rounds=500,
        )
        assert not baseline.success


class TestExecutor:
    def test_budget_reported_on_failure(self):
        scheduler = GreedyFrontierScheduler(path(16), k=4)
        outcome = run_adaptive_schedule(
            scheduler, FaultConfig.receiver(0.5), rng=7, max_rounds=3
        )
        assert not outcome.success
        assert outcome.rounds == 3
        assert outcome.completed_nodes < outcome.total_nodes

    def test_silences_nodes_without_the_message(self):
        """A scheduler demanding impossible broadcasts must not crash nor
        fabricate deliveries."""

        class Overeager(RoundRobinSourceScheduler):
            def decide(self, round_index, knowledge, rng):
                # ask a far node to broadcast a message it can't have yet
                return {self.network.n - 1: 0}

        outcome = run_adaptive_schedule(
            Overeager(path(6), k=1),
            FaultConfig.faultless(),
            rng=8,
            max_rounds=20,
        )
        assert not outcome.success
        assert outcome.counters.broadcasts == 0

    def test_outcome_metrics(self):
        scheduler = RoundRobinSourceScheduler(star(4), k=2)
        outcome = run_adaptive_schedule(
            scheduler, FaultConfig.faultless(), rng=9
        )
        assert outcome.rounds_per_message == outcome.rounds / 2
