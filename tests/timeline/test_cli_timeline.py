"""``repro timeline show|curve|diff`` and its friendly error paths."""

import json

import pytest

from repro.cli import main
from repro.runner import Scenario, run
from repro.store import ResultStore
from repro.timeline import TimelineConfig


@pytest.fixture(scope="module")
def seeded(tmp_path_factory):
    """A store with two recorded runs, plus one timeline JSON file."""
    root = tmp_path_factory.mktemp("timeline-cli")
    path = str(root / "results.db")
    keys = []
    with ResultStore(path) as store:
        for seed in (3, 4):
            report = run(
                Scenario(
                    algorithm="decay",
                    topology="gnp",
                    topology_params={"n": 24},
                    seed=seed,
                    timeline=TimelineConfig(every=1),
                )
            )
            store.put_many([report])
            keys.append(report.cache_key)
        file_path = str(root / "timeline.json")
        with open(file_path, "w", encoding="utf-8") as handle:
            handle.write(store.get_timeline_json(keys[0]))
    return path, keys, file_path


class TestShowAndCurve:
    def test_show_from_store_key(self, capsys, seeded):
        path, keys, _ = seeded
        assert main(["timeline", "show", path, "--key", keys[0]]) == 0
        out = capsys.readouterr().out
        assert "informed" in out and "loss_fraction" in out

    def test_show_json_from_file(self, capsys, seeded):
        _, _, file_path = seeded
        assert main(["timeline", "show", file_path, "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n"] == 24
        assert summary["informed"] == 24

    def test_curve_renders_per_bucket_rows(self, capsys, seeded):
        _, _, file_path = seeded
        assert main(["timeline", "curve", file_path, "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "fraction" in out

    def test_curve_markdown(self, capsys, seeded):
        _, _, file_path = seeded
        assert (
            main(["timeline", "curve", file_path, "--format", "markdown"])
            == 0
        )
        assert capsys.readouterr().out.lstrip().startswith("|")


class TestDiff:
    def test_one_store_two_keys(self, capsys, seeded):
        path, keys, _ = seeded
        assert (
            main(
                [
                    "timeline", "diff", path,
                    "--key-a", keys[0], "--key-b", keys[1],
                ]
            )
            == 0
        )
        assert "first diverging round" in capsys.readouterr().out

    def test_identical_keys_report_zero_divergence(self, capsys, seeded):
        path, keys, _ = seeded
        assert (
            main(
                [
                    "timeline", "diff", path,
                    "--key-a", keys[0], "--key-b", keys[0],
                ]
            )
            == 0
        )
        assert "zero divergence" in capsys.readouterr().out

    def test_json_format(self, capsys, seeded):
        path, keys, _ = seeded
        assert (
            main(
                [
                    "timeline", "diff", path, "--format", "json",
                    "--key-a", keys[0], "--key-b", keys[1],
                ]
            )
            == 0
        )
        body = json.loads(capsys.readouterr().out)
        assert body["identical"] is False
        assert isinstance(body["first_diverging_round"], int)


class TestFriendlyErrors:
    def test_missing_timeline_file(self, capsys, tmp_path):
        assert main(["timeline", "show", str(tmp_path / "nope.json")]) == 2
        assert "no timeline file" in capsys.readouterr().err

    def test_malformed_timeline_file(self, capsys, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert main(["timeline", "show", path]) == 2
        assert "cannot parse timeline" in capsys.readouterr().err

    def test_missing_store(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.db")
        assert main(["timeline", "show", missing, "--key", "abc"]) == 2
        assert "no store at" in capsys.readouterr().err

    def test_unknown_key(self, capsys, seeded):
        path, _, _ = seeded
        assert main(["timeline", "show", path, "--key", "0" * 64]) == 2
        assert "no timeline stored under" in capsys.readouterr().err

    def test_diff_needs_two_sources(self, capsys, seeded):
        path, _, _ = seeded
        assert main(["timeline", "diff", path]) == 2
        assert "two sources" in capsys.readouterr().err

    def test_diff_mismatched_widths(self, capsys, seeded, tmp_path):
        _, _, file_path = seeded
        report = run(
            Scenario(
                algorithm="decay",
                topology="gnp",
                topology_params={"n": 24},
                seed=3,
                timeline=TimelineConfig(every=2),
            )
        )
        from repro.timeline import Timeline

        coarse = str(tmp_path / "coarse.json")
        with open(coarse, "w", encoding="utf-8") as handle:
            handle.write(Timeline.from_dict(report.timeline).to_json())
        assert main(["timeline", "diff", file_path, coarse]) == 2
        assert "bucket widths" in capsys.readouterr().err


class TestTraceErrors:
    def test_missing_trace_file(self, capsys, tmp_path):
        assert main(["trace", "show", str(tmp_path / "nope.jsonl")]) == 2
        assert "no trace file" in capsys.readouterr().err

    def test_malformed_trace_file(self, capsys, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json\n")
        assert main(["trace", "show", path]) == 2
        assert "cannot parse trace file" in capsys.readouterr().err
