"""Timeline artifact: canonical bytes, round-trips, and the reservoir."""

import json

import pytest

from repro.runner import Scenario, run
from repro.timeline import TIMELINE_SCHEMA, Timeline, TimelineConfig


def _timeline(seed=3, every=1, node_detail=4096, n=24):
    report = run(
        Scenario(
            algorithm="decay",
            topology="gnp",
            topology_params={"n": n},
            seed=seed,
            timeline=TimelineConfig(every=every, node_detail=node_detail),
        )
    )
    assert report.timeline is not None
    return Timeline.from_dict(report.timeline)


class TestCanonicalForm:
    def test_dict_json_round_trip(self):
        timeline = _timeline()
        assert Timeline.from_dict(timeline.to_dict()) == timeline
        assert Timeline.from_json(timeline.to_json()) == timeline

    def test_equal_runs_render_byte_identical(self):
        a, b = _timeline(seed=5), _timeline(seed=5)
        assert a.to_json() == b.to_json()
        assert a.cache_key() == b.cache_key()

    def test_json_is_compact_and_sorted(self):
        timeline = _timeline()
        text = timeline.to_json()
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )
        body = json.loads(text)
        assert body["schema"] == TIMELINE_SCHEMA
        assert "version" in body

    def test_different_seeds_get_different_keys(self):
        assert _timeline(seed=1).cache_key() != _timeline(seed=2).cache_key()

    def test_unsupported_schema_is_rejected(self):
        data = _timeline().to_dict()
        data["schema"] = TIMELINE_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            Timeline.from_dict(data)

    def test_missing_columns_are_rejected(self):
        data = _timeline().to_dict()
        del data["columns"]["collisions"]
        with pytest.raises(ValueError, match="missing columns"):
            Timeline.from_dict(data)


class TestNodeDetail:
    def test_small_runs_keep_full_per_node_detail(self):
        timeline = _timeline(node_detail=4096, n=24)
        assert set(timeline.first_delivery) == {"rounds"}
        assert len(timeline.first_delivery["rounds"]) == 24

    def test_reservoir_caps_per_node_detail_deterministically(self):
        a = _timeline(seed=1, node_detail=8, n=24)
        b = _timeline(seed=2, node_detail=8, n=24)
        assert set(a.first_delivery) == {"nodes", "rounds"}
        assert len(a.first_delivery["nodes"]) == 8
        assert len(a.first_delivery["rounds"]) == 8
        # same (n, node_detail) -> same sampled nodes across runs, so
        # capped timelines stay node-for-node diffable
        assert a.first_delivery["nodes"] == b.first_delivery["nodes"]
        assert a.first_delivery["nodes"] == tuple(sorted(set(a.first_delivery["nodes"])))

    def test_config_is_recovered_up_to_the_applied_cap(self):
        capped = _timeline(node_detail=8, n=24)
        assert capped.config() == TimelineConfig(every=1, node_detail=8)
        uncapped = _timeline(every=2, node_detail=4096, n=24)
        recovered = uncapped.config()
        assert recovered.every == 2
        assert recovered.node_detail >= 24


class TestDerivedViews:
    def test_buckets_and_informed_final(self):
        timeline = _timeline(every=4)
        assert timeline.buckets == len(timeline.columns["round_start"])
        assert timeline.buckets == -(-timeline.rounds // 4)
        assert timeline.informed_final == timeline.columns["informed"][-1]

    def test_every_k_preserves_totals(self):
        fine = _timeline(seed=9, every=1)
        coarse = _timeline(seed=9, every=3)
        assert fine.rounds == coarse.rounds
        for name in ("broadcasts", "deliveries", "collisions", "new_informed"):
            assert sum(fine.columns[name]) == sum(coarse.columns[name]), name
        assert fine.informed_final == coarse.informed_final
        # per-node detail is bucket-independent
        assert fine.first_delivery == coarse.first_delivery
