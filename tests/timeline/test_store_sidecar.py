"""Store persistence: timeline sidecars ride along with their reports."""

import json

import pytest

from repro.runner import Scenario, run
from repro.store import ResultStore
from repro.timeline import TimelineConfig
from repro.timeline.analyze import aggregate_timelines


def _report(seed=3, algorithm="decay", n=24, timeline=True):
    return run(
        Scenario(
            algorithm=algorithm,
            topology="gnp",
            topology_params={"n": n},
            seed=seed,
            timeline=TimelineConfig(every=1) if timeline else None,
        )
    )


@pytest.fixture(params=["single", "sharded"])
def store(request, tmp_path):
    if request.param == "single":
        path = str(tmp_path / "results.db")
    else:
        path = str(tmp_path / "farm") + "?shards=4"
    with ResultStore(path) as opened:
        yield opened


class TestSidecarRoundTrip:
    def test_put_get_reattaches_the_timeline(self, store):
        report = _report()
        assert store.put_many([report]) == 1
        cached = store.get(report.cache_key)
        assert cached.timeline == report.timeline
        assert cached.to_json(canonical=True) == report.to_json(canonical=True)

    def test_get_timeline_returns_the_artifact(self, store):
        report = _report()
        store.put_many([report])
        timeline = store.get_timeline(report.cache_key)
        assert timeline is not None
        assert timeline.rounds == report.rounds
        assert json.loads(store.get_timeline_json(report.cache_key)) == (
            report.timeline
        )

    def test_missing_keys_return_none(self, store):
        assert store.get_timeline("0" * 64) is None
        assert store.get_timeline_json("0" * 64) is None

    def test_duplicate_offers_are_absorbed(self, store):
        report = _report()
        store.put_many([report])
        store.put_many([report])
        assert store.timeline_count() == 1

    def test_timeline_less_reports_store_no_sidecar(self, store):
        report = _report(timeline=False)
        store.put_many([report])
        assert store.timeline_count() == 0
        assert store.get(report.cache_key).timeline is None

    def test_stats_count_sidecars(self, store):
        store.put_many([_report(seed=1), _report(seed=2, timeline=False)])
        stats = store.stats()
        assert stats["reports"] == 2
        assert stats["timelines"] == 1


class TestReuseThroughTheRunner:
    def test_cache_hits_return_the_recorded_timeline(self, tmp_path):
        from repro.runner import run_batch

        scenario = Scenario(
            algorithm="decay",
            topology="gnp",
            topology_params={"n": 24},
            seed=3,
            timeline=TimelineConfig(every=1),
        )
        with ResultStore(str(tmp_path / "reuse.db")) as store:
            first = run_batch([scenario], store=store)[0]
            again = run_batch([scenario], store=store)[0]
        assert first.timeline is not None
        assert again.timeline == first.timeline


class TestAggregate:
    def test_groups_stored_timelines_and_skips_bare_reports(self, tmp_path):
        with ResultStore(str(tmp_path / "agg.db")) as store:
            store.put_many(
                [
                    _report(seed=1),
                    _report(seed=2),
                    _report(seed=1, algorithm="fastbc", n=16),
                    _report(seed=9, timeline=False),
                ]
            )
            report = aggregate_timelines(store, group_by=("algorithm",))
        assert report.kind == "timeline_aggregate"
        assert report.summary["timelines"] == 3
        assert report.summary["skipped"] == 1
        by_algorithm = {row["algorithm"]: row for row in report.rows}
        assert by_algorithm["decay"]["runs"] == 2
        assert by_algorithm["fastbc"]["runs"] == 1
        assert by_algorithm["decay"]["rounds_mean"] is not None
        # canonical: an AnalysisReport renders deterministically
        assert json.loads(report.to_json())["kind"] == "timeline_aggregate"

    def test_rejects_unknown_metrics_and_columns(self, tmp_path):
        with ResultStore(str(tmp_path / "agg2.db")) as store:
            with pytest.raises(ValueError, match="unknown timeline metric"):
                aggregate_timelines(store, metrics=("nope",))
            with pytest.raises(ValueError, match="unknown group_by column"):
                aggregate_timelines(store, group_by=("nope",))
