"""Run-divergence diffing: identical runs align, different seeds split."""

import pytest

from repro.runner import Scenario, run
from repro.timeline import Timeline, TimelineConfig, diff_timelines


def _timeline(seed, every=1, n=24, algorithm="decay"):
    report = run(
        Scenario(
            algorithm=algorithm,
            topology="gnp",
            topology_params={"n": n},
            seed=seed,
            timeline=TimelineConfig(every=every),
        )
    )
    return Timeline.from_dict(report.timeline)


class TestIdenticalRuns:
    def test_same_scenario_reports_zero_divergence(self):
        diff = diff_timelines(_timeline(seed=3), _timeline(seed=3))
        assert diff.identical is True
        assert diff.first_diverging_round is None
        for report in diff.columns.values():
            assert report["first_diverging_round"] is None
            assert report["diverging_buckets"] == 0
            assert report["max_abs_delta"] == 0
        assert diff.first_delivery["comparable"] is True
        assert diff.first_delivery["differing_nodes"] == 0
        assert "zero divergence" in diff.to_table().title

    def test_json_rendering_round_trips(self):
        import json

        diff = diff_timelines(_timeline(seed=3), _timeline(seed=3))
        assert json.loads(diff.to_json())["identical"] is True


class TestDivergingRuns:
    def test_different_seeds_localize_the_first_diverging_round(self):
        a, b = _timeline(seed=3), _timeline(seed=4)
        diff = diff_timelines(a, b)
        assert diff.identical is False
        assert isinstance(diff.first_diverging_round, int)
        assert 0 <= diff.first_diverging_round < max(a.rounds, b.rounds)
        # the overall first split is the min over per-column splits
        firsts = [
            report["first_diverging_round"]
            for report in diff.columns.values()
            if report["first_diverging_round"] is not None
        ]
        assert diff.first_diverging_round == min(firsts)
        assert f"{diff.first_diverging_round}" in diff.to_table().title

    def test_bucketed_diff_reports_bucket_start_rounds(self):
        diff = diff_timelines(
            _timeline(seed=3, every=4), _timeline(seed=4, every=4)
        )
        assert diff.every == 4
        if diff.first_diverging_round is not None:
            assert diff.first_diverging_round % 4 == 0

    def test_different_sizes_are_diffable_but_not_node_comparable(self):
        diff = diff_timelines(_timeline(seed=3, n=24), _timeline(seed=3, n=16))
        assert diff.identical is False
        assert diff.first_delivery["comparable"] is False


class TestGuards:
    def test_mismatched_bucket_widths_are_rejected(self):
        with pytest.raises(ValueError, match="bucket widths"):
            diff_timelines(_timeline(seed=3), _timeline(seed=3, every=2))
