"""Recorder semantics: bucketing, deltas, growth, and the disabled path."""

import numpy as np
import pytest

from repro.core.trace import ChannelCounters
from repro.timeline import NULL_TIMELINE, TimelineConfig, TimelineRecorder
from repro.timeline.recorder import DATA_COLUMNS


class _Delivery:
    """The recorder only reads ``.receiver``."""

    def __init__(self, receiver: int) -> None:
        self.receiver = receiver


def _drive(recorder, rounds, deliveries_per_round=0, n=8):
    """Feed synthetic rounds: one broadcast + optional deliveries each."""
    counters = ChannelCounters()
    for round_index in range(rounds):
        counters.rounds += 1
        counters.broadcasts += 1
        deliveries = [
            _Delivery((round_index + k) % n)
            for k in range(deliveries_per_round)
        ]
        counters.deliveries += len(deliveries)
        recorder.on_round(round_index, counters, deliveries)
    recorder.finish()


class TestDisabledPath:
    def test_null_timeline_is_disabled_and_inert(self):
        assert NULL_TIMELINE.enabled is False
        NULL_TIMELINE.on_round(0, ChannelCounters(), [])
        NULL_TIMELINE.note_innovative()
        NULL_TIMELINE.mark_informed(3)

    def test_recorder_reports_enabled(self):
        recorder = TimelineRecorder(4, TimelineConfig())
        assert recorder.enabled is True


class TestBucketing:
    def test_per_round_rows_are_counter_deltas(self):
        recorder = TimelineRecorder(8, TimelineConfig(every=1))
        _drive(recorder, rounds=5, deliveries_per_round=2)
        rows = recorder.rows()
        assert rows.shape == (5, len(DATA_COLUMNS))
        assert list(rows[:, DATA_COLUMNS.index("round_start")]) == [0, 1, 2, 3, 4]
        # one broadcast and two deliveries per round, as deltas not totals
        assert set(rows[:, DATA_COLUMNS.index("broadcasts")]) == {1}
        assert set(rows[:, DATA_COLUMNS.index("deliveries")]) == {2}

    def test_every_k_buckets_sum_the_same_totals(self):
        fine = TimelineRecorder(8, TimelineConfig(every=1))
        coarse = TimelineRecorder(8, TimelineConfig(every=3))
        _drive(fine, rounds=7, deliveries_per_round=2)
        _drive(coarse, rounds=7, deliveries_per_round=2)
        assert len(coarse) == 3  # rounds 0-2, 3-5, 6
        assert list(
            coarse.rows()[:, DATA_COLUMNS.index("round_start")]
        ) == [0, 3, 6]
        for name in ("broadcasts", "deliveries", "new_informed"):
            index = DATA_COLUMNS.index(name)
            assert (
                coarse.rows()[:, index].sum() == fine.rows()[:, index].sum()
            ), name

    def test_informed_column_is_cumulative(self):
        recorder = TimelineRecorder(8, TimelineConfig(every=1))
        _drive(recorder, rounds=4, deliveries_per_round=2)
        informed = recorder.rows()[:, DATA_COLUMNS.index("informed")]
        assert list(informed) == sorted(informed)
        assert recorder.informed == informed[-1]

    def test_mark_informed_excludes_seeded_nodes_from_new_informed(self):
        recorder = TimelineRecorder(8, TimelineConfig(every=1))
        recorder.mark_informed(0)
        recorder.mark_informed(0)  # idempotent
        assert recorder.informed == 1
        counters = ChannelCounters()
        counters.rounds += 1
        counters.broadcasts += 1
        counters.deliveries += 2
        recorder.on_round(0, counters, [_Delivery(0), _Delivery(5)])
        recorder.finish()
        row = recorder.rows()[0]
        assert row[DATA_COLUMNS.index("new_informed")] == 1  # node 5 only
        assert row[DATA_COLUMNS.index("informed")] == 2

    def test_first_delivery_records_the_first_round_only(self):
        recorder = TimelineRecorder(8, TimelineConfig(every=1))
        _drive(recorder, rounds=3, deliveries_per_round=1)
        # round r delivers to node r % 8, so node 1 first hears at round 1
        assert recorder.first_delivery[0] == 0
        assert recorder.first_delivery[1] == 1
        assert recorder.first_delivery[5] == -1

    def test_innovative_lands_in_the_open_bucket(self):
        recorder = TimelineRecorder(8, TimelineConfig(every=2))
        counters = ChannelCounters()
        for round_index in range(4):
            counters.rounds += 1
            counters.broadcasts += 1
            recorder.on_round(round_index, counters, [])
            if round_index == 3:
                # arrives after the epilogue, like Simulator.step dispatch
                recorder.note_innovative(2)
        recorder.finish()
        innovative = recorder.rows()[:, DATA_COLUMNS.index("innovative")]
        assert list(innovative) == [0, 2]


class TestGrowth:
    def test_rows_grow_past_initial_capacity(self):
        recorder = TimelineRecorder(4, TimelineConfig(every=1))
        _drive(recorder, rounds=600)
        assert len(recorder) == 600
        rows = recorder.rows()
        assert list(rows[:, 0]) == list(range(600))
        assert rows.dtype == np.int64

    def test_finish_is_idempotent(self):
        recorder = TimelineRecorder(4, TimelineConfig(every=4))
        _drive(recorder, rounds=2)
        length = len(recorder)
        recorder.finish()
        recorder.finish()
        assert len(recorder) == length


class TestConfig:
    def test_defaults_round_trip(self):
        config = TimelineConfig()
        assert TimelineConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize("every", [0, -1, 1.5, True])
    def test_rejects_bad_every(self, every):
        with pytest.raises((ValueError, TypeError)):
            TimelineConfig(every=every)

    @pytest.mark.parametrize("detail", [0, -3, "many", False])
    def test_rejects_bad_node_detail(self, detail):
        with pytest.raises((ValueError, TypeError)):
            TimelineConfig(node_detail=detail)

    def test_recorder_rejects_empty_network(self):
        with pytest.raises(ValueError):
            TimelineRecorder(0, TimelineConfig())
