"""Recording is an observer: it never changes what the run reports.

The determinism contract says the canonical report is a pure function of
the scenario. Opting into the flight recorder changes the *scenario*
(the config participates in the cache key) but must not change anything
the simulation computed — same rounds, counters, extras, byte for byte
once the scenario's own ``timeline`` entry is set aside.
"""

import json

from repro.core.faults import AdversaryConfig, FaultConfig
from repro.runner import RunReport, Scenario, run
from repro.timeline import TimelineConfig

_VARIANTS = [
    dict(algorithm="decay", topology="gnp", topology_params={"n": 24}, seed=3),
    dict(
        algorithm="fastbc",
        topology="path",
        topology_params={"n": 16},
        faults=FaultConfig.receiver(0.3),
        seed=7,
    ),
    dict(
        algorithm="rlnc_decay",
        topology="path",
        topology_params={"n": 12},
        params={"k": 2},
        adversary=AdversaryConfig(
            "budgeted_jammer",
            {"per_round": 1, "budget": 24, "policy": "frontier"},
        ),
        seed=5,
    ),
]


def test_recording_leaves_the_simulated_outcome_unchanged():
    for fields in _VARIANTS:
        plain = run(Scenario(**fields))
        recorded = run(
            Scenario(**fields, timeline=TimelineConfig(every=1))
        )
        a = json.loads(plain.to_json(canonical=True))
        b = json.loads(recorded.to_json(canonical=True))
        # the only canonical difference is the scenario's own opt-in
        assert "timeline" not in a["scenario"]
        assert b["scenario"].pop("timeline") == {"every": 1, "node_detail": 4096}
        assert a.pop("cache_key") != b.pop("cache_key")
        assert a == b, fields


def test_timeline_stays_outside_the_canonical_bytes():
    report = run(
        Scenario(
            algorithm="decay",
            topology="gnp",
            topology_params={"n": 24},
            seed=3,
            timeline=TimelineConfig(),
        )
    )
    assert report.timeline is not None
    canonical = json.loads(report.to_json(canonical=True))
    assert "timeline" not in canonical
    full = report.to_dict(include_timing=True)
    assert full["timeline"] == report.timeline


def test_report_round_trip_preserves_the_attachment():
    report = run(
        Scenario(
            algorithm="decay",
            topology="gnp",
            topology_params={"n": 24},
            seed=4,
            timeline=TimelineConfig(every=2),
        )
    )
    revived = RunReport.from_dict(report.to_dict(include_timing=True))
    assert revived.timeline == report.timeline
    assert revived.to_json(canonical=True) == report.to_json(canonical=True)


def test_scenario_round_trip_and_cache_key_cover_the_config():
    base = dict(algorithm="decay", topology="path", topology_params={"n": 8})
    plain = Scenario(**base)
    recorded = Scenario(**base, timeline=TimelineConfig(every=5))
    assert Scenario.from_dict(recorded.to_dict()) == recorded
    assert "timeline" not in plain.to_dict()
    assert plain.cache_key() != recorded.cache_key()
    # a different downsampling is a different scenario
    assert (
        Scenario(**base, timeline=TimelineConfig(every=1)).cache_key()
        != recorded.cache_key()
    )


def test_non_channel_algorithms_reject_the_config():
    import pytest

    with pytest.raises(ValueError, match="cannot record a timeline"):
        Scenario(
            algorithm="star_routing",
            topology="star",
            topology_params={"n": 8},
            timeline=TimelineConfig(),
        )
