"""Timelines are kernel-independent: vectorized == scalar, byte for byte.

Extends the channel-equivalence property tests to the flight recorder:
for sampled (algorithm, topology, faults/adversary, seed) configurations
the timeline recorded with the vectorized kernel must render exactly the
bytes the scalar reference kernel produces. The recorder computes every
column as a ChannelCounters delta — counters both kernels maintain
identically — so any divergence here is a kernel bug, not noise.
"""

import pytest

from repro.core.engine import Channel
from repro.core.faults import AdversaryConfig, FaultConfig
from repro.runner import Scenario, run
from repro.timeline import TimelineConfig

_CONFIGS = [
    Scenario(
        algorithm="decay",
        topology="gnp",
        topology_params={"n": 24},
        seed=3,
        timeline=TimelineConfig(every=1),
    ),
    Scenario(
        algorithm="decay",
        topology="path",
        topology_params={"n": 16},
        faults=FaultConfig.receiver(0.3),
        seed=7,
        timeline=TimelineConfig(every=2),
    ),
    Scenario(
        algorithm="fastbc",
        topology="star",
        topology_params={"n": 12},
        faults=FaultConfig.sender(0.2),
        seed=11,
        timeline=TimelineConfig(every=1),
    ),
    Scenario(
        algorithm="decay",
        topology="path",
        topology_params={"n": 20},
        adversary=AdversaryConfig(
            "budgeted_jammer",
            {"per_round": 1, "budget": 40, "policy": "frontier"},
        ),
        seed=5,
        timeline=TimelineConfig(every=1),
    ),
    Scenario(
        algorithm="rlnc_decay",
        topology="gnp",
        topology_params={"n": 16},
        params={"k": 2},
        adversary=AdversaryConfig(
            "gilbert_elliott",
            {"p_bad": 0.7, "p_good": 0.05, "p_enter": 0.1, "p_exit": 0.4},
        ),
        seed=13,
        timeline=TimelineConfig(every=1),
    ),
    Scenario(
        algorithm="rlnc_decay",
        topology="grid",
        topology_params={"n": 16},
        params={"k": 2},
        faults=FaultConfig.receiver(0.2),
        seed=17,
        timeline=TimelineConfig(every=3, node_detail=6),
    ),
]


def _run_forced(scenario, monkeypatch, threshold):
    """Run with the auto dispatch pinned to one kernel via its threshold."""
    monkeypatch.setattr(Channel, "VECTORIZE_MIN_WORK", threshold)
    return run(scenario)


@pytest.mark.parametrize(
    "scenario", _CONFIGS, ids=lambda s: f"{s.algorithm}-{s.topology}-s{s.seed}"
)
def test_vectorized_and_scalar_timelines_are_byte_identical(
    scenario, monkeypatch
):
    vectorized = _run_forced(scenario, monkeypatch, 0)
    scalar = _run_forced(scenario, monkeypatch, 10**9)
    assert vectorized.timeline is not None
    assert scalar.timeline is not None
    assert vectorized.timeline == scalar.timeline
    # and the whole canonical report agrees, timeline aside
    assert vectorized.to_json(canonical=True) == scalar.to_json(canonical=True)
