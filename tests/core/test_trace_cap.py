"""TraceRecorder overflow is accounted, not silent."""

import warnings

import pytest

from repro.core.trace import TraceRecorder


def test_below_the_cap_nothing_is_dropped():
    recorder = TraceRecorder(enabled=True, max_events=10)
    for round_index in range(10):
        recorder.record(round_index, "broadcast", 0)
    assert len(recorder) == 10
    assert recorder.dropped == 0
    assert recorder.as_dict() == {
        "enabled": True,
        "max_events": 10,
        "recorded": 10,
        "dropped": 0,
        "sample": 1.0,
        "sampled_out": 0,
    }


def test_overflow_counts_drops_and_warns_once():
    recorder = TraceRecorder(enabled=True, max_events=3)
    with pytest.warns(RuntimeWarning, match="3-event cap"):
        for round_index in range(5):
            recorder.record(round_index, "broadcast", 0)
    # the warning fires exactly once, on the first drop
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        recorder.record(9, "broadcast", 0)
    assert len(recorder) == 3
    assert recorder.dropped == 3
    assert recorder.as_dict()["dropped"] == 3
    # recorded events are untouched by the overflow
    assert [event.round_index for event in recorder.events] == [0, 1, 2]


def test_disabled_recorder_never_drops():
    recorder = TraceRecorder(enabled=False, max_events=1)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        for round_index in range(5):
            recorder.record(round_index, "broadcast", 0)
    assert len(recorder) == 0
    assert recorder.dropped == 0


def _fill(recorder, count):
    for round_index in range(count):
        recorder.record(round_index, "broadcast", 0)


def test_sampling_is_deterministic_across_runs():
    kept_runs = []
    for _ in range(2):
        recorder = TraceRecorder(enabled=True, sample=0.3, sample_seed=7)
        _fill(recorder, 500)
        kept_runs.append([event.round_index for event in recorder.events])
        assert recorder.sampled_out == 500 - len(recorder.events)
    assert kept_runs[0] == kept_runs[1]
    # the coin is roughly fair: 30% +/- a generous tolerance
    assert 80 <= len(kept_runs[0]) <= 220


def test_different_seed_draws_a_different_subset():
    subsets = []
    for sample_seed in (1, 2):
        recorder = TraceRecorder(
            enabled=True, sample=0.5, sample_seed=sample_seed
        )
        _fill(recorder, 400)
        subsets.append([event.round_index for event in recorder.events])
    assert subsets[0] != subsets[1]


def test_sample_zero_keeps_nothing_and_one_keeps_everything():
    none = TraceRecorder(enabled=True, sample=0.0)
    _fill(none, 20)
    assert len(none) == 0
    assert none.sampled_out == 20

    everything = TraceRecorder(enabled=True, sample=1.0)
    _fill(everything, 20)
    assert len(everything) == 20
    assert everything.sampled_out == 0


def test_sampled_out_events_do_not_touch_the_cap():
    recorder = TraceRecorder(
        enabled=True, max_events=1000, sample=0.1, sample_seed=3
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        _fill(recorder, 2000)
    assert recorder.dropped == 0
    assert len(recorder) + recorder.sampled_out == 2000


def test_sample_validation():
    with pytest.raises(ValueError, match="sample must be in"):
        TraceRecorder(sample=1.5)
    with pytest.raises(ValueError, match="sample must be in"):
        TraceRecorder(sample=-0.1)


def test_clear_resets_the_sampling_position():
    recorder = TraceRecorder(enabled=True, sample=0.4, sample_seed=11)
    _fill(recorder, 100)
    first = [event.round_index for event in recorder.events]
    recorder.clear()
    assert recorder.sampled_out == 0
    _fill(recorder, 100)
    # position restarts at zero, so the replay keeps the same subset
    assert [event.round_index for event in recorder.events] == first


def test_clear_resets_the_drop_count():
    recorder = TraceRecorder(enabled=True, max_events=1)
    with pytest.warns(RuntimeWarning):
        recorder.record(0, "broadcast", 0)
        recorder.record(1, "broadcast", 0)
    recorder.clear()
    assert recorder.dropped == 0
    # and the one-time warning re-arms after a clear
    with pytest.warns(RuntimeWarning):
        recorder.record(0, "broadcast", 0)
        recorder.record(1, "broadcast", 0)
