"""TraceRecorder overflow is accounted, not silent."""

import warnings

import pytest

from repro.core.trace import TraceRecorder


def test_below_the_cap_nothing_is_dropped():
    recorder = TraceRecorder(enabled=True, max_events=10)
    for round_index in range(10):
        recorder.record(round_index, "broadcast", 0)
    assert len(recorder) == 10
    assert recorder.dropped == 0
    assert recorder.as_dict() == {
        "enabled": True,
        "max_events": 10,
        "recorded": 10,
        "dropped": 0,
    }


def test_overflow_counts_drops_and_warns_once():
    recorder = TraceRecorder(enabled=True, max_events=3)
    with pytest.warns(RuntimeWarning, match="3-event cap"):
        for round_index in range(5):
            recorder.record(round_index, "broadcast", 0)
    # the warning fires exactly once, on the first drop
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        recorder.record(9, "broadcast", 0)
    assert len(recorder) == 3
    assert recorder.dropped == 3
    assert recorder.as_dict()["dropped"] == 3
    # recorded events are untouched by the overflow
    assert [event.round_index for event in recorder.events] == [0, 1, 2]


def test_disabled_recorder_never_drops():
    recorder = TraceRecorder(enabled=False, max_events=1)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        for round_index in range(5):
            recorder.record(round_index, "broadcast", 0)
    assert len(recorder) == 0
    assert recorder.dropped == 0


def test_clear_resets_the_drop_count():
    recorder = TraceRecorder(enabled=True, max_events=1)
    with pytest.warns(RuntimeWarning):
        recorder.record(0, "broadcast", 0)
        recorder.record(1, "broadcast", 0)
    recorder.clear()
    assert recorder.dropped == 0
    # and the one-time warning re-arms after a clear
    with pytest.warns(RuntimeWarning):
        recorder.record(0, "broadcast", 0)
        recorder.record(1, "broadcast", 0)
