"""Tests for fault model configuration."""

import pytest

from repro.core.faults import FaultConfig, FaultModel


class TestFaultModel:
    def test_members(self):
        assert {m.value for m in FaultModel} == {"none", "sender", "receiver"}

    def test_str(self):
        assert str(FaultModel.SENDER) == "sender"


class TestFaultConfig:
    def test_default_is_faultless(self):
        cfg = FaultConfig()
        assert cfg.is_faultless
        assert cfg.model is FaultModel.NONE

    def test_constructors(self):
        assert FaultConfig.sender(0.3).model is FaultModel.SENDER
        assert FaultConfig.receiver(0.5).model is FaultModel.RECEIVER
        assert FaultConfig.faultless().is_faultless

    def test_p_zero_counts_as_faultless(self):
        assert FaultConfig.sender(0.0).is_faultless
        assert not FaultConfig.sender(0.1).is_faultless

    def test_rejects_p_one(self):
        # the paper requires p in [0, 1): p = 1 would make progress impossible
        with pytest.raises(ValueError):
            FaultConfig.sender(1.0)

    def test_rejects_negative_p(self):
        with pytest.raises(ValueError):
            FaultConfig.receiver(-0.01)

    def test_none_model_requires_zero_p(self):
        with pytest.raises(ValueError):
            FaultConfig(FaultModel.NONE, 0.5)

    def test_frozen(self):
        cfg = FaultConfig.sender(0.2)
        with pytest.raises(AttributeError):
            cfg.p = 0.3  # type: ignore[misc]

    def test_str_rendering(self):
        assert str(FaultConfig.faultless()) == "faultless"
        assert "sender" in str(FaultConfig.sender(0.25))
        assert "0.25" in str(FaultConfig.sender(0.25))
