"""Tests for the channel and simulator: exact collision and fault semantics."""

import networkx as nx
import pytest

from repro.core.engine import Channel, Simulator
from repro.core.errors import SimulationError
from repro.core.faults import FaultConfig
from repro.core.network import RadioNetwork
from repro.core.packets import MessagePacket
from repro.core.protocol import NodeProtocol
from repro.core.trace import TraceRecorder
from repro.util.rng import RandomSource

MSG = MessagePacket(0)


def star(n_leaves: int) -> RadioNetwork:
    return RadioNetwork(nx.star_graph(n_leaves), source=0)


def path(n: int) -> RadioNetwork:
    return RadioNetwork(nx.path_graph(n), source=0)


class TestCollisionSemantics:
    """The heart of the radio model: receive iff exactly one neighbor sends."""

    def test_single_broadcaster_delivers_to_all_neighbors(self):
        channel = Channel(star(4))
        result = channel.transmit({0: MSG})
        receivers = sorted(d.receiver for d in result.deliveries)
        assert receivers == [1, 2, 3, 4]
        assert all(d.sender == 0 and d.packet is MSG for d in result.deliveries)

    def test_two_broadcasters_collide_at_common_neighbor(self):
        # path 0-1-2: both endpoints send; middle hears 2 -> collision
        channel = Channel(path(3))
        result = channel.transmit({0: MSG, 2: MessagePacket(1)})
        assert result.deliveries == []
        assert result.collision_receivers == [1]

    def test_broadcaster_does_not_receive(self):
        # path 0-1: both broadcast; neither receives
        channel = Channel(path(2))
        result = channel.transmit({0: MSG, 1: MSG})
        assert result.deliveries == []
        assert result.collision_receivers == []

    def test_no_broadcasters_nothing_happens(self):
        channel = Channel(path(3))
        result = channel.transmit({})
        assert result.deliveries == []
        assert channel.counters.rounds == 1

    def test_non_neighbor_does_not_receive(self):
        channel = Channel(path(4))
        result = channel.transmit({0: MSG})
        assert [d.receiver for d in result.deliveries] == [1]

    def test_two_disjoint_broadcasts_both_deliver(self):
        # path 0-1-2-3: 0 and 3 send; 1 and 2 each hear exactly one
        channel = Channel(path(4))
        result = channel.transmit({0: MSG, 3: MessagePacket(1)})
        got = {d.receiver: d.sender for d in result.deliveries}
        assert got == {1: 0, 2: 3}

    def test_round_counter_advances(self):
        channel = Channel(path(2))
        for expected in range(3):
            assert channel.round_index == expected
            channel.transmit({})


class TestSenderFaults:
    def test_faulty_sender_silences_all_receivers(self):
        # p close to 1: every transmission is noise
        channel = Channel(star(5), FaultConfig.sender(0.999999), rng=1)
        result = channel.transmit({0: MSG})
        assert result.deliveries == []
        assert result.faulty_senders == [0]
        assert sorted(result.noise_receivers) == [1, 2, 3, 4, 5]

    def test_sender_fault_is_all_or_nothing_per_round(self):
        """A faulty sender delivers to none of its neighbors; a healthy one
        delivers to all listening singleton neighbors."""
        channel = Channel(star(6), FaultConfig.sender(0.5), rng=7)
        for _ in range(50):
            result = channel.transmit({0: MSG})
            n_delivered = len(result.deliveries)
            assert n_delivered in (0, 6)

    def test_empirical_sender_fault_rate(self):
        channel = Channel(path(2), FaultConfig.sender(0.3), rng=3)
        failures = 0
        trials = 4000
        for _ in range(trials):
            result = channel.transmit({0: MSG})
            failures += not result.deliveries
        assert 0.26 < failures / trials < 0.34

    def test_faultless_config_never_faults(self):
        channel = Channel(path(2), FaultConfig.faultless(), rng=3)
        for _ in range(200):
            assert len(channel.transmit({0: MSG}).deliveries) == 1


class TestReceiverFaults:
    def test_receiver_faults_independent_per_receiver(self):
        """Unlike sender faults, receiver faults can split a star's leaves."""
        channel = Channel(star(6), FaultConfig.receiver(0.5), rng=5)
        saw_partial = False
        for _ in range(100):
            result = channel.transmit({0: MSG})
            if 0 < len(result.deliveries) < 6:
                saw_partial = True
                break
        assert saw_partial

    def test_empirical_receiver_fault_rate(self):
        channel = Channel(path(2), FaultConfig.receiver(0.3), rng=11)
        received = 0
        trials = 4000
        for _ in range(trials):
            received += bool(channel.transmit({0: MSG}).deliveries)
        assert 0.66 < received / trials < 0.74

    def test_receiver_fault_not_applied_on_collision(self):
        """Collisions already lose the packet; fault counters must not
        double-count them."""
        channel = Channel(path(3), FaultConfig.receiver(0.9), rng=2)
        for _ in range(100):
            channel.transmit({0: MSG, 2: MSG})
        assert channel.counters.receiver_faults == 0
        assert channel.counters.collisions == 100


class TestCounters:
    def test_counts_accumulate(self):
        channel = Channel(path(3))
        channel.transmit({0: MSG})
        channel.transmit({0: MSG, 2: MSG})
        c = channel.counters
        assert c.rounds == 2
        assert c.broadcasts == 3
        assert c.deliveries == 1  # round 2 collides at node 1
        assert c.collisions == 1

    def test_as_dict(self):
        channel = Channel(path(2))
        channel.transmit({0: MSG})
        d = channel.counters.as_dict()
        assert d["rounds"] == 1 and d["deliveries"] == 1

    def test_str(self):
        assert "rounds=0" in str(Channel(path(2)).counters)


class TestTracing:
    def test_trace_records_events(self):
        trace = TraceRecorder(enabled=True)
        channel = Channel(path(3), trace=trace)
        channel.transmit({0: MSG})
        kinds = {e.kind for e in trace.events}
        assert kinds == {"broadcast", "deliver"}

    def test_trace_disabled_records_nothing(self):
        trace = TraceRecorder(enabled=False)
        channel = Channel(path(3), trace=trace)
        channel.transmit({0: MSG})
        assert len(trace) == 0

    def test_trace_max_events_cap(self):
        trace = TraceRecorder(enabled=True, max_events=1)
        channel = Channel(path(3), trace=trace)
        channel.transmit({0: MSG})
        assert len(trace) == 1

    def test_event_filters(self):
        trace = TraceRecorder(enabled=True)
        channel = Channel(path(3), trace=trace)
        channel.transmit({0: MSG})
        channel.transmit({0: MSG, 2: MSG})
        assert len(trace.events_in_round(0)) == 2
        assert len(trace.events_of_kind("collision")) == 1
        trace.clear()
        assert len(trace) == 0


class _Flooder(NodeProtocol):
    """Test protocol: broadcast every round once informed."""

    def __init__(self, informed: bool = False):
        self.informed = informed
        self.active = informed

    def act(self, round_index):
        return MSG if self.informed else None

    def on_receive(self, round_index, packet, sender):
        self.informed = True
        self.active = True

    def is_done(self):
        return self.informed


class _Silent(NodeProtocol):
    def __init__(self):
        self.received = []
        self.active = False

    def act(self, round_index):  # pragma: no cover - never called while inactive
        return None

    def on_receive(self, round_index, packet, sender):
        self.received.append((round_index, packet, sender))


class TestSimulator:
    def test_protocol_count_validation(self):
        with pytest.raises(SimulationError):
            Simulator(path(3), [_Flooder()])

    def test_flood_on_path(self):
        net = path(4)
        protocols = [_Flooder(informed=(i == 0)) for i in range(4)]
        sim = Simulator(net, protocols)
        rounds = sim.run(max_rounds=100)
        assert sim.all_done()
        # a single flooder chain crosses one hop per round
        assert rounds == 3

    def test_inactive_protocols_are_skipped(self):
        net = path(2)
        flooder, silent = _Flooder(informed=True), _Silent()
        sim = Simulator(net, [flooder, silent])
        sim.step()
        assert silent.received == [(0, MSG, 0)]

    def test_run_respects_budget(self):
        net = path(2)
        # two flooders never finish (both broadcast forever, always collide...
        # actually with 2 nodes both broadcasting, neither receives)
        protocols = [_Flooder(informed=True), _Silent()]
        protocols[0].informed = True
        sim = Simulator(net, protocols)
        executed = sim.run(max_rounds=5, stop=lambda s: False)
        assert executed == 5

    def test_run_stop_predicate(self):
        net = path(3)
        protocols = [_Flooder(informed=(i == 0)) for i in range(3)]
        sim = Simulator(net, protocols)
        sim.run(max_rounds=100, stop=lambda s: s.done_count() >= 2)
        assert sim.done_count() >= 2

    def test_negative_budget_rejected(self):
        sim = Simulator(path(2), [_Flooder(True), _Flooder()])
        with pytest.raises(ValueError):
            sim.run(max_rounds=-1)

    def test_determinism_same_seed(self):
        def run_once(seed):
            net = star(8)
            protocols = [_Flooder(informed=(i == 0)) for i in range(9)]
            sim = Simulator(
                net, protocols, FaultConfig.receiver(0.5), rng=seed
            )
            sim.run(max_rounds=500)
            return sim.round_index

        assert run_once(42) == run_once(42)

    def test_counters_exposed(self):
        sim = Simulator(path(2), [_Flooder(True), _Silent()])
        sim.step()
        assert sim.counters.deliveries == 1
