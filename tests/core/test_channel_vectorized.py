"""Property test: the vectorized channel kernel IS the scalar reference.

Samples random topologies, fault models, probabilities, seeds, and
broadcast sets, and checks that :meth:`Channel.transmit` (vectorized
kernel) and :meth:`Channel.transmit_reference` (scalar kernel) agree
delivery-for-delivery — same deliveries in the same order, same noise and
collision receivers, same faulty senders, same counters. Both kernels
draw fault coins through the same bulk calls, so agreement is exact, not
statistical.
"""

import random

import networkx as nx
import pytest

from repro.core.engine import Channel, Simulator
from repro.core.faults import FaultConfig
from repro.core.network import RadioNetwork
from repro.core.packets import MessagePacket
from repro.core.trace import TraceRecorder
from repro.topologies import basic, random_graphs

PACKET = MessagePacket(0)


def _sample_network(sampler: random.Random, config_index: int) -> RadioNetwork:
    kind = sampler.choice(["gnp", "star", "path", "cycle", "grid", "caterpillar"])
    n = sampler.randint(2, 64)
    if kind == "gnp":
        return random_graphs.gnp(
            max(n, 4), min(1.0, 8.0 / max(n, 4)), rng=config_index
        )
    if kind == "star":
        return basic.star(max(1, n - 1))
    if kind == "cycle":
        return basic.cycle(max(3, n))
    if kind == "grid":
        side = max(2, round(n**0.5))
        return basic.grid(side, side)
    if kind == "caterpillar":
        return basic.caterpillar(max(1, n // 4), 3)
    return basic.path(n)


def _sample_faults(sampler: random.Random) -> FaultConfig:
    p = sampler.uniform(0.01, 0.9)
    return sampler.choice(
        [FaultConfig.faultless(), FaultConfig.sender(p), FaultConfig.receiver(p)]
    )


def _assert_rounds_equal(a, b, context: str) -> None:
    assert a.round_index == b.round_index, context
    assert a.deliveries == b.deliveries, context
    assert a.noise_receivers == b.noise_receivers, context
    assert a.collision_receivers == b.collision_receivers, context
    assert a.faulty_senders == b.faulty_senders, context


class TestKernelEquivalence:
    def test_vectorized_matches_reference_across_sampled_configs(self):
        """Hypothesis-style loop over >= 50 sampled (topology, faults, seed)
        configurations, several rounds each with random broadcast sets."""
        sampler = random.Random(0xC5E)
        for config_index in range(60):
            network = _sample_network(sampler, config_index)
            faults = _sample_faults(sampler)
            seed = sampler.randrange(2**31)
            vectorized = Channel(network, faults, rng=seed, kernel="vectorized")
            reference = Channel(network, faults, rng=seed)
            context = (
                f"config {config_index}: {network.name} n={network.n} "
                f"faults={faults} seed={seed}"
            )
            for _ in range(8):
                count = sampler.randint(0, network.n)
                actions = {
                    v: PACKET for v in sampler.sample(range(network.n), count)
                }
                got = vectorized.transmit(dict(actions))
                want = reference.transmit_reference(dict(actions))
                _assert_rounds_equal(got, want, context)
            assert vectorized.counters.as_dict() == reference.counters.as_dict(), (
                context
            )

    def test_auto_kernel_matches_reference_on_large_rounds(self):
        """Above the dispatch threshold auto takes the vectorized kernel;
        outcomes must still be identical."""
        network = basic.star(800)
        for seed in range(5):
            auto = Channel(network, FaultConfig.receiver(0.3), rng=seed)
            reference = Channel(network, FaultConfig.receiver(0.3), rng=seed)
            for _ in range(4):
                got = auto.transmit({0: PACKET})
                want = reference.transmit_reference({0: PACKET})
                _assert_rounds_equal(got, want, f"seed {seed}")

    def test_tracing_does_not_change_outcomes(self):
        """Tracing reroutes through the scalar kernel; results and the RNG
        stream must be unchanged."""
        network = random_graphs.gnp(48, 0.2, rng=9)
        sampler = random.Random(1)
        traced = Channel(
            network,
            FaultConfig.receiver(0.4),
            rng=5,
            trace=TraceRecorder(enabled=True),
        )
        plain = Channel(network, FaultConfig.receiver(0.4), rng=5)
        for _ in range(10):
            actions = {
                v: PACKET for v in sampler.sample(range(48), sampler.randint(0, 48))
            }
            _assert_rounds_equal(
                traced.transmit(dict(actions)), plain.transmit(dict(actions)), ""
            )

    def test_forced_kernels_validate(self):
        with pytest.raises(ValueError):
            Channel(basic.path(3), kernel="simd")

    def test_simulator_kernel_passthrough(self):
        sim = Simulator(
            basic.path(2),
            [_NullProtocol(), _NullProtocol()],
            kernel="vectorized",
        )
        assert sim.channel.kernel == "vectorized"


class _NullProtocol:
    active = False

    def act(self, round_index):
        return None

    def on_receive(self, round_index, packet, sender):
        pass

    def is_done(self):
        return True


class TestCSRAdjacency:
    def test_csr_matches_neighbor_lists(self):
        for seed in range(10):
            network = random_graphs.gnp(40, 0.15, rng=seed)
            assert network.indptr.shape == (network.n + 1,)
            assert network.indices.shape == (2 * network.edge_count,)
            for v in network.nodes():
                start, stop = int(network.indptr[v]), int(network.indptr[v + 1])
                assert tuple(network.indices[start:stop]) == network.neighbors[v]

    def test_csr_single_node(self):
        network = RadioNetwork(nx.empty_graph(1))
        assert list(network.indptr) == [0, 0]
        assert network.indices.size == 0
