"""Tests for packet types and the noise sentinel."""

import pytest

from repro.core.packets import NOISE, MessagePacket, NoiseType, RSPacket


class TestNoise:
    def test_noise_is_falsy(self):
        assert not NOISE

    def test_noise_is_singleton(self):
        assert NoiseType() is NOISE

    def test_repr(self):
        assert repr(NOISE) == "NOISE"


class TestMessagePacket:
    def test_fields(self):
        p = MessagePacket(3, b"abc")
        assert p.index == 3 and p.payload == b"abc"

    def test_default_payload(self):
        assert MessagePacket(0).payload == b""

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            MessagePacket(-1)

    def test_frozen_and_hashable(self):
        p = MessagePacket(1)
        with pytest.raises(AttributeError):
            p.index = 2  # type: ignore[misc]
        assert hash(MessagePacket(1)) == hash(MessagePacket(1))

    def test_equality(self):
        assert MessagePacket(2, b"x") == MessagePacket(2, b"x")
        assert MessagePacket(2) != MessagePacket(3)


class TestRSPacket:
    def test_fields(self):
        p = RSPacket(7, b"pp")
        assert p.coded_index == 7 and p.payload == b"pp"

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            RSPacket(-2)
