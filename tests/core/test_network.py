"""Tests for the RadioNetwork topology container."""

import networkx as nx
import pytest

from repro.core.errors import TopologyError
from repro.core.network import RadioNetwork


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            RadioNetwork(nx.Graph())

    def test_rejects_directed(self):
        with pytest.raises(TopologyError):
            RadioNetwork(nx.DiGraph([(0, 1)]))

    def test_rejects_disconnected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_node(2)
        with pytest.raises(TopologyError):
            RadioNetwork(g)

    def test_rejects_self_loop(self):
        g = nx.Graph([(0, 1), (1, 1)])
        with pytest.raises(TopologyError):
            RadioNetwork(g)

    def test_rejects_foreign_source(self):
        with pytest.raises(TopologyError):
            RadioNetwork(nx.path_graph(3), source=99)

    def test_single_node_allowed(self):
        g = nx.Graph()
        g.add_node("only")
        net = RadioNetwork(g)
        assert net.n == 1 and net.diameter == 0


class TestIndexing:
    def test_labels_roundtrip(self):
        g = nx.path_graph(["a", "b", "c"])
        net = RadioNetwork(g, source="b")
        for label in "abc":
            assert net.label_of(net.index_of(label)) == label

    def test_source_resolved_to_index(self):
        net = RadioNetwork(nx.path_graph(["a", "b", "c"]), source="c")
        assert net.label_of(net.source) == "c"

    def test_default_source_is_first_node(self):
        net = RadioNetwork(nx.path_graph(["x", "y"]))
        assert net.label_of(net.source) == "x"

    def test_unknown_label_raises(self):
        net = RadioNetwork(nx.path_graph(2))
        with pytest.raises(TopologyError):
            net.index_of("nope")

    def test_neighbors_are_symmetric(self):
        net = RadioNetwork(nx.cycle_graph(5))
        for u in net.nodes():
            for v in net.neighbors[u]:
                assert u in net.neighbors[v]

    def test_degree(self):
        net = RadioNetwork(nx.star_graph(4))  # center + 4 leaves
        degrees = sorted(net.degree(u) for u in net.nodes())
        assert degrees == [1, 1, 1, 1, 4]


class TestMetrics:
    def test_path_levels(self):
        net = RadioNetwork(nx.path_graph(5), source=0)
        assert net.levels() == [0, 1, 2, 3, 4]

    def test_levels_from_middle(self):
        net = RadioNetwork(nx.path_graph(5), source=2)
        assert net.levels() == [2, 1, 0, 1, 2]

    def test_eccentricity_and_diameter(self):
        net = RadioNetwork(nx.path_graph(6), source=0)
        assert net.source_eccentricity == 5
        assert net.diameter == 5

    def test_eccentricity_less_than_diameter_possible(self):
        net = RadioNetwork(nx.path_graph(7), source=3)
        assert net.source_eccentricity == 3
        assert net.diameter == 6

    def test_bfs_layers_partition_nodes(self):
        net = RadioNetwork(nx.random_labeled_tree(20, seed=1), source=0)
        layers = net.bfs_layers()
        flat = [u for layer in layers for u in layer]
        assert sorted(flat) == list(range(20))

    def test_bfs_layers_level_consistency(self):
        net = RadioNetwork(nx.cycle_graph(8), source=0)
        for level, layer in enumerate(net.bfs_layers()):
            for u in layer:
                assert net.levels()[u] == level

    def test_max_degree(self):
        net = RadioNetwork(nx.star_graph(6))
        assert net.max_degree == 6

    def test_edge_count(self):
        net = RadioNetwork(nx.cycle_graph(7))
        assert net.edge_count == 7

    def test_repr_mentions_name(self):
        net = RadioNetwork(nx.path_graph(3), name="demo")
        assert "demo" in repr(net)
