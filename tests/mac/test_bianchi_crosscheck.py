"""The Bianchi cross-check: simulation vs the analytic fixed point.

The channel's saturation behavior on a single collision domain must
match :func:`repro.mac.analytic.bianchi_fixed_point` within a stated
tolerance. The decoupling approximation (constant, state-independent
collision probability) plus Monte-Carlo noise are the only error
sources, so the bar is 5% relative — measured errors on these
configurations sit between 0.02% and ~1.6% (see PERFORMANCE.md).
"""

import pytest

from repro.mac import MacConfig, bianchi_fixed_point
from repro.mac.saturation import saturation_sim

#: the functional tolerance: decoupling approximation + MC noise
REL_TOL = 0.05

#: at least three (n, cw_min) points spanning light to heavy contention
CONFIGS = [(5, 8), (10, 16), (20, 32)]


class TestFixedPointSanity:
    def test_tau_and_p_are_probabilities(self):
        for n, cw_min in CONFIGS:
            pred = bianchi_fixed_point(n, cw_min=cw_min, cw_max=8 * cw_min)
            assert 0.0 < pred.tau < 1.0
            assert 0.0 <= pred.collision_probability < 1.0
            assert 0.0 < pred.throughput <= 1.0
            assert 0.0 < pred.busy_probability < 1.0

    def test_single_node_never_collides(self):
        pred = bianchi_fixed_point(1, cw_min=8, cw_max=64)
        assert pred.collision_probability == pytest.approx(0.0, abs=1e-9)
        # tau is 1 / E[slots per attempt] = 2 / (cw_min + 1)
        assert pred.tau == pytest.approx(2.0 / 9.0, rel=1e-6)

    def test_collision_probability_grows_with_contenders(self):
        ps = [
            bianchi_fixed_point(n, cw_min=8, cw_max=64).collision_probability
            for n in (2, 5, 10, 20, 40)
        ]
        assert ps == sorted(ps)

    def test_wider_window_reduces_collisions(self):
        aggressive = bianchi_fixed_point(10, cw_min=2, cw_max=16)
        patient = bianchi_fixed_point(10, cw_min=32, cw_max=256)
        assert (
            patient.collision_probability < aggressive.collision_probability
        )

    def test_sensing_discounts_throughput(self):
        pred = bianchi_fixed_point(10, cw_min=8, cw_max=64)
        assert pred.slot_throughput(sense=True) < pred.slot_throughput(
            sense=False
        )
        assert pred.slot_throughput(sense=False) == pred.throughput

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError, match="n must be"):
            bianchi_fixed_point(0)


class TestCrossCheck:
    @pytest.mark.parametrize("n,cw_min", CONFIGS)
    def test_simulation_matches_model(self, n, cw_min):
        cw_max = 8 * cw_min
        predicted = bianchi_fixed_point(n, cw_min=cw_min, cw_max=cw_max)
        measured = saturation_sim(
            n, MacConfig(cw_min=cw_min, cw_max=cw_max), slots=15_000, rng=1
        )
        assert measured.collision_probability == pytest.approx(
            predicted.collision_probability, rel=REL_TOL
        )
        assert measured.throughput == pytest.approx(
            predicted.slot_throughput(sense=True), rel=REL_TOL
        )

    def test_sense_off_matches_chain_slot_throughput(self):
        # without carrier sensing, simulated slots ARE chain slots and the
        # undiscounted throughput applies
        predicted = bianchi_fixed_point(10, cw_min=16, cw_max=128)
        measured = saturation_sim(
            10,
            MacConfig(cw_min=16, cw_max=128, sense=False),
            slots=15_000,
            rng=2,
        )
        assert measured.throughput == pytest.approx(
            predicted.slot_throughput(sense=False), rel=REL_TOL
        )

    def test_saturation_sim_validates_slots(self):
        with pytest.raises(ValueError, match="slots"):
            saturation_sim(4, MacConfig(), slots=0)
