"""Contention-channel slot semantics: sensing, backoff, hidden terminals,
capture — checked on small hand-analyzable topologies."""

import pytest

from repro.core.errors import SimulationError
from repro.core.packets import MessagePacket
from repro.mac import ContentionChannel, MacConfig
from repro.mac.channel import MacCounters
from repro.topologies.basic import complete, path, star

PACKET = MessagePacket(0)


def _channel(network, seed=0, **knobs):
    return ContentionChannel(network, rng=seed, config=MacConfig(**knobs))


class TestGate:
    def test_cw_one_transmits_immediately(self):
        # cw_min=1 means every counter draw is 0: a lone offerer reaches
        # the air on its first contending slot
        channel = _channel(path(2), cw_min=1, cw_max=1)
        result = channel.transmit({0: PACKET})
        assert [d.receiver for d in result.deliveries] == [1]
        assert channel.counters.mac_transmissions == 1
        assert channel.counters.mac_tx_success == 1

    def test_counter_counts_down_across_slots(self):
        # one offerer eventually fires; until then it neither transmits
        # nor defers (nothing else is on the air)
        channel = _channel(path(2), seed=3, cw_min=8, cw_max=8)
        slots = 0
        while channel.counters.mac_transmissions == 0:
            channel.transmit({0: PACKET})
            slots += 1
            assert slots <= 8, "counter must fire within cw_min slots"
        assert channel.counters.mac_defers == 0

    def test_sense_defers_after_busy_slot(self):
        # slot 1: node 0 transmits (cw_min=1). Slot 2: both 0 and its
        # neighbor 1 heard that energy, so with sensing on both defer.
        channel = _channel(path(3), cw_min=1, cw_max=1)
        channel.transmit({0: PACKET})
        assert channel.counters.mac_transmissions == 1
        channel.transmit({0: PACKET, 1: PACKET})
        assert channel.counters.mac_defers == 2
        assert channel.counters.mac_transmissions == 1  # unchanged

    def test_sense_off_never_defers(self):
        channel = _channel(path(3), cw_min=1, cw_max=1, sense=False)
        channel.transmit({0: PACKET})
        channel.transmit({0: PACKET, 1: PACKET})
        assert channel.counters.mac_defers == 0

    def test_invalid_offerer_raises(self):
        channel = _channel(path(3))
        with pytest.raises(SimulationError, match="invalid node"):
            channel.transmit({7: PACKET})


class TestHiddenTerminal:
    def test_endpoints_destroy_the_shared_receiver(self):
        # path 0-1-2: with sensing off and a pinned window, both
        # endpoints transmit every slot and receiver 1 loses every slot
        channel = _channel(path(3), cw_min=1, cw_max=1, sense=False)
        for _ in range(6):
            result = channel.transmit({0: PACKET, 2: PACKET})
            assert result.deliveries == []
            assert result.collision_receivers == [1]
        assert channel.counters.mac_defers == 0
        assert channel.counters.mac_tx_collisions == 12
        assert channel.counters.mac_tx_success == 0

    def test_sensing_does_not_save_the_shared_receiver(self):
        # with sensing ON the endpoints still collide whenever they fire:
        # they only ever defer on their OWN previous slot's energy (the
        # silent receiver never transmits), never on each other's —
        # that is exactly the hidden-terminal blind spot
        channel = _channel(path(3), cw_min=1, cw_max=1)
        for _ in range(10):
            result = channel.transmit({0: PACKET, 2: PACKET})
            assert result.deliveries == []
        assert channel.counters.mac_tx_collisions > 0
        assert channel.counters.mac_tx_success == 0
        # self-energy deferral shows up, confirming sensing was active
        assert channel.counters.mac_defers > 0


class TestBackoff:
    def test_stage_escalates_on_failure_and_clamps(self):
        # an isolated node's transmissions can never be delivered, so
        # every one of them fails and escalates the backoff stage until
        # it clamps at the ceiling
        channel = _channel(path(1), cw_min=2, cw_max=8, sense=False)
        max_stage = channel.config.max_stage
        assert max_stage == 2
        for _ in range(40):
            channel.transmit({0: PACKET})
        assert channel._stage[0] == max_stage
        assert channel.counters.mac_tx_success == 0
        assert channel.counters.mac_tx_collisions > max_stage

    def test_success_resets_stage(self):
        channel = _channel(path(2), cw_min=2, cw_max=8, sense=False)
        # pretend prior failures drove node 0 to the window ceiling
        channel._stage[0] = channel.config.max_stage
        channel._backoff[0] = 0
        result = channel.transmit({0: PACKET})
        assert [d.receiver for d in result.deliveries] == [1]
        assert channel.counters.mac_tx_success == 1
        assert channel._stage[0] == 0

    def test_backoff_counter_stays_within_window(self):
        channel = _channel(complete(6), seed=9, cw_min=4, cw_max=16)
        actions = {v: PACKET for v in range(6)}
        for _ in range(60):
            channel.transmit(actions)
            drawn = channel._backoff[channel._backoff >= 0]
            assert (drawn < channel.config.cw_max).all()


class TestCapture:
    def test_capture_ratio_one_rescues_every_collision(self):
        # threshold 1.0: the strongest transmitter always wins, so the
        # hidden-terminal slot delivers instead of collides
        channel = _channel(path(3), cw_min=1, cw_max=1, capture=1.0)
        result = channel.transmit({0: PACKET, 2: PACKET})
        assert len(result.deliveries) == 1
        assert result.deliveries[0].receiver == 1
        assert result.deliveries[0].sender in (0, 2)
        assert channel.counters.mac_captures == 1
        assert channel.counters.collisions == 0

    def test_huge_threshold_behaves_like_no_capture(self):
        channel = _channel(path(3), cw_min=1, cw_max=1, capture=1e9)
        result = channel.transmit({0: PACKET, 2: PACKET})
        assert result.deliveries == []
        assert result.collision_receivers == [1]
        assert channel.counters.mac_captures == 0

    def test_capture_still_counts_winner_success(self):
        channel = _channel(star(4), cw_min=1, cw_max=1, capture=1.0)
        result = channel.transmit({1: PACKET, 2: PACKET})
        # leaves 1 and 2 collide at the hub; capture rescues one of them
        assert len(result.deliveries) == 1
        assert channel.counters.mac_tx_success == 1
        assert channel.counters.mac_tx_collisions == 1


class TestCounters:
    def test_offers_split_into_transmissions_defers_and_countdowns(self):
        channel = _channel(complete(8), seed=2, cw_min=4, cw_max=32)
        actions = {v: PACKET for v in range(8)}
        for _ in range(50):
            channel.transmit(actions)
        c = channel.counters
        assert isinstance(c, MacCounters)
        assert c.mac_offers == 8 * 50
        assert c.mac_transmissions + c.mac_defers <= c.mac_offers
        assert c.mac_tx_success + c.mac_tx_collisions == c.mac_transmissions
        # the base counters describe actual transmissions, not offers
        assert c.broadcasts == c.mac_transmissions

    def test_as_dict_extends_base_counters(self):
        data = _channel(path(2)).counters.as_dict()
        for key in (
            "rounds",
            "deliveries",
            "mac_offers",
            "mac_defers",
            "mac_transmissions",
            "mac_tx_success",
            "mac_tx_collisions",
            "mac_captures",
        ):
            assert key in data
