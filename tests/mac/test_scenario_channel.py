"""Scenario-level channel plumbing: serialization, validation, and the
byte-identity contract for default-channel runs."""

import pytest

from repro.mac.config import MacConfig
from repro.runner import Scenario, expand_grid, run_batch


def _contention(**overrides):
    fields = dict(
        algorithm="decay",
        topology="path",
        topology_params={"n": 8},
        seed=1,
        channel="contention",
        channel_params={"cw_min": 2, "cw_max": 8},
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestSerialization:
    def test_default_channel_emits_no_channel_keys(self):
        # THE byte-identity contract: scenarios on the paper's channel
        # serialize exactly as they did before repro.mac existed, so
        # their cache keys (content addresses) are unchanged
        data = Scenario(
            algorithm="decay", topology="path", topology_params={"n": 8}
        ).to_dict()
        assert "channel" not in data
        assert "channel_params" not in data

    def test_contention_channel_round_trips(self):
        scenario = _contention()
        data = scenario.to_dict()
        assert data["channel"] == "contention"
        assert data["channel_params"] == {"cw_min": 2, "cw_max": 8}
        assert Scenario.from_dict(data) == scenario

    def test_channel_changes_the_cache_key(self):
        plain = Scenario(
            algorithm="decay", topology="path", topology_params={"n": 8}
        )
        assert _contention(seed=0).cache_key() != plain.cache_key()

    def test_channel_params_change_the_cache_key(self):
        assert (
            _contention().cache_key()
            != _contention(channel_params={"cw_min": 4, "cw_max": 8}).cache_key()
        )

    def test_channel_config_accessor(self):
        config = _contention().channel_config()
        assert config == MacConfig(cw_min=2, cw_max=8)
        default = Scenario(algorithm="decay", topology="path")
        assert default.channel_config() is None


class TestValidation:
    def test_unknown_channel_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown channel"):
            _contention(channel="aloha", channel_params={})

    def test_bad_channel_params_rejected_eagerly(self):
        with pytest.raises(ValueError, match="cw_max"):
            _contention(channel_params={"cw_min": 16, "cw_max": 2})

    def test_non_channel_algorithm_rejects_contention(self):
        with pytest.raises(ValueError, match="does not run on the collision"):
            _contention(algorithm="star_routing", topology="star")

    def test_default_channel_rejects_params(self):
        with pytest.raises(ValueError, match="no channel_params"):
            Scenario(
                algorithm="decay",
                topology="path",
                channel="default",
                channel_params={"cw_min": 2},
            )


class TestExecution:
    def test_contention_run_reports_mac_counters(self):
        report = run_batch([_contention()])[0]
        assert report.success
        counters = report.to_dict()["counters"]
        assert counters["mac_offers"] > 0
        assert (
            counters["mac_tx_success"] + counters["mac_tx_collisions"]
            == counters["mac_transmissions"]
        )

    def test_default_run_reports_plain_counters(self):
        report = run_batch(
            [Scenario(algorithm="decay", topology="path", topology_params={"n": 8})]
        )[0]
        assert "mac_offers" not in report.to_dict()["counters"]

    def test_contention_run_is_deterministic(self):
        def canonical():
            report = run_batch([_contention()])[0]
            data = report.to_dict()
            data.pop("wall_time_s")
            return data

        assert canonical() == canonical()

    def test_grid_expansion_covers_channel_fields(self):
        scenarios = expand_grid(
            _contention(),
            seeds=[0, 1],
            grid={
                "channel_params": [
                    {"cw_min": 2, "cw_max": 8},
                    {"cw_min": 8, "cw_max": 8},
                ]
            },
        )
        assert len(scenarios) == 4
        assert {s.channel_params["cw_min"] for s in scenarios} == {2, 8}
        assert all(s.channel == "contention" for s in scenarios)
