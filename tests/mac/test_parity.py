"""Property suite: the vectorized MAC kernel IS the scalar reference.

Mirrors ``tests/core/test_channel_vectorized.py`` for the contention
channel: random topologies, MAC configs, fault models, adversaries, and
offer sets; :meth:`ContentionChannel.transmit` and
:meth:`ContentionChannel.transmit_reference` must agree delivery-for-
delivery and counter-for-counter, because both kernels consume one
identical RNG stream (bulk draws, ascending node order).
"""

import random

from repro.core.faults import AdversaryConfig, FaultConfig
from repro.core.packets import MessagePacket
from repro.mac import ContentionChannel, MacConfig
from repro.topologies import basic, random_graphs

PACKET = MessagePacket(0)


def _sample_network(sampler, config_index):
    kind = sampler.choice(["gnp", "star", "path", "cycle", "grid"])
    n = sampler.randint(2, 48)
    if kind == "gnp":
        return random_graphs.gnp(
            max(n, 4), min(1.0, 8.0 / max(n, 4)), rng=config_index
        )
    if kind == "star":
        return basic.star(max(1, n - 1))
    if kind == "cycle":
        return basic.cycle(max(3, n))
    if kind == "grid":
        side = max(2, round(n**0.5))
        return basic.grid(side, side)
    return basic.path(n)


def _sample_config(sampler):
    cw_min = sampler.choice([1, 2, 4, 8, 16])
    cw_max = cw_min * sampler.choice([1, 2, 8])
    capture = sampler.choice([0.0, 0.0, 1.0, 1.5])
    return MacConfig(
        cw_min=cw_min,
        cw_max=cw_max,
        sense=sampler.random() < 0.7,
        capture=capture,
    )


def _sample_noise(sampler):
    """Either an iid FaultConfig or a stateful adversary — the channel
    forbids passing both (iid subsumes FaultConfig)."""
    p = sampler.uniform(0.01, 0.6)
    choice = sampler.choice(
        ["faultless", "sender", "receiver", "gilbert", "jammer"]
    )
    if choice == "sender":
        return FaultConfig.sender(p), None
    if choice == "receiver":
        return FaultConfig.receiver(p), None
    if choice == "gilbert":
        return FaultConfig.faultless(), AdversaryConfig("gilbert_elliott", {})
    if choice == "jammer":
        return FaultConfig.faultless(), AdversaryConfig(
            "budgeted_jammer", {"budget": 8}
        )
    return FaultConfig.faultless(), None


def _assert_rounds_equal(a, b, context):
    assert a.round_index == b.round_index, context
    assert a.deliveries == b.deliveries, context
    assert a.noise_receivers == b.noise_receivers, context
    assert a.collision_receivers == b.collision_receivers, context
    assert a.faulty_senders == b.faulty_senders, context


class TestMacKernelEquivalence:
    def test_vectorized_matches_reference_across_sampled_configs(self):
        sampler = random.Random(0xAC0FF)
        for config_index in range(40):
            network = _sample_network(sampler, config_index)
            config = _sample_config(sampler)
            faults, adversary = _sample_noise(sampler)
            seed = sampler.randrange(2**31)
            vectorized = ContentionChannel(
                network,
                faults,
                rng=seed,
                kernel="vectorized",
                adversary=adversary,
                config=config,
            )
            reference = ContentionChannel(
                network,
                faults,
                rng=seed,
                kernel="scalar",
                adversary=adversary,
                config=config,
            )
            context = (
                f"config {config_index}: {network.name} n={network.n} "
                f"mac={config} faults={faults} adversary={adversary} "
                f"seed={seed}"
            )
            for _ in range(10):
                count = sampler.randint(0, network.n)
                actions = {
                    v: PACKET for v in sampler.sample(range(network.n), count)
                }
                _assert_rounds_equal(
                    vectorized.transmit(actions),
                    reference.transmit_reference(actions),
                    context,
                )
            assert (
                vectorized.counters.as_dict() == reference.counters.as_dict()
            ), context
            assert (vectorized._backoff == reference._backoff).all(), context
            assert (vectorized._stage == reference._stage).all(), context

    def test_same_seed_runs_are_byte_identical(self):
        def one_run():
            sampler = random.Random(7)
            channel = ContentionChannel(
                basic.grid(5, 5),
                rng=42,
                adversary=AdversaryConfig("gilbert_elliott", {}),
                config=MacConfig(cw_min=2, cw_max=16),
            )
            transcript = []
            for _ in range(30):
                count = sampler.randint(0, 25)
                actions = {v: PACKET for v in sampler.sample(range(25), count)}
                result = channel.transmit(actions)
                transcript.append(
                    (
                        tuple(result.deliveries),
                        tuple(result.collision_receivers),
                        tuple(result.noise_receivers),
                        tuple(result.faulty_senders),
                    )
                )
            return transcript, channel.counters.as_dict()

        assert one_run() == one_run()
