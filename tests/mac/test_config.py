"""MacConfig validation, backoff-window arithmetic, channel registry."""

import pytest

from repro.mac.config import (
    CHANNEL_KINDS,
    MacConfig,
    all_channels,
    make_channel_config,
)


class TestMacConfig:
    def test_defaults(self):
        config = MacConfig()
        assert config.cw_min == 8
        assert config.cw_max == 256
        assert config.sense is True
        assert config.capture == 0.0

    def test_window_doubles_and_clamps(self):
        config = MacConfig(cw_min=4, cw_max=32)
        assert [config.window(s) for s in range(5)] == [4, 8, 16, 32, 32]

    def test_max_stage_counts_doublings_to_ceiling(self):
        assert MacConfig(cw_min=4, cw_max=32).max_stage == 3
        assert MacConfig(cw_min=8, cw_max=8).max_stage == 0
        # non-power-of-two ceiling still terminates at the clamp
        assert MacConfig(cw_min=3, cw_max=10).max_stage == 2

    def test_window_rejects_negative_stage(self):
        with pytest.raises(ValueError, match="stage"):
            MacConfig().window(-1)

    def test_planning_slowdown_grows_with_cw_min(self):
        assert MacConfig(cw_min=1, cw_max=1).planning_slowdown() == 2.0
        assert (
            MacConfig(cw_min=8).planning_slowdown()
            < MacConfig(cw_min=32).planning_slowdown()
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="cw_min"):
            MacConfig(cw_min=0)
        with pytest.raises(ValueError, match="cw_max"):
            MacConfig(cw_min=8, cw_max=4)
        with pytest.raises(TypeError, match="cw_min"):
            MacConfig(cw_min=2.0)
        with pytest.raises(TypeError, match="sense"):
            MacConfig(sense=1)
        with pytest.raises(ValueError, match="capture"):
            MacConfig(capture=0.5)
        # 0.0 disables, >= 1.0 is a valid ratio
        assert MacConfig(capture=0).capture == 0.0
        assert MacConfig(capture=2).capture == 2.0

    def test_dict_roundtrip(self):
        config = MacConfig(cw_min=2, cw_max=64, sense=False, capture=1.5)
        assert MacConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown contention channel"):
            MacConfig.from_dict({"cw_min": 4, "slots": 9})


class TestChannelRegistry:
    def test_registry_lists_both_kinds(self):
        assert all_channels() == sorted(CHANNEL_KINDS)
        assert {"default", "contention"} <= set(all_channels())

    def test_default_kind_builds_none(self):
        assert make_channel_config("default", {}) is None

    def test_default_kind_rejects_params(self):
        with pytest.raises(ValueError, match="no channel_params"):
            make_channel_config("default", {"cw_min": 4})

    def test_contention_kind_builds_config(self):
        config = make_channel_config("contention", {"cw_min": 2})
        assert isinstance(config, MacConfig)
        assert config.cw_min == 2

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown channel"):
            make_channel_config("aloha", {})
