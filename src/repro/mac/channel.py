"""The contention MAC channel: slotted CSMA/CA over the radio network.

:class:`ContentionChannel` is a sibling of :class:`~repro.core.engine.Channel`
in which loss is *endogenous* — caused by the protocol's own traffic —
instead of injected by an adversary. Each simulated round is one MAC
slot:

1. **Gate.** Every node offering a packet is a *contender*. A contender
   without backoff state draws a counter uniformly from
   ``[0, cw_min - 1]``. With carrier sensing on, a contender that heard
   energy (its own or any neighbor's transmission) in the previous slot
   *defers*: it neither transmits nor counts down. Remaining contenders
   transmit iff their counter is zero, else decrement it.
2. **Resolve.** Actual transmitters go through the ordinary collision
   channel (same semantics, counters, adversary hooks, timeline and
   tracing as the default channel) — exogenous adversaries compose *on
   top of* contention. With a capture threshold set, a receiver hearing
   several transmitters still captures the strongest one when its
   per-slot power exceeds ``capture`` times the runner-up's.
3. **Feedback.** A transmission *succeeded* iff at least one delivery
   names it. Success resets the node's backoff stage; failure doubles
   its contention window (clamped at ``cw_max``); either way the node
   redraws its counter from the new window. Finally the slot's energy
   map becomes the next slot's carrier-sense input.

Sensing is strictly local, so hidden terminals emerge naturally: two
transmitters outside each other's sensing range never defer to one
another yet still destroy a shared receiver's slot.

Like the base channel, the MAC has two property-checked kernels — a
vectorized numpy gate/feedback and a scalar reference (driven through
:meth:`~repro.core.engine.Channel.transmit_reference`) — consuming one
identical RNG stream (bulk uniform draws in ascending node order). MAC
randomness lives on a *child* stream of the channel RNG, so adversary
coin streams match a default-channel run of the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.engine import Channel, Delivery, RoundResult
from repro.core.errors import SimulationError
from repro.core.faults import AdversaryConfig, FaultConfig
from repro.core.network import RadioNetwork
from repro.core.trace import ChannelCounters, TraceRecorder
from repro.mac.config import MacConfig
from repro.telemetry.metrics import METRICS as _METRICS
from repro.util.rng import RandomSource

__all__ = ["ContentionChannel", "MacCounters"]

# MAC hot-seam metrics: registered once at import, bulk-incremented per
# slot behind the single _METRICS.enabled attribute read
_M_OFFERS = _METRICS.counter(
    "repro_mac_offers_total", "packets offered to the MAC gate"
)
_M_TRANSMISSIONS = _METRICS.counter(
    "repro_mac_transmissions_total", "offers that reached the air"
)
_M_DEFERS = _METRICS.counter(
    "repro_mac_defers_total", "contender-slots frozen by carrier sense"
)
_M_MAC_COLLISIONS = _METRICS.counter(
    "repro_mac_collisions_total",
    "transmissions that failed (no delivery) and escalated backoff",
)
_M_BACKOFF_RESETS = _METRICS.counter(
    "repro_mac_backoff_resets_total",
    "transmissions that succeeded and reset their contention window",
)
_M_CAPTURES = _METRICS.counter(
    "repro_mac_captures_total",
    "collided receptions rescued by the capture effect",
)


@dataclass
class MacCounters(ChannelCounters):
    """Channel counters extended with MAC-layer statistics.

    The base fields keep their meaning over *actual transmissions*
    (``broadcasts`` counts packets that reached the air, not offers).
    Default-channel runs keep using :class:`ChannelCounters`, so their
    report bytes are untouched.
    """

    mac_offers: int = 0  # packets offered to the gate
    mac_defers: int = 0  # contender-slots frozen by carrier sense
    mac_transmissions: int = 0  # offers that reached the air
    mac_tx_success: int = 0  # transmissions with >= 1 delivery
    mac_tx_collisions: int = 0  # transmissions that escalated backoff
    mac_captures: int = 0  # collided receptions rescued by capture

    def as_dict(self) -> dict[str, int]:
        data = super().as_dict()
        data.update(
            {
                "mac_offers": self.mac_offers,
                "mac_defers": self.mac_defers,
                "mac_transmissions": self.mac_transmissions,
                "mac_tx_success": self.mac_tx_success,
                "mac_tx_collisions": self.mac_tx_collisions,
                "mac_captures": self.mac_captures,
            }
        )
        return data

    def __str__(self) -> str:
        return (
            super().__str__()
            + f" mac_offers={self.mac_offers} mac_defers={self.mac_defers}"
            f" mac_transmissions={self.mac_transmissions}"
            f" mac_tx_success={self.mac_tx_success}"
            f" mac_tx_collisions={self.mac_tx_collisions}"
            f" mac_captures={self.mac_captures}"
        )


class ContentionChannel(Channel):
    """A :class:`~repro.core.engine.Channel` with CSMA/CA medium access.

    Parameters are the base channel's plus ``config``, the
    :class:`~repro.mac.config.MacConfig` describing the MAC. Backoff
    state persists across slots: a node that stops offering keeps its
    counter frozen until it contends again.
    """

    def __init__(
        self,
        network: RadioNetwork,
        faults: FaultConfig = FaultConfig.faultless(),
        rng: "int | RandomSource | None" = None,
        trace: Optional[TraceRecorder] = None,
        kernel: str = "auto",
        adversary: "AdversaryConfig | None" = None,
        config: Optional[MacConfig] = None,
    ) -> None:
        super().__init__(
            network, faults, rng, trace, kernel=kernel, adversary=adversary
        )
        self.config = config if config is not None else MacConfig()
        self.counters = MacCounters()
        n = network.n
        # persistent per-node MAC state (-1 backoff: no counter drawn yet)
        self._backoff = np.full(n, -1, dtype=np.int64)
        self._stage = np.zeros(n, dtype=np.int64)
        self._busy_prev = np.zeros(n, dtype=bool)
        # per-slot transmit powers, valid only at transmitter indices and
        # only while capture is enabled
        self._power = np.zeros(n, dtype=np.float64)
        # MAC randomness rides a child stream so the adversary's draws on
        # the channel stream are unchanged versus a default-channel run
        self._mac_rng = self.rng.spawn()

    # -- public entry points -------------------------------------------------

    def transmit(self, actions) -> RoundResult:
        """Resolve one MAC slot given ``{offerer: packet}`` offers."""
        return self._mac_round(actions, self._resolve_auto, scalar=False)

    def transmit_reference(self, actions) -> RoundResult:
        """Scalar reference: same slot semantics, same RNG stream."""
        return self._mac_round(actions, self._resolve_scalar, scalar=True)

    # -- slot pipeline -------------------------------------------------------

    def _mac_round(self, actions, resolver, scalar: bool) -> RoundResult:
        n = self.network.n
        for b in actions:
            if not isinstance(b, int) or not 0 <= b < n:
                raise SimulationError(
                    f"broadcast action for invalid node {b!r} (n={n})"
                )
        counters = self.counters
        metrics_on = _METRICS.enabled
        captures_before = counters.mac_captures
        if scalar:
            tx_nodes, defers = self._gate_scalar(actions)
        else:
            tx_nodes, defers = self._gate_vectorized(actions)
        counters.mac_offers += len(actions)
        counters.mac_defers += defers
        counters.mac_transmissions += len(tx_nodes)
        tx_actions = {b: actions[b] for b in tx_nodes}
        result = self._run_round(tx_actions, resolver)
        successes = self._feedback(tx_nodes, result, scalar)
        if metrics_on:
            if actions:
                _M_OFFERS.inc(len(actions))
            if defers:
                _M_DEFERS.inc(defers)
            if tx_nodes:
                _M_TRANSMISSIONS.inc(len(tx_nodes))
                failed = len(tx_nodes) - successes
                if failed:
                    _M_MAC_COLLISIONS.inc(failed)
                if successes:
                    _M_BACKOFF_RESETS.inc(successes)
            captures = counters.mac_captures - captures_before
            if captures:
                _M_CAPTURES.inc(captures)
        return result

    def _gate_vectorized(self, actions) -> tuple[list[int], int]:
        """Numpy MAC gate: draw, sense, fire, count down — in bulk."""
        config = self.config
        backoff = self._backoff
        contenders = np.fromiter(
            sorted(actions), dtype=np.int64, count=len(actions)
        )
        if contenders.size == 0:
            return [], 0
        fresh = contenders[backoff[contenders] < 0]
        if fresh.size:
            draws = self._mac_rng.uniform_array(int(fresh.size))
            backoff[fresh] = (draws * config.cw_min).astype(np.int64)
            self._stage[fresh] = 0
        if config.sense:
            deferred = self._busy_prev[contenders]
            active = contenders[~deferred]
            defers = int(deferred.sum())
        else:
            active = contenders
            defers = 0
        firing = backoff[active] == 0
        tx = active[firing]
        backoff[active[~firing]] -= 1
        if config.capture and tx.size:
            self._power[tx] = self._mac_rng.uniform_array(int(tx.size))
        return tx.tolist(), defers

    def _gate_scalar(self, actions) -> tuple[list[int], int]:
        """Reference MAC gate: per-node loop over the same bulk draws."""
        config = self.config
        backoff = self._backoff
        contenders = sorted(actions)
        if not contenders:
            return [], 0
        fresh = [b for b in contenders if backoff[b] < 0]
        if fresh:
            draws = self._mac_rng.uniform_array(len(fresh))
            for i, b in enumerate(fresh):
                backoff[b] = int(draws[i] * config.cw_min)
                self._stage[b] = 0
        tx: list[int] = []
        defers = 0
        for b in contenders:
            if config.sense and self._busy_prev[b]:
                defers += 1
                continue
            if backoff[b] == 0:
                tx.append(b)
            else:
                backoff[b] -= 1
        if config.capture and tx:
            powers = self._mac_rng.uniform_array(len(tx))
            for i, b in enumerate(tx):
                self._power[b] = powers[i]
        return tx, defers

    def _feedback(self, tx_nodes: list[int], result: RoundResult, scalar: bool) -> int:
        """Post-slot bookkeeping: energy map, backoff evolution, redraws.

        Returns the number of successful transmissions. Every transmitter
        redraws its counter from one bulk uniform draw in ascending node
        order, so the RNG stream is outcome-independent and identical
        across kernels.
        """
        busy = self._busy_prev
        busy[:] = False
        if not tx_nodes:
            return 0
        counters = self.counters
        config = self.config
        stage = self._stage
        max_stage = config.max_stage
        network = self.network
        succeeded = {delivery.sender for delivery in result.deliveries}
        draws = self._mac_rng.uniform_array(len(tx_nodes))
        if scalar:
            successes = 0
            for b in tx_nodes:
                busy[b] = True
                for v in network.neighbors[b]:
                    busy[v] = True
            for i, b in enumerate(tx_nodes):
                if b in succeeded:
                    stage[b] = 0
                    successes += 1
                else:
                    stage[b] = min(int(stage[b]) + 1, max_stage)
                self._backoff[b] = int(draws[i] * config.window(int(stage[b])))
            counters.mac_tx_success += successes
            counters.mac_tx_collisions += len(tx_nodes) - successes
            return successes
        tx = np.asarray(tx_nodes, dtype=np.int64)
        busy[tx] = True
        indptr = network.indptr
        starts = indptr[tx].astype(np.int64)
        lens = indptr[tx + 1].astype(np.int64) - starts
        total = int(lens.sum())
        seg_starts = np.cumsum(lens) - lens
        flat = np.arange(total, dtype=np.int64) + np.repeat(
            starts - seg_starts, lens
        )
        busy[network.indices[flat]] = True
        succ = np.fromiter(
            (b in succeeded for b in tx_nodes), dtype=bool, count=len(tx_nodes)
        )
        stage[tx[succ]] = 0
        failed = tx[~succ]
        stage[failed] = np.minimum(stage[failed] + 1, max_stage)
        windows = np.minimum(
            np.left_shift(np.int64(config.cw_min), stage[tx]), config.cw_max
        )
        self._backoff[tx] = (draws * windows).astype(np.int64)
        successes = int(succ.sum())
        counters.mac_tx_success += successes
        counters.mac_tx_collisions += len(tx_nodes) - successes
        return successes

    # -- capture-aware resolution -------------------------------------------
    #
    # Without capture the base kernels apply unchanged (a collided slot
    # is simply lost). With a capture threshold the strongest of several
    # transmitters can still win a receiver, which needs per-receiver
    # transmitter groups rather than the base kernel's hear-counts.

    def _resolve_vectorized(self, actions, result: RoundResult) -> None:
        if not self.config.capture:
            super()._resolve_vectorized(actions, result)
            return
        network = self.network
        n = network.n
        counters = self.counters
        adversary = self.adversary
        bs = np.fromiter(sorted(actions), dtype=np.int64, count=len(actions))

        if adversary.needs_begin_round:
            adversary.begin_round(self.round_index, bs)
        smask = adversary.sender_mask(bs)
        faulty = bs[smask] if smask is not None else bs[:0]
        if faulty.size:
            counters.sender_faults += int(faulty.size)
            result.faulty_senders.extend(faulty.tolist())

        indptr = network.indptr
        starts = indptr[bs].astype(np.int64)
        lens = indptr[bs + 1].astype(np.int64) - starts
        total = int(lens.sum())
        seg_starts = np.cumsum(lens) - lens
        flat = np.arange(total, dtype=np.int64) + np.repeat(
            starts - seg_starts, lens
        )
        heard = network.indices[flat]
        senders = np.repeat(bs, lens)

        if adversary.has_edge_dynamics:
            alive = adversary.edge_alive(bs, flat)
            if alive is not None:
                heard = heard[alive]
                senders = senders[alive]

        listening = np.ones(n, dtype=bool)
        listening[bs] = False  # a transmitting node cannot receive
        keep = listening[heard]
        heard = heard[keep]
        senders = senders[keep]

        if heard.size == 0:
            unique = heard
            unique_senders = senders
        else:
            powers = self._power[senders]
            # stable sort by (receiver, power): the last slot of each
            # receiver group is the strongest transmitter, ties resolved
            # toward the later (larger-id) sender exactly like the
            # scalar reference
            order = np.lexsort((powers, heard))
            h = heard[order]
            s = senders[order]
            p = powers[order]
            ends = np.nonzero(np.r_[h[1:] != h[:-1], True])[0]
            sizes = np.diff(np.r_[np.int64(-1), ends])
            receivers = h[ends]  # ascending receiver ids
            strongest = s[ends]
            multi = sizes >= 2
            p_top = p[ends]
            p_second = np.where(multi, p[np.maximum(ends - 1, 0)], 0.0)
            captured = multi & (p_top >= self.config.capture * p_second)
            counters.mac_captures += int(captured.sum())
            lost = multi & ~captured
            collided = receivers[lost]
            if collided.size:
                counters.collisions += int(collided.size)
                result.collision_receivers.extend(collided.tolist())
            unique = receivers[~lost]
            unique_senders = strongest[~lost]

        if faulty.size:
            faulty_lookup = np.zeros(n, dtype=bool)
            faulty_lookup[faulty] = True
            silenced = faulty_lookup[unique_senders]
            result.noise_receivers.extend(unique[silenced].tolist())
            unique = unique[~silenced]
            unique_senders = unique_senders[~silenced]

        rmask = adversary.receiver_mask(unique, unique_senders)
        if rmask is not None and rmask.any():
            counters.receiver_faults += int(rmask.sum())
            result.noise_receivers.extend(unique[rmask].tolist())
            unique = unique[~rmask]
            unique_senders = unique_senders[~rmask]

        counters.deliveries += int(unique.size)
        deliveries = result.deliveries
        for v, sdr in zip(unique.tolist(), unique_senders.tolist()):
            deliveries.append(Delivery(v, sdr, actions[sdr]))

    def _resolve_scalar(self, actions, result: RoundResult) -> None:
        if not self.config.capture:
            super()._resolve_scalar(actions, result)
            return
        counters = self.counters
        trace = self.trace
        tracing = trace.enabled
        adversary = self.adversary
        broadcasters = sorted(actions)

        if tracing:
            for b in broadcasters:
                trace.record(self.round_index, "broadcast", b)

        if adversary.needs_begin_round:
            adversary.begin_round(
                self.round_index, np.asarray(broadcasters, dtype=np.int64)
            )

        faulty: set[int] = set()
        smask = adversary.sender_mask(broadcasters)
        if smask is not None:
            faulty = {b for b, hit in zip(broadcasters, smask) if hit}
            counters.sender_faults += len(faulty)
            result.faulty_senders.extend(sorted(faulty))
            if tracing:
                for b in sorted(faulty):
                    trace.record(self.round_index, "sender_fault", b)

        neighbors = self.network.neighbors
        alive = (
            adversary.edge_alive(np.asarray(broadcasters, dtype=np.int64))
            if adversary.has_edge_dynamics
            else None
        )
        heard_by: dict[int, list[int]] = {}
        slot = 0
        for b in broadcasters:
            for v in neighbors[b]:
                if (alive is None or alive[slot]) and v not in actions:
                    heard_by.setdefault(v, []).append(b)
                slot += 1

        power = self._power
        ratio = self.config.capture
        eligible: list[int] = []
        eligible_senders: list[int] = []
        for v in sorted(heard_by):
            txs = heard_by[v]
            if len(txs) == 1:
                winner = txs[0]
            else:
                # strongest transmitter; power ties go to the later slot
                # (larger sender id), matching the vectorized lexsort
                best = max(
                    range(len(txs)), key=lambda i: (power[txs[i]], i)
                )
                p_top = power[txs[best]]
                p_second = max(
                    power[txs[i]] for i in range(len(txs)) if i != best
                )
                if p_top >= ratio * p_second:
                    winner = txs[best]
                    counters.mac_captures += 1
                else:
                    counters.collisions += 1
                    result.collision_receivers.append(v)
                    if tracing:
                        trace.record(self.round_index, "collision", v)
                    continue
            if winner in faulty:
                result.noise_receivers.append(v)
                continue
            eligible.append(v)
            eligible_senders.append(winner)

        rmask = adversary.receiver_mask(eligible, eligible_senders)
        for i, v in enumerate(eligible):
            sender = eligible_senders[i]
            if rmask is not None and rmask[i]:
                counters.receiver_faults += 1
                result.noise_receivers.append(v)
                if tracing:
                    trace.record(self.round_index, "receiver_fault", v, sender)
                continue
            counters.deliveries += 1
            result.deliveries.append(Delivery(v, sender, actions[sender]))
            if tracing:
                trace.record(self.round_index, "deliver", v, sender)
