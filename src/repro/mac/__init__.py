"""Contention-based medium access control (CSMA/CA) for the simulator.

The :mod:`repro.mac` subsystem adds a channel mode where message loss is
*endogenous* — collisions caused by the protocol's own traffic under
slotted CSMA/CA medium access — instead of injected by an adversary.
Select it per scenario with ``Scenario(channel="contention",
channel_params={...})``; see :class:`~repro.mac.config.MacConfig` for
the knobs and :class:`~repro.mac.channel.ContentionChannel` for the slot
semantics. :mod:`repro.mac.analytic` provides the Bianchi-style
closed-form saturation model the simulation is validated against.
"""

from repro.mac.analytic import BianchiPrediction, bianchi_fixed_point
from repro.mac.channel import ContentionChannel, MacCounters
from repro.mac.config import (
    CHANNEL_KINDS,
    MacConfig,
    all_channels,
    make_channel_config,
)
from repro.mac.saturation import SaturationResult, saturation_sim

__all__ = [
    "BianchiPrediction",
    "CHANNEL_KINDS",
    "ContentionChannel",
    "MacConfig",
    "MacCounters",
    "SaturationResult",
    "all_channels",
    "bianchi_fixed_point",
    "make_channel_config",
    "saturation_sim",
]
