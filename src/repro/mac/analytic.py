"""Bianchi-style closed-form saturation analysis of the contention MAC.

For a *single collision domain* (every node hears every other — the
``complete`` topology family) under saturation (every node offers a
packet every slot), the contention channel's per-node backoff process is
exactly the discrete-time Markov chain of Bianchi's WLAN model: a node
at backoff stage ``i`` draws its counter uniformly from
``[0, W_i - 1]``, counts down one slot at a time, transmits when it
fires, then resets on success or escalates on collision.

Under Bianchi's decoupling approximation — each transmission collides
with a constant, state-independent probability ``p`` — the chain yields
a closed-form per-slot transmission probability ``tau``; self-consistency
with ``p = 1 - (1 - tau)^(n-1)`` gives a fixed point solvable by
bisection. :func:`bianchi_fixed_point` solves the *generalized* form

``tau = 1 / sum_i q_i * (W_i + 1) / 2``

where ``q_i`` is the stationary fraction of transmission attempts made
at stage ``i`` (``(1-p) p^i`` below the ceiling, ``p^m`` at it) — this
reduces to Bianchi's published formula when ``cw_max = cw_min * 2^m``
and stays exact for clamped windows, with no singularity at ``p = 1/2``.

The simulation cross-check (``tests/mac/test_bianchi_crosscheck.py``)
drives :func:`~repro.mac.saturation.saturation_sim` against these
predictions; the only error left is the decoupling approximation itself
plus Monte-Carlo noise, so the tolerance bar is a few percent (see
PERFORMANCE.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mac.config import MacConfig

__all__ = ["BianchiPrediction", "bianchi_fixed_point"]


@dataclass(frozen=True)
class BianchiPrediction:
    """The saturation fixed point for one (n, MacConfig) pair.

    ``tau`` is the per-chain-slot transmission probability of one node;
    ``collision_probability`` the conditional probability that a given
    transmission collides; ``throughput`` the per-chain-slot probability
    of a successful slot (exactly one transmitter); ``busy_probability``
    the probability a chain slot carries at least one transmission.
    """

    n: int
    cw_min: int
    cw_max: int
    tau: float
    collision_probability: float
    throughput: float
    busy_probability: float

    def slot_throughput(self, sense: bool) -> float:
        """Successful-slot rate in *simulated* slots.

        Without carrier sensing, simulated slots are chain slots. With
        sensing, every busy chain slot is followed by one freeze slot in
        which the whole collision domain defers, so a chain slot costs
        ``1 + busy_probability`` simulated slots in expectation and the
        observed rate scales down accordingly. Collision probability is
        per transmission and therefore unaffected by sensing.
        """
        if not sense:
            return self.throughput
        return self.throughput / (1.0 + self.busy_probability)


def _tau_of_p(p: float, config: MacConfig) -> float:
    """Per-slot transmission probability given a collision probability.

    Renewal-reward over transmission attempts: an attempt at stage ``i``
    occupies ``(W_i + 1) / 2`` chain slots in expectation (uniform
    counter in ``[0, W_i - 1]`` plus the transmission slot), and the
    stage of a random attempt is geometric in ``p`` with the ceiling
    stage absorbing the tail.
    """
    m = config.max_stage
    expected_slots = 0.0
    weight = 1.0  # p**i
    for stage in range(m + 1):
        q = weight if stage == m else (1.0 - p) * weight
        expected_slots += q * (config.window(stage) + 1) / 2.0
        weight *= p
    return 1.0 / expected_slots


def bianchi_fixed_point(
    n: int, cw_min: int = 8, cw_max: int = 256
) -> BianchiPrediction:
    """Solve the saturation fixed point for ``n`` contenders.

    Bisection on ``g(tau) = tau - tau_model(1 - (1 - tau)^(n-1))``:
    ``tau_model`` is decreasing in ``p`` and ``p`` increasing in ``tau``,
    so ``g`` is monotone and the root unique.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    config = MacConfig(cw_min=cw_min, cw_max=cw_max)

    def g(tau: float) -> float:
        p = 1.0 - (1.0 - tau) ** (n - 1)
        return tau - _tau_of_p(p, config)

    lo, hi = 0.0, 1.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if g(mid) < 0.0:
            lo = mid
        else:
            hi = mid
    tau = (lo + hi) / 2.0
    p = 1.0 - (1.0 - tau) ** (n - 1)
    throughput = n * tau * (1.0 - tau) ** (n - 1)
    busy = 1.0 - (1.0 - tau) ** n
    return BianchiPrediction(
        n=n,
        cw_min=cw_min,
        cw_max=cw_max,
        tau=tau,
        collision_probability=p,
        throughput=throughput,
        busy_probability=busy,
    )
