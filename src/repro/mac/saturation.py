"""Saturation harness: drive a single collision domain at full load.

The Bianchi cross-check needs the exact regime the analytical model
describes — every node backlogged every slot, one collision domain. No
protocol produces that pattern, so the harness bypasses protocols
entirely and feeds the channel a full offer set each slot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.packets import MessagePacket
from repro.mac.channel import ContentionChannel
from repro.mac.config import MacConfig
from repro.topologies.basic import complete

__all__ = ["SaturationResult", "saturation_sim"]


@dataclass(frozen=True)
class SaturationResult:
    """Measured saturation statistics over one simulated run.

    ``collision_probability`` is per transmission (failed / total) —
    directly comparable to
    :attr:`~repro.mac.analytic.BianchiPrediction.collision_probability`;
    ``throughput`` is successful slots per simulated slot, comparable to
    :meth:`~repro.mac.analytic.BianchiPrediction.slot_throughput`.
    """

    n: int
    slots: int
    transmissions: int
    successes: int
    collisions: int
    defers: int

    @property
    def collision_probability(self) -> float:
        if not self.transmissions:
            return 0.0
        return self.collisions / self.transmissions

    @property
    def throughput(self) -> float:
        return self.successes / self.slots if self.slots else 0.0


def saturation_sim(
    n: int,
    config: MacConfig,
    slots: int,
    rng: int = 0,
    kernel: str = "auto",
) -> SaturationResult:
    """Saturate a complete graph of ``n`` nodes for ``slots`` MAC slots.

    In a complete graph a transmission succeeds iff it is the slot's only
    one, so ``mac_tx_success`` counts successful slots exactly.
    """
    if slots < 1:
        raise ValueError(f"slots must be >= 1, got {slots}")
    network = complete(n)
    channel = ContentionChannel(network, rng=rng, kernel=kernel, config=config)
    packet = MessagePacket(0)
    actions = {v: packet for v in network.nodes()}
    for _ in range(slots):
        channel.transmit(actions)
    counters = channel.counters
    return SaturationResult(
        n=n,
        slots=slots,
        transmissions=counters.mac_transmissions,
        successes=counters.mac_tx_success,
        collisions=counters.mac_tx_collisions,
        defers=counters.mac_defers,
    )
