"""Contention-channel configuration.

:class:`MacConfig` is the serializable knob carried by
:class:`~repro.runner.scenario.Scenario` when ``channel="contention"``:
how aggressively nodes contend for the medium. Like
:class:`~repro.timeline.config.TimelineConfig` it deliberately imports
nothing heavy — the scenario layer validates channel parameters without
pulling in numpy or the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "MacConfig",
    "CHANNEL_KINDS",
    "all_channels",
    "make_channel_config",
]


@dataclass(frozen=True)
class MacConfig:
    """Slotted CSMA/CA medium-access parameters.

    Parameters
    ----------
    cw_min:
        Initial contention window: a fresh (or just-successful) node
        draws its backoff counter uniformly from ``[0, cw_min - 1]``.
    cw_max:
        Contention-window ceiling for binary exponential backoff: after
        ``i`` consecutive failures the window is
        ``min(cw_min * 2**i, cw_max)``.
    sense:
        Carrier sensing: when True a contender that heard energy (its own
        or any neighbor's transmission) in the *previous* slot defers —
        it neither transmits nor decrements its counter. Sensing is
        local, which is exactly what makes hidden terminals possible:
        two transmitters outside each other's sensing range still
        destroy a shared receiver's reception.
    capture:
        Capture-effect threshold ratio (``0.0`` disables). When set
        (must be ``>= 1.0``), every transmitter draws a per-slot power
        uniform in [0, 1); a receiver hearing several transmitters still
        captures the strongest one iff its power is at least ``capture``
        times the runner-up's.
    """

    cw_min: int = 8
    cw_max: int = 256
    sense: bool = True
    capture: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.cw_min, int) or isinstance(self.cw_min, bool):
            raise TypeError(
                f"cw_min must be an int, got {type(self.cw_min).__name__}"
            )
        if not isinstance(self.cw_max, int) or isinstance(self.cw_max, bool):
            raise TypeError(
                f"cw_max must be an int, got {type(self.cw_max).__name__}"
            )
        if self.cw_min < 1:
            raise ValueError(f"cw_min must be >= 1, got {self.cw_min}")
        if self.cw_max < self.cw_min:
            raise ValueError(
                f"cw_max ({self.cw_max}) must be >= cw_min ({self.cw_min})"
            )
        if not isinstance(self.sense, bool):
            raise TypeError(
                f"sense must be a bool, got {type(self.sense).__name__}"
            )
        if not isinstance(self.capture, (int, float)) or isinstance(
            self.capture, bool
        ):
            raise TypeError(
                f"capture must be a number, got {type(self.capture).__name__}"
            )
        object.__setattr__(self, "capture", float(self.capture))
        if self.capture != 0.0 and self.capture < 1.0:
            raise ValueError(
                "capture is a power-ratio threshold: 0.0 (off) or >= 1.0, "
                f"got {self.capture}"
            )

    @property
    def max_stage(self) -> int:
        """Backoff stages until the window saturates at ``cw_max``."""
        stage = 0
        window = self.cw_min
        while window < self.cw_max:
            window = min(window * 2, self.cw_max)
            stage += 1
        return stage

    def window(self, stage: int) -> int:
        """Contention window after ``stage`` consecutive failures."""
        if stage < 0:
            raise ValueError(f"stage must be >= 0, got {stage}")
        return min(self.cw_min << min(stage, self.max_stage), self.cw_max)

    def planning_slowdown(self) -> float:
        """Round-budget multiplier contention costs a broadcast schedule.

        A node that decides to broadcast waits ``(cw_min + 1) / 2`` slots
        in expectation before its counter fires (plus defers); budget
        formulas multiply their fault slowdown by this planning figure so
        that timeouts keep signaling anomalies, not medium access.
        """
        return (self.cw_min + 1) / 2.0 + 1.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "cw_min": self.cw_min,
            "cw_max": self.cw_max,
            "sense": self.sense,
            "capture": self.capture,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MacConfig":
        unknown = set(data) - {"cw_min", "cw_max", "sense", "capture"}
        if unknown:
            raise ValueError(
                f"unknown contention channel params {sorted(unknown)}; "
                "allowed: capture, cw_max, cw_min, sense"
            )
        return cls(
            cw_min=int(data.get("cw_min", 8)),
            cw_max=int(data.get("cw_max", 256)),
            sense=bool(data.get("sense", True)),
            capture=float(data.get("capture", 0.0)),
        )


#: registered channel kinds: name -> (summary, declared params with
#: defaults). "default" is the paper's collision channel; every extra
#: kind maps to a Channel sibling built by the Simulator.
CHANNEL_KINDS: dict[str, dict[str, Any]] = {
    "default": {
        "summary": (
            "the paper's collision channel: a listener receives iff "
            "exactly one neighbor broadcasts"
        ),
        "params": {},
    },
    "contention": {
        "summary": (
            "slotted CSMA/CA medium access: carrier sensing, binary "
            "exponential backoff, hidden terminals, optional capture"
        ),
        "params": MacConfig().to_dict(),
    },
}


def all_channels() -> list[str]:
    """Registered channel kind names, sorted."""
    return sorted(CHANNEL_KINDS)


def make_channel_config(
    kind: str, params: Mapping[str, Any]
) -> "MacConfig | None":
    """Validate a (kind, params) pair into a channel config.

    Returns ``None`` for the default channel (which takes no parameters)
    and a :class:`MacConfig` for ``"contention"``; raises on unknown
    kinds or parameters.
    """
    if kind not in CHANNEL_KINDS:
        known = ", ".join(all_channels())
        raise ValueError(f"unknown channel {kind!r}; known: {known}")
    if kind == "default":
        if params:
            raise ValueError(
                "the default channel takes no channel_params; got "
                f"{sorted(params)}"
            )
        return None
    return MacConfig.from_dict(params)
