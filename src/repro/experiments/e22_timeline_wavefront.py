"""E22: wavefront race — Decay vs RLNC gossip under a frontier jammer.

E20 showed the *end-of-run* gap between oblivious retransmission and
coded gossip under structured interference. This experiment uses the
flight recorder to show *where in the run* that gap opens: every
scenario records a per-round timeline, and the table reports the round
at which each algorithm's informed fraction crossed the 25/50/75/90/100%
checkpoints (mean/min/max over trials), plus the channel's loss
attribution.

Against a frontier-tracking budgeted jammer the expectation is visible
in the curve shape, not just the totals: the jammer sits on Decay's
frontier and stretches the late checkpoints apart, while RLNC keeps
climbing because any innovative reception advances every receiver.

``repro run E22 --adversary NAME --adversary-param K=V`` swaps the
jammer for any registered adversary; the recording itself never changes
the simulated outcome (determinism contract, enforced by the timeline
test suite).
"""

from __future__ import annotations

from typing import Optional

from repro.core.faults import AdversaryConfig
from repro.experiments.common import register
from repro.runner import Scenario, run_batch
from repro.timeline import Timeline, TimelineConfig
from repro.timeline.analyze import summarize, time_to_fraction
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table

#: informed-fraction checkpoints reported per algorithm
_CHECKPOINTS = (0.25, 0.5, 0.75, 0.9, 1.0)


@register(
    "E22",
    "Wavefront race: Decay vs RLNC informed-fraction curves under a "
    "frontier jammer",
    "The flight recorder localizes the adversary gap: a frontier jammer "
    "stalls Decay's wavefront at the late checkpoints, while RLNC's "
    "coded receptions keep the informed fraction climbing",
    accepts_adversary=True,
)
def run(
    scale: str, seed: int, adversary: Optional[AdversaryConfig] = None
) -> Table:
    if scale == "smoke":
        n, trials = 32, 2
        algorithms = [("decay", {}), ("rlnc_decay", {"k": 2})]
    else:
        n, trials = 96, 5
        algorithms = [("decay", {}), ("rlnc_decay", {"k": 4})]
    if adversary is None:
        adversary = AdversaryConfig(
            "budgeted_jammer",
            {"per_round": 1, "budget": 4 * n, "policy": "frontier"},
        )

    rng = RandomSource(seed)
    seeds = [rng.spawn().seed for _ in range(trials)]
    timeline_config = TimelineConfig(every=1)

    scenarios, keys = [], []
    for name, params in algorithms:
        for trial_seed in seeds:
            scenarios.append(
                Scenario(
                    algorithm=name,
                    topology="path",
                    topology_params={"n": n},
                    params=params,
                    adversary=adversary,
                    seed=trial_seed,
                    timeline=timeline_config,
                )
            )
            keys.append(name)
    reports = run_batch(scenarios)

    by_algorithm: dict[str, list[Timeline]] = {}
    for name, report in zip(keys, reports):
        by_algorithm.setdefault(name, []).append(
            Timeline.from_dict(report.timeline)
        )

    table = Table(
        ["algorithm", "metric", "mean", "min", "max"],
        title=(
            f"E22: informed-wavefront checkpoints under {adversary.kind} "
            f"(path, n={n}, {trials} trial(s))"
        ),
    )
    for name, _ in algorithms:
        timelines = by_algorithm[name]
        for fraction in _CHECKPOINTS:
            # trials that never reached the checkpoint drop out of the
            # statistics rather than faking a round number
            series = [
                value
                for value in (
                    time_to_fraction(t, fraction) for t in timelines
                )
                if value is not None
            ]
            table.add_row(
                name,
                f"round_to_{int(fraction * 100)}pct",
                round(mean(series), 2) if series else None,
                min(series) if series else None,
                max(series) if series else None,
            )
        losses = [summarize(t)["loss_fraction"] for t in timelines]
        table.add_row(
            name,
            "loss_fraction",
            round(mean(losses), 4),
            round(min(losses), 4),
            round(max(losses), 4),
        )
    return table
