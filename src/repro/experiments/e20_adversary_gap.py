"""E20: completion-time gaps under structured adversaries.

The paper proves its gaps for i.i.d. fault coins; this experiment asks
how the same algorithm ladder — Decay (oblivious, fault-robust), FASTBC
(wave, fragile), and RLNC gossip (coded, every reception useful) —
separates when the interference is *structured*:

* ``iid_matched`` — the paper's receiver coins at the Gilbert-Elliott
  model's stationary loss rate, the fair i.i.d. control;
* ``gilbert_elliott`` — the same average loss delivered in bursts
  (two-state Markov chain), which stalls wave algorithms for whole
  bad-state stretches;
* ``jammer_frontier`` / ``jammer_random`` — an adaptive budgeted jammer
  silencing receptions per round, frontier-tracking vs uniformly random
  targeting;
* ``edge_churn`` (full scale) — per-round link up/down flips.

Reported per (algorithm, adversary): mean rounds, success rate, and the
slowdown against the same algorithm's faultless baseline. Runs through
the declarative :class:`~repro.runner.Scenario` stack, so ``repro run
E20 --adversary NAME --adversary-param K=V`` can swap in any registered
adversary (the override replaces the adversary axis; the faultless
baseline stays for the slowdown column).
"""

from __future__ import annotations

from typing import Optional

from repro.adversary import build_adversary
from repro.core.faults import AdversaryConfig
from repro.experiments.common import register
from repro.runner import Scenario, run_batch
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table

#: the bursty chain the iid control is matched against
_GE_PARAMS = {"p_bad": 0.8, "p_good": 0.0, "p_enter": 0.05, "p_exit": 0.25}


def _adversary_axis(
    scale: str, n: int, override: Optional[AdversaryConfig]
) -> list[tuple[str, Optional[AdversaryConfig]]]:
    """(label, config) pairs; None = the faultless baseline."""
    if override is not None:
        return [("faultless", None), (str(override), override)]
    ge = AdversaryConfig("gilbert_elliott", _GE_PARAMS)
    matched_p = round(build_adversary(ge).nominal_p, 4)
    axis = [
        ("faultless", None),
        (
            "iid_matched",
            AdversaryConfig("iid", {"model": "receiver", "p": matched_p}),
        ),
        ("gilbert_elliott", ge),
        (
            "jammer_frontier",
            AdversaryConfig(
                "budgeted_jammer",
                {"per_round": 1, "budget": 4 * n, "policy": "frontier"},
            ),
        ),
    ]
    if scale == "full":
        axis.append(
            (
                "jammer_random",
                AdversaryConfig(
                    "budgeted_jammer",
                    {"per_round": 1, "budget": 4 * n, "policy": "random"},
                ),
            )
        )
        axis.append(
            ("edge_churn", AdversaryConfig("edge_churn", {"p_down": 0.1, "p_up": 0.5}))
        )
    return axis


@register(
    "E20",
    "Adversary gap: Decay vs FASTBC vs RLNC under bursty and jamming noise",
    "Beyond the paper's i.i.d. coins: equal average loss hurts wave "
    "algorithms far more when delivered in bursts or adaptively; Decay "
    "and RLNC degrade gracefully",
    accepts_adversary=True,
)
def run(
    scale: str, seed: int, adversary: Optional[AdversaryConfig] = None
) -> Table:
    if scale == "smoke":
        n = 32
        algorithms = [("decay", {}), ("fastbc", {}), ("rlnc_decay", {"k": 2})]
        trials = 2
    else:
        n = 96
        algorithms = [
            ("decay", {}),
            ("fastbc", {}),
            ("rlnc_decay", {"k": 4}),
            ("rlnc_robust_fastbc", {"k": 4}),
        ]
        trials = 5

    rng = RandomSource(seed)
    seeds = [rng.spawn().seed for _ in range(trials)]
    axis = _adversary_axis(scale, n, adversary)

    scenarios, keys = [], []
    for name, params in algorithms:
        for label, config in axis:
            for trial_seed in seeds:
                scenarios.append(
                    Scenario(
                        algorithm=name,
                        topology="path",
                        topology_params={"n": n},
                        params=params,
                        adversary=config,
                        seed=trial_seed,
                    )
                )
                keys.append((name, label))
    reports = run_batch(scenarios)

    by_cell: dict[tuple[str, str], list] = {}
    for key, report in zip(keys, reports):
        by_cell.setdefault(key, []).append(report)

    table = Table(
        ["algorithm", "adversary", "rounds", "success_rate", "slowdown"],
        title="E20: completion-time gaps under structured adversaries "
        f"(path, n={n})",
    )
    for name, _ in algorithms:
        baseline = mean([r.rounds for r in by_cell[(name, "faultless")]])
        for label, _ in axis:
            cell = by_cell[(name, label)]
            rounds = mean([r.rounds for r in cell])
            table.add_row(
                name,
                label,
                rounds,
                mean([1.0 if r.success else 0.0 for r in cell]),
                rounds / baseline if baseline else 1.0,
            )
    return table
