"""E3 (Lemma 8): faultless FASTBC is diameter-linear: D + O(log^2 n)."""

from __future__ import annotations

from repro.algorithms.decay import decay_broadcast
from repro.algorithms.fastbc import fastbc_broadcast
from repro.analysis.predictions import fastbc_faultless_rounds
from repro.experiments.common import register
from repro.topologies.basic import caterpillar, path
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "E3",
    "Faultless FASTBC diameter linearity",
    "Lemma 8: FASTBC broadcasts in D + O(log^2 n) rounds, beating Decay's "
    "D log n on deep networks",
)
def run(scale: str, seed: int) -> Table:
    if scale == "smoke":
        depths = [48, 96]
        trials = 2
    else:
        depths = [64, 128, 256, 512, 1024]
        trials = 5

    rng = RandomSource(seed)
    table = Table(
        [
            "topology",
            "n",
            "D",
            "fastbc_rounds",
            "decay_rounds",
            "predicted",
            "fastbc_over_D",
        ],
        title="E3: faultless FASTBC vs Decay on deep topologies",
    )
    for depth in depths:
        for topo_name, network in (
            ("path", path(depth)),
            ("caterpillar", caterpillar(depth // 2, 1)),
        ):
            fastbc_rounds, decay_rounds_ = [], []
            for _ in range(trials):
                fast = fastbc_broadcast(network, rng=rng.spawn())
                slow = decay_broadcast(network, rng=rng.spawn())
                if not (fast.success and slow.success):
                    raise AssertionError(f"faultless timeout on {network.name}")
                fastbc_rounds.append(fast.rounds)
                decay_rounds_.append(slow.rounds)
            d = network.source_eccentricity
            table.add_row(
                topo_name,
                network.n,
                d,
                mean(fastbc_rounds),
                mean(decay_rounds_),
                fastbc_faultless_rounds(network.n, d),
                mean(fastbc_rounds) / d,
            )
    return table
