"""A2 (ablation): naive repetition baselines vs Robust FASTBC.

Section 4.1 discusses two straw-men before Robust FASTBC: repeat every
FASTBC round Θ(log n) times (safe but O(D log n) — no better than Decay)
or Θ(log log n) times (O(D log log n + polylog)). This ablation runs both
against plain and Robust FASTBC under faults.
"""

from __future__ import annotations

from repro.algorithms.fastbc import fastbc_broadcast
from repro.algorithms.repetition import (
    repeat_factor_log,
    repeat_factor_loglog,
    repeated_fastbc_broadcast,
)
from repro.algorithms.robust_fastbc import robust_fastbc_broadcast
from repro.core.faults import FaultConfig
from repro.experiments.common import register
from repro.topologies.basic import path
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "A2",
    "Ablation: repetition baselines for fault-robust FASTBC",
    "Repeating rounds x log n is safe but slow; x log log n is the cheap "
    "middle; Robust FASTBC's blocks beat both asymptotically",
)
def run(scale: str, seed: int) -> Table:
    p = 0.5
    if scale == "smoke":
        sizes = [96]
        trials = 2
    else:
        sizes = [128, 256, 512]
        trials = 3

    rng = RandomSource(seed)
    faults = FaultConfig.receiver(p)
    table = Table(
        ["n", "variant", "rounds", "per_hop"],
        title=f"A2: FASTBC fault-robustness variants on a path (p={p})",
    )
    for n in sizes:
        network = path(n)
        variants = [
            (
                "plain",
                lambda: fastbc_broadcast(network, faults=faults, rng=rng.spawn()),
            ),
            (
                "repeat-loglog",
                lambda: repeated_fastbc_broadcast(
                    network,
                    repeat=repeat_factor_loglog(n),
                    faults=faults,
                    rng=rng.spawn(),
                ),
            ),
            (
                "repeat-log",
                lambda: repeated_fastbc_broadcast(
                    network,
                    repeat=repeat_factor_log(n),
                    faults=faults,
                    rng=rng.spawn(),
                ),
            ),
            (
                "robust",
                lambda: robust_fastbc_broadcast(
                    network, faults=faults, rng=rng.spawn()
                ),
            ),
        ]
        for name, runner in variants:
            rounds = []
            for _ in range(trials):
                outcome = runner()
                if not outcome.success:
                    raise AssertionError(f"{name} timed out on path-{n}")
                rounds.append(outcome.rounds)
            table.add_row(n, name, mean(rounds), mean(rounds) / (n - 1))
    return table
