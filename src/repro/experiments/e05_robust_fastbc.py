"""E5 (Theorem 11): Robust FASTBC stays diameter-linear under faults.

The comparison isolates the wave mechanism (``decay_interleave=False``):
plain FASTBC's per-hop cost grows with log n (a dropped hop waits out a
full wave period), while Robust FASTBC's blocks absorb drops with local
retries and its per-hop cost is flat in n. The full-algorithm columns show
the blended behaviour (the Decay half floors both at Θ(log n)/hop at these
scales — see EXPERIMENTS.md for the constant-regime discussion).
"""

from __future__ import annotations

from repro.algorithms.decay import decay_broadcast
from repro.algorithms.fastbc import fastbc_broadcast
from repro.algorithms.robust_fastbc import robust_fastbc_broadcast
from repro.core.faults import FaultConfig
from repro.experiments.common import register
from repro.topologies.basic import path
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "E5",
    "Robust FASTBC diameter linearity under faults",
    "Theorem 11: Robust FASTBC needs O(D + log n log log n (log n + "
    "log 1/δ)) rounds with faults; per-hop cost flat in n vs plain "
    "FASTBC's Θ(log n)",
)
def run(scale: str, seed: int) -> Table:
    p = 0.5
    if scale == "smoke":
        sizes = [96, 192]
        trials = 2
    else:
        sizes = [96, 192, 384, 768]
        trials = 4

    rng = RandomSource(seed)
    faults = FaultConfig.receiver(p)
    table = Table(
        [
            "n",
            "plain_wave_per_hop",
            "robust_wave_per_hop",
            "plain_full",
            "robust_full",
            "decay_full",
        ],
        title=f"E5: per-hop wave cost at p={p} — plain grows, robust flat",
    )
    for n in sizes:
        network = path(n)
        plain_wave, robust_wave = [], []
        plain_full, robust_full, decay_full = [], [], []
        for _ in range(trials):
            pw = fastbc_broadcast(
                network, faults=faults, rng=rng.spawn(), decay_interleave=False
            )
            rw = robust_fastbc_broadcast(
                network, faults=faults, rng=rng.spawn(), decay_interleave=False
            )
            pf = fastbc_broadcast(network, faults=faults, rng=rng.spawn())
            rf = robust_fastbc_broadcast(network, faults=faults, rng=rng.spawn())
            df = decay_broadcast(network, faults=faults, rng=rng.spawn())
            for outcome in (pw, rw, pf, rf, df):
                if not outcome.success:
                    raise AssertionError(f"timeout on path-{n} at p={p}")
            plain_wave.append(pw.rounds)
            robust_wave.append(rw.rounds)
            plain_full.append(pf.rounds)
            robust_full.append(rf.rounds)
            decay_full.append(df.rounds)
        hops = n - 1
        table.add_row(
            n,
            mean(plain_wave) / hops,
            mean(robust_wave) / hops,
            mean(plain_full),
            mean(robust_full),
            mean(decay_full),
        )
    return table
