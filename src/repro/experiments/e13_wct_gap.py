"""E13 (Lemma 23, Theorem 24): the worst case topology gap is Θ(log n)."""

from __future__ import annotations

import math

from repro.algorithms.multi.wct_sim import WCTBroadcastSimulator
from repro.experiments.common import register
from repro.topologies.wct import worst_case_topology
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "E13",
    "WCT coding gap (worst case topology gap)",
    "Lemma 23 + Theorem 24: coding on WCT needs Θ(k log n) rounds vs "
    "routing's Θ(k log^2 n) — a Θ(log n) worst case topology gap",
)
def run(scale: str, seed: int) -> Table:
    p = 0.5
    if scale == "smoke":
        sizes = [256]
        k = 4
        trials = 2
    else:
        sizes = [256, 1024, 4096]
        k = 16
        trials = 3

    rng = RandomSource(seed)
    table = Table(
        [
            "n",
            "k",
            "routing_rounds",
            "coding_rounds",
            "gap",
            "log2_n",
            "gap_over_logn",
        ],
        title=f"E13: WCT routing/coding round ratio at p={p} vs log n",
    )
    for n in sizes:
        wct = worst_case_topology(n, rng=rng.spawn())
        routing_rounds, coding_rounds = [], []
        for _ in range(trials):
            sim_r = WCTBroadcastSimulator(wct, p=p, rng=rng.spawn())
            sim_c = WCTBroadcastSimulator(wct, p=p, rng=rng.spawn())
            routing = sim_r.run_routing(k=k)
            coding = sim_c.run_coding(k=k)
            if not (routing.success and coding.success):
                raise AssertionError(f"WCT schedule timed out at n={n}")
            routing_rounds.append(routing.rounds)
            coding_rounds.append(coding.rounds)
        gap = mean(routing_rounds) / mean(coding_rounds)
        log_n = math.log2(n)
        table.add_row(
            n,
            k,
            mean(routing_rounds),
            mean(coding_rounds),
            gap,
            log_n,
            gap / log_n,
        )
    return table
