"""E16 (Theorems 27-28): sender faults do not open a routing/coding gap.

The sharpest form of the paper's sender/receiver asymmetry, on one
topology: under *receiver* faults the star's routing-vs-coding gap grows
like log n (independent leaf coins leave stragglers), while under *sender*
faults the same schedules have a Θ(1) gap — a sender fault silences every
leaf at once, so routing wastes nothing coding could save. Combined with
the Lemma 25/26 transformations (E14/E15) this is why the faultless-world
gap structure of Alon et al. carries over to sender faults (Theorems
27-28) but not to receiver faults (Theorem 24).
"""

from __future__ import annotations

from repro.algorithms.multi.star import star_adaptive_routing, star_rs_coding
from repro.core.faults import FaultModel
from repro.experiments.common import register
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "E16",
    "Sender vs receiver fault gap structure",
    "Theorems 27-28: with sender faults the star gap is Θ(1) while with "
    "receiver faults it is Θ(log n) — the worst case gap structure is "
    "fault-model sensitive",
)
def run(scale: str, seed: int) -> Table:
    p = 0.5
    if scale == "smoke":
        leaf_counts = [64]
        k = 16
        trials = 2
    else:
        leaf_counts = [16, 64, 256, 1024]
        k = 64
        trials = 5

    rng = RandomSource(seed)
    table = Table(
        [
            "n_leaves",
            "model",
            "routing_rounds",
            "coding_rounds",
            "gap",
        ],
        title=f"E16: star routing/coding gap by fault model at p={p}",
    )
    for n_leaves in leaf_counts:
        for model in (FaultModel.SENDER, FaultModel.RECEIVER):
            routing_rounds, coding_rounds = [], []
            for _ in range(trials):
                routing = star_adaptive_routing(
                    n_leaves, k, p, rng=rng.spawn(), fault_model=model
                )
                coding = star_rs_coding(
                    n_leaves, k, p, rng=rng.spawn(), fault_model=model
                )
                if not (routing.success and coding.success):
                    raise AssertionError(
                        f"star schedule timed out at n={n_leaves} ({model})"
                    )
                routing_rounds.append(routing.rounds)
                coding_rounds.append(coding.rounds)
            table.add_row(
                n_leaves,
                str(model),
                mean(routing_rounds),
                mean(coding_rounds),
                mean(routing_rounds) / mean(coding_rounds),
            )
    return table
