"""E7 (Lemma 13): RLNC over Robust FASTBC — throughput Ω(1/(log n loglog n))."""

from __future__ import annotations

from repro.algorithms.base import ilog2
from repro.algorithms.multi.rlnc_broadcast import (
    rlnc_decay_broadcast,
    rlnc_robust_fastbc_broadcast,
)
from repro.algorithms.robust_fastbc import block_size
from repro.core.faults import FaultConfig
from repro.experiments.common import register
from repro.topologies.basic import path
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "E7",
    "RLNC-Robust-FASTBC multi-message throughput",
    "Lemma 13: Robust FASTBC + RLNC broadcasts k messages in O(D + "
    "k log n log log n + log^2 n log log n) rounds",
)
def run(scale: str, seed: int) -> Table:
    p = 0.3
    if scale == "smoke":
        sizes = [16]
        ks = [4]
        trials = 2
    else:
        sizes = [32, 64, 128]
        ks = [4, 8, 16]
        trials = 3

    rng = RandomSource(seed)
    table = Table(
        [
            "n",
            "k",
            "robust_rounds",
            "decay_rounds",
            "robust_per_msg",
            "bound_shape",
        ],
        title="E7: RLNC-Robust-FASTBC vs RLNC-Decay on deep paths "
        f"(receiver faults, p={p})",
    )
    for n in sizes:
        network = path(n)
        for k in ks:
            robust_rounds, decay_rounds = [], []
            for _ in range(trials):
                robust = rlnc_robust_fastbc_broadcast(
                    network, k=k, faults=FaultConfig.receiver(p), rng=rng.spawn()
                )
                decay = rlnc_decay_broadcast(
                    network, k=k, faults=FaultConfig.receiver(p), rng=rng.spawn()
                )
                if not (robust.success and decay.success):
                    raise AssertionError(f"timeout at n={n} k={k}")
                robust_rounds.append(robust.rounds)
                decay_rounds.append(decay.rounds)
            log_n = ilog2(n) + 1
            shape = (n - 1) + k * log_n * block_size(n)
            table.add_row(
                n,
                k,
                mean(robust_rounds),
                mean(decay_rounds),
                mean(robust_rounds) / k,
                shape,
            )
    return table
