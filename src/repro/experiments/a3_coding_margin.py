"""A3 (ablation): the Chernoff margin in fixed-length coding schedules.

Lemma 16's schedule sends ``100k + 100 log n`` coded packets — the
``log n`` term is the Chernoff/union-bound margin that covers the slowest
leaf. This ablation fixes the schedule length at ``k/(1-p) + c·log n/(1-p)``
for several margin constants c and measures the success rate: with c = 0 a
constant fraction of runs leaves some leaf short; modest c drives failures
below 1/k.
"""

from __future__ import annotations

import math

from repro.core.engine import Channel
from repro.core.faults import FaultConfig
from repro.core.packets import RSPacket
from repro.experiments.common import register
from repro.topologies.basic import star
from repro.util.rng import RandomSource
from repro.util.tables import Table


def _fixed_length_star_coding(
    n_leaves: int, k: int, p: float, length: int, rng: RandomSource
) -> bool:
    """Run a fixed-length coded broadcast; True iff every leaf got >= k."""
    network = star(n_leaves)
    channel = Channel(network, FaultConfig.receiver(p), rng)
    hub = network.source
    receptions = {v: 0 for v in network.nodes() if v != hub}
    for j in range(length):
        result = channel.transmit({hub: RSPacket(coded_index=j)})
        for delivery in result.deliveries:
            receptions[delivery.receiver] += 1
    return min(receptions.values()) >= k


@register(
    "A3",
    "Ablation: coding schedule length margin",
    "Fixed-length coded broadcasts need a Θ(log n) packet margin beyond "
    "k/(1-p) to cover the slowest leaf (the Lemma 16 constants)",
)
def run(scale: str, seed: int) -> Table:
    p = 0.5
    if scale == "smoke":
        n_leaves, k = 64, 16
        margins = [0.0, 2.0]
        trials = 10
    else:
        n_leaves, k = 256, 32
        margins = [0.0, 0.5, 1.0, 2.0, 4.0]
        trials = 60

    rng = RandomSource(seed)
    log_n = math.log2(n_leaves)
    table = Table(
        ["margin_c", "length", "success_rate", "target_rate"],
        title=f"A3: fixed-length star coding success vs margin "
        f"(n={n_leaves}, k={k}, p={p})",
    )
    for c in margins:
        length = math.ceil((k + c * log_n) / (1.0 - p))
        successes = sum(
            _fixed_length_star_coding(n_leaves, k, p, length, rng.spawn())
            for _ in range(trials)
        )
        table.add_row(c, length, successes / trials, 1.0 - 1.0 / k)
    return table
