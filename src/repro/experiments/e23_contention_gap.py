"""E23: the scheduling-vs-randomness gap under MAC contention.

The paper's channel is a benevolent scheduler: a transmission reaches
every listening neighbor unless *another* simultaneous broadcast collides
with it, and rounds are free. :mod:`repro.mac` replaces that medium with
slotted CSMA/CA — carrier sensing, binary exponential backoff, hidden
terminals — so message loss becomes *endogenous* to the protocol's own
offered load. E23 measures what that does to the paper's two broadcast
styles as the MAC's congestion knob sweeps through the congestion knee:

* **Decay** is already randomized; backoff just adds a second layer of
  (redundant) randomization, so it degrades by roughly the planning
  slowdown ``(cw_min+1)/2``.
* **FASTBC**'s wave is a *deterministic schedule*: the GBST guarantees
  its wave transmissions are collision-free on the paper's channel, but
  the MAC defers and backs them off anyway, desynchronizing the wave —
  one deferred wave slot costs a ``Θ(log n)`` wait, the Lemma 10 failure
  mode with the MAC itself playing the adversary.
* **RLNC-Decay** amortizes the same MAC tax over ``k`` messages.

For each contention level (``cw_min``; aggressive small windows collide
more, patient large windows serialize more) the driver runs all three
arms on matched seeds and certifies the FASTBC-over-Decay overhead with
the PR 5 paired-bootstrap :func:`~repro.analysis.compare.compare` — per
level, because the comparison stack matches arms on scenario dimensions
and the contention level lives in ``channel_params``.
"""

from __future__ import annotations

from statistics import mean

from repro.analysis.compare import compare
from repro.experiments.common import register
from repro.runner import Scenario, expand_grid, run_batch
from repro.util.tables import Table

#: non-swept MAC knobs every level shares (override via --channel-param)
BASE_CHANNEL_PARAMS = {"cw_max": 256, "sense": True}


@register(
    "E23",
    "Contention gap: scheduled waves vs randomized backoff under CSMA/CA",
    "Under a contention MAC, FASTBC's deterministic wave schedule loses "
    "its collision-freedom guarantee and pays per-level overhead against "
    "Decay, certified per contention level by a paired bootstrap CI",
    accepts_adversary=True,
    accepts_channel=True,
)
def run(scale: str, seed: int, adversary=None, channel=None) -> Table:
    if scale == "smoke":
        n = 24
        levels = [2, 16]
        trials = 3
        k = 4
    else:
        n = 48
        levels = [2, 4, 8, 16, 32]
        trials = 8
        k = 8

    channel_params = dict(BASE_CHANNEL_PARAMS)
    if channel is not None:
        kind, overrides = channel
        if kind != "contention":
            raise ValueError(
                f"E23 measures the contention MAC; --channel {kind!r} "
                "does not apply"
            )
        if "cw_min" in overrides:
            raise ValueError(
                "E23 sweeps cw_min itself; override the other MAC knobs "
                "(cw_max, sense, capture)"
            )
        channel_params.update(overrides)

    base = Scenario(
        algorithm="decay",
        topology="bramble",
        topology_params={"n": n},
        adversary=adversary,
        seed=seed,
        channel="contention",
        channel_params={**channel_params, "cw_min": levels[0]},
    )
    arms = (("decay", {}), ("fastbc", {}), ("rlnc_decay", {"k": k}))
    seeds = [seed + trial for trial in range(trials)]

    rows = []
    for level in levels:
        level_params = {**channel_params, "cw_min": level}
        if level_params["cw_max"] < level:
            level_params["cw_max"] = level
        scenarios = []
        for algorithm, params in arms:
            scenarios.extend(
                expand_grid(
                    base.with_(
                        algorithm=algorithm,
                        params=params,
                        channel_params=level_params,
                    ),
                    seeds=seeds,
                )
            )
        reports = run_batch(scenarios)
        comparison = compare(
            reports,
            arm_a={"algorithm": "fastbc"},
            arm_b={"algorithm": "decay"},
            metric="rounds",
            match_on=("seed",),
            seed=seed,
        )
        # match_on is just the seed, so the per-group breakdown collapses
        # to one row carrying the arm means alongside the ratio CI
        group = comparison.rows[0]
        rlnc_per_msg = mean(
            report.extras["rounds_per_message"]
            for report in reports
            if report.algorithm == "rlnc_decay"
        )
        rows.append(
            (
                level,
                group["mean_b"],
                group["mean_a"],
                rlnc_per_msg,
                group["mean_ratio"],
                group["ratio_ci_low"],
                group["ratio_ci_high"],
                group["ratio_ci_low"] > 1.0,
            )
        )

    table = Table(
        [
            "cw_min",
            "decay_rounds",
            "fastbc_rounds",
            "rlnc_per_msg",
            "fastbc/decay",
            "ci_low",
            "ci_high",
            "certified",
        ],
        title=(
            f"E23: FASTBC-over-Decay overhead per contention level "
            f"(bramble n={n}, k={k}, {trials} seeds, paired bootstrap)"
        ),
    )
    for row in rows:
        table.add_row(*row)
    return table
