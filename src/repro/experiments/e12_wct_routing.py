"""E12 (Lemmas 19-22): adaptive routing with receiver faults.

Two halves:

* the *impossibility* side (Lemma 19): on WCT, adaptive routing needs
  Θ(k log^2 n) rounds;
* the *possibility* side (Lemmas 20-21): the pipelined Decay schedule
  routes k messages through any layered network in O(k log^2 n) rounds,
  so Θ(1/log^2 n) is exactly the worst-case routing throughput (Lemma 22).
"""

from __future__ import annotations

from repro.algorithms.multi.pipelined import pipelined_routing_broadcast
from repro.algorithms.multi.wct_sim import WCTBroadcastSimulator
from repro.analysis.predictions import wct_routing_rounds
from repro.core.faults import FaultConfig
from repro.experiments.common import register
from repro.topologies.layered import layered_network
from repro.topologies.wct import worst_case_topology
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "E12",
    "WCT adaptive routing rounds + pipelined upper bound",
    "Lemmas 19-22: adaptive routing on the worst case topology needs "
    "Θ(k log^2 n) rounds, and pipelined Decay achieves O(k log^2 n) on "
    "any layered network — worst-case routing throughput Θ(1/log^2 n)",
)
def run(scale: str, seed: int) -> Table:
    p = 0.5
    if scale == "smoke":
        sizes = [256]
        ks = [4]
        layered_cases = [(3, 4, 4)]
        trials = 2
    else:
        sizes = [256, 1024, 4096]
        ks = [8, 16, 32]
        layered_cases = [(3, 6, 12), (5, 6, 12)]
        trials = 3

    rng = RandomSource(seed)
    table = Table(
        ["topology", "n", "k", "rounds", "rounds_per_msg", "predicted", "ratio"],
        title=f"E12: adaptive routing at p={p} vs the k log^2 n shape",
    )
    for n in sizes:
        wct = worst_case_topology(n, rng=rng.spawn())
        for k in ks:
            rounds = []
            for _ in range(trials):
                sim = WCTBroadcastSimulator(wct, p=p, rng=rng.spawn())
                outcome = sim.run_routing(k=k)
                if not outcome.success:
                    raise AssertionError(f"WCT routing timed out at n={n}")
                rounds.append(outcome.rounds)
            predicted = wct_routing_rounds(n, k, p)
            table.add_row(
                "wct",
                n,
                k,
                mean(rounds),
                mean(rounds) / k,
                predicted,
                mean(rounds) / predicted,
            )
    for layers, width, k in layered_cases:
        network = layered_network(layers, width, rng=seed)
        rounds = []
        for _ in range(trials):
            outcome = pipelined_routing_broadcast(
                network, k=k, faults=FaultConfig.receiver(p), rng=rng.spawn()
            )
            if not outcome.success:
                raise AssertionError(
                    f"pipelined routing failed on {network.name}"
                )
            rounds.append(outcome.rounds)
        predicted = wct_routing_rounds(network.n, k, p)
        table.add_row(
            "layered",
            network.n,
            k,
            mean(rounds),
            mean(rounds) / k,
            predicted,
            mean(rounds) / predicted,
        )
    return table
