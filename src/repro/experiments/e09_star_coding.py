"""E9 (Lemma 16): star Reed-Solomon coding needs only Θ(k) rounds."""

from __future__ import annotations

from repro.algorithms.multi.star import star_rs_coding
from repro.analysis.predictions import star_coding_rounds
from repro.experiments.common import register
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "E9",
    "Star Reed-Solomon coding throughput (receiver faults)",
    "Lemma 16: RS coding on the star needs Θ(k) rounds — throughput Θ(1); "
    "per-message cost flat in n",
)
def run(scale: str, seed: int) -> Table:
    p = 0.5
    if scale == "smoke":
        leaf_counts = [16, 64]
        k = 16
        trials = 2
    else:
        leaf_counts = [16, 64, 256, 1024]
        k = 64
        trials = 5

    rng = RandomSource(seed)
    table = Table(
        ["n_leaves", "k", "rounds", "rounds_per_msg", "predicted", "ratio"],
        title=f"E9: star RS coding at p={p} — per-message cost flat in n",
    )
    for n_leaves in leaf_counts:
        rounds = []
        for _ in range(trials):
            outcome = star_rs_coding(n_leaves, k, p, rng=rng.spawn())
            if not outcome.success:
                raise AssertionError(f"star coding timed out at n={n_leaves}")
            rounds.append(outcome.rounds)
        predicted = star_coding_rounds(k, p)
        table.add_row(
            n_leaves,
            k,
            mean(rounds),
            mean(rounds) / k,
            predicted,
            mean(rounds) / predicted,
        )
    return table
