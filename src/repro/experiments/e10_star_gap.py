"""E10 (Theorem 17): the star's receiver-fault coding gap is Θ(log n)."""

from __future__ import annotations

import math

from repro.algorithms.multi.star import star_adaptive_routing, star_rs_coding
from repro.experiments.common import register
from repro.throughput.gaps import coding_gap
from repro.util.rng import RandomSource
from repro.util.tables import Table


@register(
    "E10",
    "Star coding gap (receiver faults)",
    "Theorem 17: the star topology exhibits a Θ(log n) coding gap with "
    "adaptive routing and receiver faults",
)
def run(scale: str, seed: int) -> Table:
    p = 0.5
    if scale == "smoke":
        leaf_counts = [16, 64]
        k = 16
        trials = 2
    else:
        leaf_counts = [16, 64, 256, 1024]
        k = 64
        trials = 5

    rng = RandomSource(seed)
    table = Table(
        ["n_leaves", "k", "gap", "log2_n_over_2", "gap_over_shape"],
        title=f"E10: star coding gap at p={p} vs the Θ(log n) shape",
    )
    for n_leaves in leaf_counts:

        def routing_runner(k_: int, seed_: int) -> tuple[int, bool]:
            o = star_adaptive_routing(n_leaves, k_, p, rng=seed_)
            return o.rounds, o.success

        def coding_runner(k_: int, seed_: int) -> tuple[int, bool]:
            o = star_rs_coding(n_leaves, k_, p, rng=seed_)
            return o.rounds, o.success

        estimate = coding_gap(
            coding_runner, routing_runner, k=k, trials=trials, rng=rng.spawn()
        )
        # at p = 1/2 routing pays ~log2(n) rounds/message, coding ~2
        shape = math.log2(n_leaves) / 2.0
        table.add_row(
            n_leaves, k, estimate.gap, shape, estimate.gap / shape
        )
    return table
