"""E18 (Lemmas 30, 32): single-link coding and adaptive routing are Θ(k)."""

from __future__ import annotations

from repro.algorithms.multi.single_link import (
    single_link_adaptive_routing,
    single_link_coding,
)
from repro.experiments.common import register
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "E18",
    "Single-link coding and adaptive routing",
    "Lemmas 30/32: both coding and adaptive routing finish in Θ(k) rounds "
    "(~ k/(1-p)) on the single link",
)
def run(scale: str, seed: int) -> Table:
    p = 0.5
    if scale == "smoke":
        ks = [64, 512]
        trials = 5
    else:
        ks = [64, 256, 1024, 4096]
        trials = 20

    rng = RandomSource(seed)
    table = Table(
        [
            "k",
            "adaptive_rounds",
            "coding_rounds",
            "adaptive_per_msg",
            "coding_per_msg",
            "expected_per_msg",
        ],
        title=f"E18: single-link Θ(k) schedules at p={p} — "
        "per-message cost flat in k",
    )
    for k in ks:
        adaptive_rounds, coding_rounds = [], []
        for _ in range(trials):
            adaptive = single_link_adaptive_routing(k, p, rng=rng.spawn())
            coding = single_link_coding(k, p, rng=rng.spawn())
            if not (adaptive.success and coding.success):
                raise AssertionError(f"single-link schedule failed at k={k}")
            adaptive_rounds.append(adaptive.rounds)
            coding_rounds.append(coding.rounds)
        table.add_row(
            k,
            mean(adaptive_rounds),
            mean(coding_rounds),
            mean(adaptive_rounds) / k,
            mean(coding_rounds) / k,
            1.0 / (1.0 - p),
        )
    return table
