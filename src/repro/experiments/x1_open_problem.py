"""X1 (exploration): the paper's open problem — O(D + k log n + polylog).

Section 4.2 closes with: *"We leave as an open problem the existence of an
algorithm that is robust to sender and receiver faults and can broadcast k
messages in O(D + k log n + poly log(n))"*. The dense-wave RLNC candidate
(:func:`repro.algorithms.multi.rlnc_broadcast.rlnc_dense_wave_broadcast`)
removes Robust FASTBC's superround gating so coded generations pipeline at
full rate. This experiment measures it against the paper's two proven
algorithms on deep paths (where the D-vs-k trade-off is sharpest) and on
trees/grids (where same-level interference is the candidate's risk).

This is an exploration, not a claim: a measurement of where a natural
candidate stands, recorded so future work has a baseline.
"""

from __future__ import annotations

from repro.algorithms.base import ilog2
from repro.algorithms.multi.rlnc_broadcast import (
    rlnc_decay_broadcast,
    rlnc_dense_wave_broadcast,
    rlnc_robust_fastbc_broadcast,
)
from repro.core.faults import FaultConfig, FaultModel
from repro.experiments.common import register
from repro.topologies.registry import make_topology
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "X1",
    "Open problem: dense-wave RLNC candidate",
    "Exploration of the paper's open O(D + k log n + polylog n) question: "
    "a full-rate pipelined wave pattern vs Lemmas 12-13 on deep topologies",
)
def run(scale: str, seed: int) -> Table:
    p = 0.3
    if scale == "smoke":
        cases = [("path", 48)]
        ks = [8]
        models = [FaultModel.RECEIVER]
        trials = 2
    else:
        cases = [("path", 64), ("tree", 63), ("grid", 64)]
        ks = [8, 16]
        models = [FaultModel.RECEIVER, FaultModel.SENDER]
        trials = 2

    rng = RandomSource(seed)
    table = Table(
        [
            "family",
            "n",
            "model",
            "k",
            "dense_wave",
            "rlnc_robust",
            "rlnc_decay",
            "dense_per_msg",
            "open_problem_shape",
        ],
        title=f"X1: dense-wave RLNC vs the paper's algorithms (p={p})",
    )
    for family, n in cases:
        network = make_topology(family, n, seed=seed)
        for model in models:
            faults = FaultConfig(model, p)
            for k in ks:
                dense, robust, decay = [], [], []
                for _ in range(trials):
                    dw = rlnc_dense_wave_broadcast(
                        network, k=k, faults=faults, rng=rng.spawn()
                    )
                    rb = rlnc_robust_fastbc_broadcast(
                        network, k=k, faults=faults, rng=rng.spawn()
                    )
                    dc = rlnc_decay_broadcast(
                        network, k=k, faults=faults, rng=rng.spawn()
                    )
                    if not (dw.success and rb.success and dc.success):
                        raise AssertionError(
                            f"timeout on {network.name} {model} k={k}"
                        )
                    dense.append(dw.rounds)
                    robust.append(rb.rounds)
                    decay.append(dc.rounds)
                depth = network.source_eccentricity
                log_n = ilog2(network.n) + 1
                shape = depth + k * log_n
                table.add_row(
                    family,
                    network.n,
                    str(model),
                    k,
                    mean(dense),
                    mean(robust),
                    mean(decay),
                    mean(dense) / k,
                    shape,
                )
    return table
