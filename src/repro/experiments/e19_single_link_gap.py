"""E19 (Lemmas 31, 33): single-link gaps — Θ(log k) non-adaptive, Θ(1)
adaptive."""

from __future__ import annotations

import math

from repro.algorithms.multi.single_link import (
    single_link_adaptive_routing,
    single_link_coding,
    single_link_nonadaptive_routing,
)
from repro.experiments.common import register
from repro.throughput.gaps import coding_gap
from repro.util.rng import RandomSource
from repro.util.tables import Table


@register(
    "E19",
    "Single-link coding gaps",
    "Lemma 31: Θ(log k) gap vs non-adaptive routing; Lemma 33: Θ(1) gap "
    "vs adaptive routing — adaptivity alone closes the single-link gap",
)
def run(scale: str, seed: int) -> Table:
    p = 0.5
    if scale == "smoke":
        ks = [64, 512]
        trials = 4
    else:
        ks = [64, 256, 1024, 4096]
        trials = 10

    rng = RandomSource(seed)
    table = Table(
        [
            "k",
            "nonadaptive_gap",
            "adaptive_gap",
            "log2_k",
            "nonadaptive_gap_over_logk",
        ],
        title=f"E19: single-link gaps at p={p}",
    )

    def coding_runner(k_: int, seed_: int) -> tuple[int, bool]:
        o = single_link_coding(k_, p, rng=seed_)
        return o.rounds, o.success

    def adaptive_runner(k_: int, seed_: int) -> tuple[int, bool]:
        o = single_link_adaptive_routing(k_, p, rng=seed_)
        return o.rounds, o.success

    def nonadaptive_runner(k_: int, seed_: int) -> tuple[int, bool]:
        o = single_link_nonadaptive_routing(k_, p, rng=seed_)
        return o.rounds, o.success

    for k in ks:
        nonadaptive = coding_gap(
            coding_runner, nonadaptive_runner, k=k, trials=trials, rng=rng.spawn()
        )
        adaptive = coding_gap(
            coding_runner, adaptive_runner, k=k, trials=trials, rng=rng.spawn()
        )
        table.add_row(
            k,
            nonadaptive.gap,
            adaptive.gap,
            math.log2(k),
            nonadaptive.gap / math.log2(k),
        )
    return table
