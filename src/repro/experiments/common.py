"""Experiment framework: registration, scales, and shared sweep helpers.

Every experiment driver exposes ``run(scale, seed) -> Table`` and registers
itself with :func:`register`. Two scales exist:

* ``"smoke"`` — seconds; used by the test suite to validate shape and
  well-formedness;
* ``"full"`` — the EXPERIMENTS.md scale, used by the benchmarks.

Drivers that compare algorithms head-to-head should build on the
scenario helpers (:func:`scenario_sweep`, :func:`report_table`): they run
a declarative :class:`~repro.runner.Scenario` grid through the unified
runner — optionally across a process pool — and tabulate the canonical
:class:`~repro.runner.RunReport` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.runner import RunReport, Scenario, sweep
from repro.util.tables import Table

__all__ = [
    "Experiment",
    "register",
    "get_experiment",
    "all_experiments",
    "REPORT_COLUMNS",
    "report_table",
    "scenario_sweep",
]

_REGISTRY: dict[str, "Experiment"] = {}

VALID_SCALES = ("smoke", "full")


@dataclass(frozen=True)
class Experiment:
    """A registered experiment driver.

    ``accepts_adversary`` marks drivers whose ``run`` takes a third
    ``adversary`` argument (an
    :class:`~repro.core.faults.AdversaryConfig` or None) so the CLI can
    thread ``--adversary`` through; the classic reproductions pin their
    fault structure and reject the override. ``accepts_channel`` marks
    drivers that additionally take a ``channel`` keyword — a validated
    ``(kind, params)`` pair from ``--channel``/``--channel-param`` — to
    override the channel knobs the driver would otherwise default.
    """

    id: str
    title: str
    claim: str
    run: Callable[..., Table]
    accepts_adversary: bool = False
    accepts_channel: bool = False

    def __call__(
        self, scale: str = "smoke", seed: int = 0, adversary=None, channel=None
    ) -> Table:
        if scale not in VALID_SCALES:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {VALID_SCALES}"
            )
        if channel is not None and not self.accepts_channel:
            raise ValueError(
                f"experiment {self.id} does not accept a channel override "
                "(its channel model is part of the reproduced claim)"
            )
        if not self.accepts_adversary:
            if adversary is not None:
                raise ValueError(
                    f"experiment {self.id} does not accept an adversary "
                    "override (its fault structure is part of the "
                    "reproduced claim)"
                )
            if self.accepts_channel:
                return self.run(scale, seed, channel=channel)
            return self.run(scale, seed)
        if self.accepts_channel:
            return self.run(scale, seed, adversary, channel=channel)
        return self.run(scale, seed, adversary)


def register(
    id: str,
    title: str,
    claim: str,
    accepts_adversary: bool = False,
    accepts_channel: bool = False,
) -> Callable[[Callable[..., Table]], Experiment]:
    """Decorator registering an experiment driver under ``id``."""

    def decorator(fn: Callable[..., Table]) -> Experiment:
        if id in _REGISTRY:
            raise ValueError(f"experiment id {id!r} already registered")
        experiment = Experiment(
            id=id,
            title=title,
            claim=claim,
            run=fn,
            accepts_adversary=accepts_adversary,
            accepts_channel=accepts_channel,
        )
        _REGISTRY[id] = experiment
        return experiment

    return decorator


def get_experiment(id: str) -> Experiment:
    """Look up a registered experiment by id (e.g. ``"E4"``)."""
    # importing the package registers every driver
    import repro.experiments  # noqa: F401

    try:
        return _REGISTRY[id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {id!r}; known: {known}") from None


#: the canonical columns every report row tabulates to
REPORT_COLUMNS = (
    "algorithm",
    "topology",
    "n",
    "seed",
    "success",
    "rounds",
    "informed",
    "total",
)


def report_table(reports: Iterable[RunReport], title: str = "") -> Table:
    """Tabulate run reports with the canonical sweep columns."""
    table = Table(list(REPORT_COLUMNS), title=title)
    for report in reports:
        scenario = report.scenario
        table.add_row(
            report.algorithm,
            scenario.get("topology", "?"),
            report.network_n,
            scenario.get("seed", 0),
            report.success,
            report.rounds,
            report.informed,
            report.total,
        )
    return table


def scenario_sweep(
    base: Scenario,
    seeds: Optional[Iterable[int]] = None,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    processes: Optional[int] = None,
    title: str = "",
    store: Optional[Any] = None,
) -> Table:
    """Run a scenario grid (see :func:`repro.runner.sweep`) into a Table.

    ``store`` (a :class:`~repro.store.ResultStore`) makes the sweep
    resumable: previously-computed scenarios are served from the store
    and fresh ones are recorded into it.
    """
    return report_table(
        sweep(base, seeds=seeds, grid=grid, processes=processes, store=store),
        title=title,
    )


def all_experiments() -> list[Experiment]:
    """All registered experiments in id order."""
    import repro.experiments  # noqa: F401

    return [
        _REGISTRY[key]
        for key in sorted(_REGISTRY, key=lambda k: (k[0], int(k[1:]) if k[1:].isdigit() else 0))
    ]
