"""E15 (Lemma 26): coding schedules survive either fault model at ~(1-p)."""

from __future__ import annotations

from repro.core.faults import FaultModel
from repro.experiments.common import register
from repro.schedules.schedule import (
    execute_reference,
    path_pipeline_schedule,
    star_schedule,
)
from repro.schedules.transforms import transform_coding_schedule
from repro.util.rng import RandomSource
from repro.util.tables import Table


@register(
    "E15",
    "Lemma 26 coding transformation overhead",
    "Lemma 26: any faultless coding schedule becomes robust to sender OR "
    "receiver faults with throughput (1-p)(1-o(1))",
)
def run(scale: str, seed: int) -> Table:
    if scale == "smoke":
        schedules = [("star", star_schedule(8, 4))]
        probabilities = [0.3]
        xs = [32]
        models = [FaultModel.RECEIVER]
        trials = 2
    else:
        schedules = [
            ("star", star_schedule(32, 8)),
            ("path-pipeline", path_pipeline_schedule(12, 8)),
        ]
        probabilities = [0.1, 0.3, 0.5]
        xs = [16, 64]
        models = [FaultModel.SENDER, FaultModel.RECEIVER]
        trials = 3

    rng = RandomSource(seed)
    table = Table(
        [
            "schedule",
            "model",
            "p",
            "x",
            "success_rate",
            "throughput_ratio",
            "one_minus_p",
        ],
        title="E15: Lemma 26 transformed-coding throughput vs (1-p)",
    )
    for name, schedule in schedules:
        reference = execute_reference(schedule)
        for model in models:
            for p in probabilities:
                for x in xs:
                    successes, ratios = 0, []
                    for _ in range(trials):
                        outcome = transform_coding_schedule(
                            schedule,
                            x=x,
                            p=p,
                            fault_model=model,
                            rng=rng.spawn(),
                            reference=reference,
                        )
                        successes += outcome.success
                        ratios.append(outcome.throughput_ratio)
                    table.add_row(
                        name,
                        str(model),
                        p,
                        x,
                        successes / trials,
                        sum(ratios) / len(ratios),
                        1.0 - p,
                    )
    return table
