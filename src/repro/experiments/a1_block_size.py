"""A1 (ablation): Robust FASTBC's block size S = Θ(log log n).

The design choice Theorem 11 pivots on: blocks of S = Θ(log log n) levels.
S = 1 recovers plain-FASTBC fragility (every fault stalls the wave for a
full period); very large S wastes superround time (a block broadcasts for
c·S even rounds whether or not the message needs them) and raises the
chance of falling inactive mid-block. The sweet spot is the paper's
log log n.
"""

from __future__ import annotations

from repro.algorithms.base import ilog2
from repro.algorithms.robust_fastbc import block_size, robust_fastbc_broadcast
from repro.core.faults import FaultConfig
from repro.experiments.common import register
from repro.topologies.basic import path
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "A1",
    "Ablation: Robust FASTBC block size",
    "S = Θ(log log n) balances fault absorption (S > 1) against "
    "superround overhead (S << log n)",
)
def run(scale: str, seed: int) -> Table:
    p = 0.5
    if scale == "smoke":
        sizes = [128]
        trials = 2
    else:
        sizes = [256, 512]
        trials = 4

    rng = RandomSource(seed)
    table = Table(
        ["n", "S", "S_label", "rounds", "per_hop"],
        title=f"A1: wave-only Robust FASTBC per-hop cost vs block size "
        f"(p={p})",
    )
    for n in sizes:
        network = path(n)
        paper_s = block_size(n)
        candidates = [
            (1, "1 (fragile)"),
            (paper_s, f"{paper_s} (paper: loglog n)"),
            (max(2, ilog2(n)), f"{max(2, ilog2(n))} (log n)"),
        ]
        for s, label in candidates:
            rounds = []
            for _ in range(trials):
                outcome = robust_fastbc_broadcast(
                    network,
                    faults=FaultConfig.receiver(p),
                    rng=rng.spawn(),
                    block=s,
                    decay_interleave=False,
                )
                if not outcome.success:
                    raise AssertionError(
                        f"Robust FASTBC (S={s}) timed out on path-{n}"
                    )
                rounds.append(outcome.rounds)
            table.add_row(n, s, label, mean(rounds), mean(rounds) / (n - 1))
    return table
