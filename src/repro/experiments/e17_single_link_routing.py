"""E17 (Lemma 29): single-link non-adaptive routing costs Θ(k log k)."""

from __future__ import annotations

import math

from repro.algorithms.multi.single_link import (
    minimal_nonadaptive_repetitions,
    single_link_nonadaptive_routing,
)
from repro.experiments.common import register
from repro.util.rng import RandomSource
from repro.util.tables import Table


@register(
    "E17",
    "Single-link non-adaptive routing",
    "Lemma 29: non-adaptive routing on a single link needs Θ(k log k) "
    "rounds for failure probability <= 1/k",
)
def run(scale: str, seed: int) -> Table:
    p = 0.5
    if scale == "smoke":
        ks = [16, 256]
        trials = 10
    else:
        ks = [16, 64, 256, 1024, 4096]
        trials = 40

    rng = RandomSource(seed)
    table = Table(
        [
            "k",
            "repetitions",
            "rounds",
            "rounds_per_msg",
            "log2_k",
            "success_rate",
        ],
        title=f"E17: single-link non-adaptive routing at p={p} — "
        "rounds/message ~ log k",
    )
    for k in ks:
        repetitions = minimal_nonadaptive_repetitions(k, p)
        successes = 0
        rounds = 0
        for _ in range(trials):
            outcome = single_link_nonadaptive_routing(k, p, rng=rng.spawn())
            successes += outcome.success
            rounds = outcome.rounds  # deterministic given k and p
        table.add_row(
            k,
            repetitions,
            rounds,
            rounds / k,
            math.log2(k),
            successes / trials,
        )
    return table
