"""E6 (Lemma 12): RLNC-Decay broadcasts k messages at throughput Ω(1/log n)."""

from __future__ import annotations

from repro.algorithms.base import ilog2
from repro.algorithms.multi.rlnc_broadcast import rlnc_decay_broadcast
from repro.core.faults import FaultConfig
from repro.experiments.common import register
from repro.topologies.registry import make_topology
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "E6",
    "RLNC-Decay multi-message throughput",
    "Lemma 12: Decay + RLNC broadcasts k messages in O(D log n + k log n "
    "+ log^2 n) rounds — Ω(1/log n) messages per round",
)
def run(scale: str, seed: int) -> Table:
    p = 0.3
    if scale == "smoke":
        cases = [("star", 24), ("path", 16)]
        ks = [4, 8]
        trials = 2
    else:
        cases = [("star", 64), ("path", 48), ("grid", 49)]
        ks = [4, 8, 16, 32]
        trials = 3

    rng = RandomSource(seed)
    table = Table(
        [
            "family",
            "n",
            "k",
            "rounds",
            "rounds_per_msg",
            "log_n",
            "per_msg_over_logn",
        ],
        title="E6: RLNC-Decay rounds per message vs log n (receiver faults)",
    )
    for family, n in cases:
        network = make_topology(family, n, seed=seed)
        for k in ks:
            rounds = []
            for _ in range(trials):
                outcome = rlnc_decay_broadcast(
                    network, k=k, faults=FaultConfig.receiver(p), rng=rng.spawn()
                )
                if not outcome.success:
                    raise AssertionError(
                        f"RLNC-Decay timed out on {network.name} k={k}"
                    )
                rounds.append(outcome.rounds)
            log_n = ilog2(network.n) + 1
            per_msg = mean(rounds) / k
            table.add_row(
                family, network.n, k, mean(rounds), per_msg, log_n,
                per_msg / log_n,
            )
    return table
