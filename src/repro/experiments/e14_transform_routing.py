"""E14 (Lemma 25): routing schedules survive sender faults at ~(1-p) cost."""

from __future__ import annotations

from repro.experiments.common import register
from repro.schedules.schedule import (
    execute_reference,
    path_pipeline_schedule,
    star_schedule,
)
from repro.schedules.transforms import transform_routing_schedule
from repro.util.rng import RandomSource
from repro.util.tables import Table


@register(
    "E14",
    "Lemma 25 routing transformation overhead",
    "Lemma 25: any faultless routing schedule becomes sender-fault robust "
    "with throughput (1-p)(1-o(1)) — constant overhead",
)
def run(scale: str, seed: int) -> Table:
    if scale == "smoke":
        schedules = [("star", star_schedule(8, 4))]
        probabilities = [0.3]
        xs = [16]
        trials = 2
    else:
        schedules = [
            ("star", star_schedule(32, 8)),
            ("path-pipeline", path_pipeline_schedule(12, 8)),
        ]
        probabilities = [0.1, 0.3, 0.5]
        xs = [8, 32, 128]
        trials = 3

    rng = RandomSource(seed)
    table = Table(
        [
            "schedule",
            "p",
            "x",
            "success_rate",
            "throughput_ratio",
            "one_minus_p",
        ],
        title="E14: Lemma 25 transformed-schedule throughput vs (1-p)",
    )
    for name, schedule in schedules:
        reference = execute_reference(schedule)
        for p in probabilities:
            for x in xs:
                successes, ratios = 0, []
                for _ in range(trials):
                    outcome = transform_routing_schedule(
                        schedule, x=x, p=p, rng=rng.spawn(), reference=reference
                    )
                    successes += outcome.success
                    ratios.append(outcome.throughput_ratio)
                table.add_row(
                    name,
                    p,
                    x,
                    successes / trials,
                    sum(ratios) / len(ratios),
                    1.0 - p,
                )
    return table
