"""E2 (Lemma 9): Decay tolerates faults with a 1/(1-p) slowdown."""

from __future__ import annotations

from repro.algorithms.decay import decay_broadcast
from repro.core.faults import FaultConfig, FaultModel
from repro.experiments.common import register
from repro.topologies.registry import make_topology
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "E2",
    "Decay robustness under sender/receiver faults",
    "Lemma 9: noisy Decay needs O(log n/(1-p) (D + log n)) rounds — the "
    "same algorithm, a 1/(1-p) slowdown",
)
def run(scale: str, seed: int) -> Table:
    if scale == "smoke":
        n = 48
        probabilities = [0.0, 0.5]
        models = [FaultModel.RECEIVER]
        families = ["path"]
        trials = 2
    else:
        n = 192
        probabilities = [0.0, 0.1, 0.3, 0.5, 0.7]
        models = [FaultModel.SENDER, FaultModel.RECEIVER]
        families = ["path", "star", "gnp"]
        trials = 5

    rng = RandomSource(seed)
    table = Table(
        [
            "family",
            "model",
            "p",
            "rounds",
            "slowdown",
            "predicted_slowdown",
            "success_rate",
        ],
        title="E2: noisy Decay slowdown vs the Lemma 9 prediction 1/(1-p)",
    )
    for family in families:
        network = make_topology(family, n, seed=seed)
        baseline = None
        for model in models:
            for p in probabilities:
                faults = (
                    FaultConfig.faultless()
                    if p == 0.0
                    else FaultConfig(model, p)
                )
                rounds, successes = [], 0
                for _ in range(trials):
                    outcome = decay_broadcast(
                        network, faults=faults, rng=rng.spawn()
                    )
                    successes += outcome.success
                    rounds.append(outcome.rounds)
                measured = mean(rounds)
                if p == 0.0:
                    baseline = measured
                slowdown = measured / baseline if baseline else 1.0
                table.add_row(
                    family,
                    str(model),
                    p,
                    measured,
                    slowdown,
                    1.0 / (1.0 - p),
                    successes / trials,
                )
    return table
