"""E1 (Lemma 6): faultless Decay completes in O(D log n + log^2 n) rounds."""

from __future__ import annotations

from repro.algorithms.decay import decay_broadcast
from repro.analysis.predictions import decay_rounds
from repro.experiments.common import register
from repro.topologies.registry import make_topology
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "E1",
    "Faultless Decay round complexity",
    "Lemma 6: Decay spreads one message in O(D log n + log^2 n) rounds",
)
def run(scale: str, seed: int) -> Table:
    if scale == "smoke":
        sizes = [32, 64]
        families = ["path", "star"]
        trials = 2
    else:
        sizes = [64, 128, 256, 512, 1024]
        families = ["path", "star", "grid", "gnp"]
        trials = 5

    rng = RandomSource(seed)
    table = Table(
        ["family", "n", "D", "rounds", "predicted", "ratio"],
        title="E1: faultless Decay vs the Lemma 6 shape D log n + log^2 n",
    )
    for family in families:
        for n in sizes:
            network = make_topology(family, n, seed=seed)
            rounds = []
            for _ in range(trials):
                outcome = decay_broadcast(network, rng=rng.spawn())
                if not outcome.success:
                    raise AssertionError(
                        f"faultless Decay timed out on {network.name}"
                    )
                rounds.append(outcome.rounds)
            depth = network.source_eccentricity
            predicted = decay_rounds(network.n, depth)
            measured = mean(rounds)
            table.add_row(
                family,
                network.n,
                depth,
                measured,
                predicted,
                measured / predicted,
            )
    return table
