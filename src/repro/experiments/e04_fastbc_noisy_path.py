"""E4 (Lemma 10): noisy FASTBC on a path costs Θ(p/(1-p) D log n + D/(1-p)).

The Lemma 10 recurrence models the *wave* mechanism: a dropped hop stalls
the message for a full Θ(log n) wave period. We measure the isolated wave
(``decay_interleave=False``) so the per-hop cost tracks the recurrence
directly, then report the full algorithm alongside for context.
"""

from __future__ import annotations

from repro.algorithms.fastbc import fastbc_broadcast
from repro.analysis.predictions import fastbc_noisy_path_rounds
from repro.core.faults import FaultConfig
from repro.experiments.common import register
from repro.topologies.basic import path
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "E4",
    "FASTBC degradation under faults (path)",
    "Lemma 10: noisy FASTBC on a path needs Θ(p/(1-p) D log n + D/(1-p)) "
    "rounds — per-hop cost grows linearly in p/(1-p) log n",
)
def run(scale: str, seed: int) -> Table:
    if scale == "smoke":
        sizes = [64, 128]
        probabilities = [0.0, 0.5]
        trials = 2
    else:
        sizes = [64, 128, 256, 512]
        probabilities = [0.0, 0.2, 0.3, 0.5, 0.6]
        trials = 4

    rng = RandomSource(seed)
    table = Table(
        [
            "n",
            "p",
            "wave_rounds",
            "wave_per_hop",
            "full_rounds",
            "predicted",
            "wave_over_predicted",
        ],
        title="E4: noisy FASTBC per-hop cost vs Lemma 10's recurrence",
    )
    for n in sizes:
        network = path(n)
        for p in probabilities:
            faults = (
                FaultConfig.faultless() if p == 0.0 else FaultConfig.receiver(p)
            )
            wave_rounds, full_rounds = [], []
            for _ in range(trials):
                wave = fastbc_broadcast(
                    network,
                    faults=faults,
                    rng=rng.spawn(),
                    decay_interleave=False,
                )
                full = fastbc_broadcast(network, faults=faults, rng=rng.spawn())
                if not (wave.success and full.success):
                    raise AssertionError(
                        f"FASTBC timed out on path-{n} at p={p}"
                    )
                wave_rounds.append(wave.rounds)
                full_rounds.append(full.rounds)
            predicted = fastbc_noisy_path_rounds(n, n - 1, p)
            wave_mean = mean(wave_rounds)
            table.add_row(
                n,
                p,
                wave_mean,
                wave_mean / (n - 1),
                mean(full_rounds),
                predicted,
                wave_mean / predicted,
            )
    return table
