"""Experiment drivers: one per reproduced table/figure/statement.

Importing this package registers every driver; use
:func:`repro.experiments.common.get_experiment` or the ``repro`` CLI to
run them. See DESIGN.md section 4 for the experiment index and
EXPERIMENTS.md for recorded results.
"""

from repro.experiments import (  # noqa: F401  (import = registration)
    a1_block_size,
    a2_repetition,
    a3_coding_margin,
    e01_decay_faultless,
    e02_decay_noisy,
    e03_fastbc_faultless,
    e04_fastbc_noisy_path,
    e05_robust_fastbc,
    e06_rlnc_decay,
    e07_rlnc_fastbc,
    e08_star_routing,
    e09_star_coding,
    e10_star_gap,
    e11_wct_structure,
    e12_wct_routing,
    e13_wct_gap,
    e14_transform_routing,
    e15_transform_coding,
    e16_sender_fault_gaps,
    e17_single_link_routing,
    e18_single_link_coding,
    e19_single_link_gap,
    e20_adversary_gap,
    e21_certified_gap,
    e22_timeline_wavefront,
    e23_contention_gap,
    x1_open_problem,
)
from repro.experiments.common import Experiment, all_experiments, get_experiment

__all__ = ["Experiment", "all_experiments", "get_experiment"]
