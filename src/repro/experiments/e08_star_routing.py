"""E8 (Lemma 15): star adaptive routing needs Θ(k log n) rounds."""

from __future__ import annotations

import math

from repro.algorithms.multi.star import star_adaptive_routing
from repro.analysis.predictions import star_routing_rounds
from repro.experiments.common import register
from repro.util.rng import RandomSource
from repro.util.stats import mean
from repro.util.tables import Table


@register(
    "E8",
    "Star adaptive routing throughput (receiver faults)",
    "Lemma 15: adaptive routing on the star needs Θ(k log n) rounds — "
    "throughput Θ(1/log n)",
)
def run(scale: str, seed: int) -> Table:
    p = 0.5
    if scale == "smoke":
        leaf_counts = [16, 64]
        k = 16
        trials = 2
    else:
        leaf_counts = [16, 64, 256, 1024]
        k = 64
        trials = 5

    rng = RandomSource(seed)
    table = Table(
        [
            "n_leaves",
            "k",
            "rounds",
            "rounds_per_msg",
            "log2_n",
            "predicted",
            "ratio",
        ],
        title=f"E8: star adaptive routing at p={p} — per-message cost ~ log n",
    )
    for n_leaves in leaf_counts:
        rounds = []
        for _ in range(trials):
            outcome = star_adaptive_routing(n_leaves, k, p, rng=rng.spawn())
            if not outcome.success:
                raise AssertionError(f"star routing timed out at n={n_leaves}")
            rounds.append(outcome.rounds)
        predicted = star_routing_rounds(n_leaves, k, p)
        table.add_row(
            n_leaves,
            k,
            mean(rounds),
            mean(rounds) / k,
            math.log2(n_leaves),
            predicted,
            mean(rounds) / predicted,
        )
    return table
