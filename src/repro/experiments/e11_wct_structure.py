"""E11 (Lemma 18): at most O(1/log n) of WCT clusters hear per round."""

from __future__ import annotations

import math

from repro.experiments.common import register
from repro.topologies.wct import worst_case_topology
from repro.util.rng import RandomSource
from repro.util.tables import Table


@register(
    "E11",
    "WCT per-round informed-cluster fraction",
    "Lemma 18: in any round at most an O(1/log n) fraction of WCT "
    "clusters receives a packet collision-free",
)
def run(scale: str, seed: int) -> Table:
    if scale == "smoke":
        sizes = [256, 1024]
        trials = 8
    else:
        sizes = [256, 1024, 4096, 16384]
        trials = 30

    rng = RandomSource(seed)
    table = Table(
        [
            "n",
            "senders",
            "clusters",
            "max_fraction",
            "one_over_log2n",
            "fraction_times_logn",
        ],
        title="E11: worst observed informed-cluster fraction vs 1/log n",
    )
    for n in sizes:
        wct = worst_case_topology(n, rng=rng.spawn())
        fraction = wct.max_singleton_fraction(
            trials_per_size=trials, rng=rng.spawn()
        )
        log_n = math.log2(n)
        table.add_row(
            n,
            wct.num_senders,
            wct.num_clusters,
            fraction,
            1.0 / log_n,
            fraction * log_n,
        )
    return table
