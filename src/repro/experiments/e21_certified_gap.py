"""E21: the coded-vs-uncoded gap, certified with CIs and fitted exponents.

The paper's headline is quantitative — uncoded broadcast in noisy radio
networks pays a multiplicative ``Θ(log n)``-type overhead that
network-coded (RLNC) gossip avoids — and earlier experiments only let
you eyeball that gap from raw tables. E21 runs the two arms on *matched
seeds* (same path, same receiver noise, same randomness budget) and
pushes the reports through the :mod:`repro.analysis` stack:

* per-message rounds per arm and size with seeded-bootstrap CIs
  (:func:`~repro.analysis.aggregate.aggregate` semantics via
  :func:`~repro.analysis.compare.compare`'s matched pairs);
* the per-seed overhead ratio ``decay / rlnc_decay`` with a bootstrap CI
  — the gap is *certified* when that CI excludes 1.0 (plus an exact
  sign test, reported in the title);
* fitted per-message scaling exponents for both arms
  (:func:`~repro.analysis.fit.fit`), so the table states the measured
  complexity instead of a column of raw round counts.

Per-message normalization is what makes the arms commensurable: Decay
delivers one message per run; RLNC-Decay delivers ``k`` per run and
amortizes its ``D log n`` wave cost across them, which is exactly the
throughput framing of the paper's Lemma 12 ladder.

The same certification runs store-native in CI: ``repro sweep --store``
the two arms, then ``repro analyze compare --metric
rounds_per_message`` reads the store and must report
``significant: true``.
"""

from __future__ import annotations

from repro.analysis.compare import compare
from repro.analysis.fit import fit
from repro.core.faults import FaultConfig
from repro.experiments.common import register
from repro.runner import Scenario, expand_grid, run_batch
from repro.util.tables import Table

#: receiver-fault probability both arms face
FAULT_P = 0.3


@register(
    "E21",
    "Certified coded-vs-uncoded gap (bootstrap CIs + fitted exponents)",
    "The multiplicative overhead of uncoded Decay over RLNC gossip on "
    "matched noisy runs is certified by a bootstrap CI excluding 1.0, "
    "with fitted per-message scaling exponents for both arms",
)
def run(scale: str, seed: int) -> Table:
    if scale == "smoke":
        sizes = [24, 32, 40]
        k = 16
        trials = 3
    else:
        sizes = [24, 32, 48, 64, 96]
        k = 16
        trials = 8

    base = Scenario(
        algorithm="decay",
        topology="path",
        topology_params={"n": sizes[0]},
        faults=FaultConfig.receiver(FAULT_P),
        seed=seed,
    )
    scenarios = []
    for algorithm, params in (("decay", {}), ("rlnc_decay", {"k": k})):
        scenarios.extend(
            expand_grid(
                base.with_(algorithm=algorithm, params=params),
                seeds=[seed + trial for trial in range(trials)],
                grid={"n": sizes},
            )
        )
    reports = run_batch(scenarios)

    comparison = compare(
        reports,
        arm_a={"algorithm": "decay"},
        arm_b={"algorithm": "rlnc_decay"},
        metric="rounds_per_message",
        match_on=("n", "seed"),
        seed=seed,
    )
    scaling = fit(
        reports, by=("algorithm",), metric="rounds_per_message", seed=seed
    )
    exponents = {
        row["algorithm"]: row["exponent"] for row in scaling.rows
    }
    summary = comparison.summary

    table = Table(
        [
            "n",
            "decay_per_msg",
            "rlnc_per_msg",
            "overhead",
            "ci_low",
            "ci_high",
            "certified",
        ],
        title=(
            f"E21: uncoded/coded per-message overhead on noisy paths "
            f"(k={k}, p={FAULT_P}) — overall {summary['mean_ratio']:.2f}x, "
            f"CI [{summary['ratio_ci_low']:.2f}, "
            f"{summary['ratio_ci_high']:.2f}], "
            f"sign-test p={summary['sign_test_p']:.3g}; fitted exponents "
            f"decay {exponents.get('decay', float('nan')):.2f} vs "
            f"rlnc {exponents.get('rlnc_decay', float('nan')):.2f}"
        ),
    )
    for row in comparison.rows:
        table.add_row(
            row["n"],
            row["mean_a"],
            row["mean_b"],
            row["mean_ratio"],
            row["ratio_ci_low"],
            row["ratio_ci_high"],
            row["ratio_ci_low"] > 1.0,
        )
    return table
