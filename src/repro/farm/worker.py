"""The farm worker: pull leases, execute, push canonical bytes back.

``repro worker --connect URL`` runs one :class:`FarmWorker` against a
coordinator (``repro serve --workers remote``). The loop is the whole
protocol:

1. ``POST /workers`` — register, learn the lease chunk size and the
   heartbeat interval;
2. ``POST /leases`` — check out up to N scenarios (sleep briefly when
   the queue is idle);
3. execute the chunk through the exact same
   :func:`repro.runner.run_batch` path a local sweep uses, against a
   private in-memory :class:`~repro.store.ResultStore` — so a scenario
   the worker has seen before is a local cache hit, and the canonical
   bytes produced are identical to any other worker's by the
   determinism contract;
4. a daemon heartbeat thread extends the lease while step 3 runs;
5. ``POST /leases/<id>/complete`` — push every canonical report dict
   plus the executed/cached split for the coordinator's accounting.

A worker that dies anywhere in 2–5 needs no cleanup: its lease expires
at the coordinator and the scenarios are re-leased. A worker whose lease
expired under it (a long GC pause, a network partition) still pushes
whatever it finished — the coordinator absorbs late results by content
address — but the heartbeat thread also *signals the executing chunk*
when it learns the lease is gone (HTTP 410), so execution stops at the
next scenario boundary instead of computing a whole chunk someone else
is already redoing.

The worker survives the coordinator as well as vice versa: transport
errors in the lease loop poll-and-retry instead of crashing, and an
HTTP 404 ``unknown worker`` — the signature of a coordinator that
restarted and forgot the fleet — re-registers under a fresh id and
carries on. A coordinator bounce mid-sweep therefore costs the fleet a
few poll intervals, not a manual restart.

For the chaos harness (:mod:`repro.chaos`) the worker exposes failure
knobs of its own: ``chaos_kill_after=N`` hard-kills the process
(``os._exit``) after N completed leases — a real SIGKILL-style death,
no cleanup, mid-fleet — and ``chaos_heartbeat_factor`` stretches the
heartbeat interval past the lease timeout so expiry paths actually run.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Optional

from repro.runner import RunReport, Scenario, run_batch
from repro.service.client import ServiceClient, ServiceError
from repro.store import ResultStore
from repro.telemetry.metrics import METRICS as _METRICS
from repro.telemetry.tracing import TRACER as _TRACER
from repro.telemetry.tracing import trace_id_for_keys

__all__ = ["FarmWorker", "run_worker"]

_M_EXECUTED = _METRICS.counter(
    "repro_worker_scenarios_executed_total", "scenarios this worker ran"
)
_M_CACHED = _METRICS.counter(
    "repro_worker_scenarios_cached_total", "scenarios answered from cache"
)
_M_LEASES_DONE = _METRICS.counter(
    "repro_worker_leases_completed_total", "leases completed by this worker"
)
_M_LEASES_ABANDONED = _METRICS.counter(
    "repro_worker_leases_abandoned_total", "leases abandoned mid-run"
)


class FarmWorker:
    """One lease-pulling worker process (see module docstring).

    Parameters
    ----------
    url:
        The coordinator's base URL.
    name:
        Reported on registration (default: ``host:pid``).
    max_scenarios:
        Cap on scenarios per lease (None: the coordinator's chunk size).
    processes:
        Per-chunk ``run_batch`` process fan-out (None: in-thread).
    poll:
        Seconds to sleep between lease polls when the queue is idle.
    until_idle:
        Exit the loop once the coordinator reports an idle queue
        (used by the smoke and the benchmark; the CLI default runs
        until interrupted).
    deadline:
        Total per-call deadline handed to the :class:`ServiceClient`
        (None: unbounded) — the cap on how long a black-holed
        coordinator can stall any single worker call.
    chaos_kill_after:
        Hard-kill the process (``os._exit(42)``) after completing this
        many leases. Fault injection for the chaos smoke only.
    chaos_heartbeat_factor:
        Multiply the coordinator-advertised heartbeat interval (values
        > 3 outrun the lease timeout, forcing expiries). Fault
        injection for the chaos smoke only.
    """

    def __init__(
        self,
        url: str,
        name: str = "",
        max_scenarios: Optional[int] = None,
        processes: Optional[int] = None,
        poll: float = 0.5,
        until_idle: bool = False,
        verbose: bool = False,
        deadline: Optional[float] = None,
        chaos_kill_after: Optional[int] = None,
        chaos_heartbeat_factor: float = 1.0,
    ) -> None:
        self.client = ServiceClient(url, deadline=deadline)
        self.client.verbose = verbose
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.max_scenarios = max_scenarios
        self.processes = processes
        self.poll = poll
        self.until_idle = until_idle
        self.verbose = verbose
        self.chaos_kill_after = chaos_kill_after
        self.chaos_heartbeat_factor = float(chaos_heartbeat_factor)
        self.worker_id = ""
        self.heartbeat_s = 10.0
        #: private dedup cache: scenarios repeated across leases are hits
        self.cache = ResultStore(":memory:")
        self.leases_done = 0
        self.leases_abandoned = 0
        self.executed = 0
        self.cached = 0
        self._stop = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    def register(self) -> str:
        ack = self.client.register_worker(self.name)
        self.worker_id = ack["worker"]
        self.heartbeat_s = (
            float(ack.get("heartbeat_s", self.heartbeat_s))
            * self.chaos_heartbeat_factor
        )
        self._log(f"registered as {self.worker_id} ({self.name})")
        return self.worker_id

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> int:
        """The worker loop; returns the number of leases completed.

        The loop outlives the coordinator: transport failures poll and
        retry, and a 404 ``unknown worker`` (the coordinator restarted
        without recovering this registration) re-registers and carries
        on — the only unrecoverable answer is a clean idle queue (with
        ``until_idle``) or :meth:`stop`.
        """
        if not self.worker_id:
            self.register()
        while not self._stop.is_set():
            try:
                lease = self.client.lease(
                    self.worker_id, max_scenarios=self.max_scenarios
                )
            except ServiceError as error:
                if error.status == 404:
                    self._log(f"coordinator forgot us ({error}); re-registering")
                    self._reregister()
                    continue
                self._log(f"lease request rejected: {error}")
                self._stop.wait(self.poll)
                continue
            except Exception as error:  # noqa: BLE001 - transport: poll again
                self._log(f"coordinator unreachable: {error}")
                self._stop.wait(self.poll)
                continue
            if lease is None:
                if self.until_idle and self._queue_idle():
                    break
                self._stop.wait(self.poll)
                continue
            self.run_lease(lease)
            if (
                self.chaos_kill_after is not None
                and self.leases_done >= self.chaos_kill_after
            ):
                # a real crash, not an exception: no flushing, no
                # goodbyes — the lease-expiry path must pick up the mess
                self._log(f"chaos: dying after {self.leases_done} leases")
                os._exit(42)
        summary = (
            f"done: {self.leases_done} leases, {self.executed} executed, "
            f"{self.cached} cache hits, "
            f"{self.client.retries_total} client retries"
        )
        if self.client.last_error:
            summary += f" (last transport error: {self.client.last_error})"
        self._log(summary)
        return self.leases_done

    def _reregister(self) -> None:
        """Register under a fresh id after a coordinator restart."""
        deadline = time.monotonic() + 30.0
        while not self._stop.is_set():
            try:
                self.register()
                return
            except Exception as error:  # noqa: BLE001 - coordinator still down
                if time.monotonic() >= deadline:
                    raise RuntimeError(
                        f"cannot re-register with the coordinator: {error}"
                    ) from error
                self._stop.wait(self.poll)

    # -- one lease ----------------------------------------------------------

    def run_lease(self, lease: dict[str, Any]) -> None:
        """Execute one lease and push its reports (heartbeating throughout)."""
        scenarios = [Scenario.from_dict(data) for data in lease["scenarios"]]
        heartbeat_stop = threading.Event()
        abandon = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease["id"], heartbeat_stop, abandon),
            name=f"heartbeat-{lease['id']}",
            daemon=True,
        )
        heartbeat.start()
        # in-process clients (tests) lack the transport's last_trace
        trace_id = getattr(self.client, "last_trace", "") or lease.get("trace", "")
        if not trace_id:
            trace_id = trace_id_for_keys(
                scenario.cache_key()
                for scenario in scenarios
                if scenario.cacheable
            )
        try:
            with _TRACER.span(
                "worker.lease",
                trace_id,
                algorithm=scenarios[0].algorithm if scenarios else None,
                lease=lease["id"],
                worker=self.worker_id,
                scenarios=len(scenarios),
            ) as span_attrs:
                reports, executed, cached = self._execute(scenarios, abandon)
                if span_attrs is not None:
                    span_attrs["executed"] = executed
                    span_attrs["cached"] = cached
        except Exception as error:  # noqa: BLE001 - report, keep the worker up
            heartbeat_stop.set()
            heartbeat.join(timeout=2.0)
            self._report_failure(lease["id"], error)
            return
        heartbeat_stop.set()
        heartbeat.join(timeout=2.0)
        if abandon.is_set():
            self.leases_abandoned += 1
            if _METRICS.enabled:
                _M_LEASES_ABANDONED.inc()
            self._log(
                f"{lease['id']}: abandoned after {len(reports)}/"
                f"{len(scenarios)} scenarios (lease gone)"
            )
            if not reports:
                return
        try:
            ack = self.client.complete(
                lease["id"],
                self.worker_id,
                reports,
                executed=executed,
                cached=cached,
            )
        except ServiceError as error:
            # the coordinator is the source of truth; a rejected
            # completion (e.g. unknown worker after a restart) is logged
            # and the work is re-leased to someone
            self._log(f"completion rejected for {lease['id']}: {error}")
            return
        except Exception as error:  # noqa: BLE001 - transport: lease expires
            self._log(
                f"cannot deliver {lease['id']} ({error}); the lease will "
                "expire and requeue"
            )
            return
        if not abandon.is_set():
            self.leases_done += 1
            if _METRICS.enabled:
                _M_LEASES_DONE.inc()
        self.executed += executed
        self.cached += cached
        if _METRICS.enabled:
            if executed:
                _M_EXECUTED.inc(executed)
            if cached:
                _M_CACHED.inc(cached)
        self._log(
            f"{lease['id']}: {len(reports)} reports "
            f"({executed} executed, {cached} cached"
            f"{', late' if ack.get('late') else ''})"
        )

    def _execute(
        self, scenarios: list[Scenario], abandon: Optional[threading.Event] = None
    ) -> tuple[list[RunReport], int, int]:
        """Run the chunk, stopping at a scenario boundary on ``abandon``.

        Execution proceeds in sub-chunks of ``processes`` scenarios (one
        at a time without a pool), so the abandon signal — set by the
        heartbeat thread when the coordinator answers 410 — is honored
        within one scenario's runtime instead of after the whole chunk.
        Whatever finished before the signal is still returned: the bytes
        are correct and pushing them costs one POST.
        """
        stride = max(1, int(self.processes or 1))
        reports: list[RunReport] = []
        executed = 0
        cached = 0
        for start in range(0, len(scenarios), stride):
            if abandon is not None and abandon.is_set():
                break
            chunk = scenarios[start : start + stride]
            hits = sum(
                1
                for scenario in chunk
                if scenario.cacheable and scenario.cache_key() in self.cache
            )
            reports.extend(
                run_batch(
                    chunk,
                    processes=self.processes,
                    store=self.cache,
                    reuse=True,
                )
            )
            executed += len(chunk) - hits
            cached += hits
        return reports, executed, cached

    def _heartbeat_loop(
        self,
        lease_id: str,
        stop: threading.Event,
        abandon: Optional[threading.Event] = None,
    ) -> None:
        while not stop.wait(self.heartbeat_s):
            try:
                self.client.heartbeat(lease_id, self.worker_id)
            except ServiceError as error:
                if error.status in (404, 410):
                    # the lease is gone (expired, or the coordinator
                    # restarted): tell the executor to stop at the next
                    # scenario boundary — finishing the chunk would
                    # compute results someone else is already redoing
                    self._log(f"lease {lease_id} gone mid-run: {error}")
                    if abandon is not None:
                        abandon.set()
                    return
            except Exception:  # noqa: BLE001 - transient; retry next tick
                pass

    def _report_failure(self, lease_id: str, error: Exception) -> None:
        try:
            self.client.fail(
                lease_id, self.worker_id, f"{type(error).__name__}: {error}"
            )
        except Exception:  # noqa: BLE001 - the lease will expire instead
            pass
        self._log(f"lease {lease_id} failed: {error}")

    def _queue_idle(self) -> bool:
        try:
            snapshot = self.client.workers()
            queue = snapshot["queue"]
            return (
                queue["pending_scenarios"] == 0
                and queue["outstanding_leases"] == 0
            )
        except Exception:  # noqa: BLE001 - treat a flaky poll as busy
            return False

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[{self.name}] {message}", flush=True)


def run_worker(
    url: str,
    name: str = "",
    max_scenarios: Optional[int] = None,
    processes: Optional[int] = None,
    poll: float = 0.5,
    until_idle: bool = False,
    verbose: bool = True,
    deadline: Optional[float] = None,
    chaos_kill_after: Optional[int] = None,
    chaos_heartbeat_factor: float = 1.0,
) -> int:
    """Run one worker until interrupted (the ``repro worker`` command)."""
    worker = FarmWorker(
        url,
        name=name,
        max_scenarios=max_scenarios,
        processes=processes,
        poll=poll,
        until_idle=until_idle,
        verbose=verbose,
        deadline=deadline,
        chaos_kill_after=chaos_kill_after,
        chaos_heartbeat_factor=chaos_heartbeat_factor,
    )
    # retry registration briefly so workers can start before the
    # coordinator finishes binding its socket
    deadline_at = time.monotonic() + 30.0
    while True:
        try:
            worker.register()
            break
        except Exception as error:  # noqa: BLE001 - connect errors, mostly
            if time.monotonic() >= deadline_at:
                print(f"cannot reach coordinator at {url}: {error}")
                return 1
            time.sleep(0.2)
    try:
        worker.run()
    except KeyboardInterrupt:
        pass
    return 0
