"""The farm worker: pull leases, execute, push canonical bytes back.

``repro worker --connect URL`` runs one :class:`FarmWorker` against a
coordinator (``repro serve --workers remote``). The loop is the whole
protocol:

1. ``POST /workers`` — register, learn the lease chunk size and the
   heartbeat interval;
2. ``POST /leases`` — check out up to N scenarios (sleep briefly when
   the queue is idle);
3. execute the chunk through the exact same
   :func:`repro.runner.run_batch` path a local sweep uses, against a
   private in-memory :class:`~repro.store.ResultStore` — so a scenario
   the worker has seen before is a local cache hit, and the canonical
   bytes produced are identical to any other worker's by the
   determinism contract;
4. a daemon heartbeat thread extends the lease while step 3 runs;
5. ``POST /leases/<id>/complete`` — push every canonical report dict
   plus the executed/cached split for the coordinator's accounting.

A worker that dies anywhere in 2–5 needs no cleanup: its lease expires
at the coordinator and the scenarios are re-leased. A worker whose lease
expired under it (a long GC pause, a network partition) still pushes its
reports — the coordinator absorbs late results by content address.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Optional

from repro.runner import RunReport, Scenario, run_batch
from repro.service.client import ServiceClient, ServiceError
from repro.store import ResultStore

__all__ = ["FarmWorker", "run_worker"]


class FarmWorker:
    """One lease-pulling worker process (see module docstring).

    Parameters
    ----------
    url:
        The coordinator's base URL.
    name:
        Reported on registration (default: ``host:pid``).
    max_scenarios:
        Cap on scenarios per lease (None: the coordinator's chunk size).
    processes:
        Per-chunk ``run_batch`` process fan-out (None: in-thread).
    poll:
        Seconds to sleep between lease polls when the queue is idle.
    until_idle:
        Exit the loop once the coordinator reports an idle queue
        (used by the smoke and the benchmark; the CLI default runs
        until interrupted).
    """

    def __init__(
        self,
        url: str,
        name: str = "",
        max_scenarios: Optional[int] = None,
        processes: Optional[int] = None,
        poll: float = 0.5,
        until_idle: bool = False,
        verbose: bool = False,
    ) -> None:
        import os

        self.client = ServiceClient(url)
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.max_scenarios = max_scenarios
        self.processes = processes
        self.poll = poll
        self.until_idle = until_idle
        self.verbose = verbose
        self.worker_id = ""
        self.heartbeat_s = 10.0
        #: private dedup cache: scenarios repeated across leases are hits
        self.cache = ResultStore(":memory:")
        self.leases_done = 0
        self.executed = 0
        self.cached = 0
        self._stop = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    def register(self) -> str:
        ack = self.client.register_worker(self.name)
        self.worker_id = ack["worker"]
        self.heartbeat_s = float(ack.get("heartbeat_s", self.heartbeat_s))
        self._log(f"registered as {self.worker_id} ({self.name})")
        return self.worker_id

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> int:
        """The worker loop; returns the number of leases completed."""
        if not self.worker_id:
            self.register()
        while not self._stop.is_set():
            lease = self.client.lease(
                self.worker_id, max_scenarios=self.max_scenarios
            )
            if lease is None:
                if self.until_idle and self._queue_idle():
                    break
                self._stop.wait(self.poll)
                continue
            self.run_lease(lease)
        self._log(
            f"done: {self.leases_done} leases, {self.executed} executed, "
            f"{self.cached} cache hits"
        )
        return self.leases_done

    # -- one lease ----------------------------------------------------------

    def run_lease(self, lease: dict[str, Any]) -> None:
        """Execute one lease and push its reports (heartbeating throughout)."""
        scenarios = [Scenario.from_dict(data) for data in lease["scenarios"]]
        heartbeat_stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease["id"], heartbeat_stop),
            name=f"heartbeat-{lease['id']}",
            daemon=True,
        )
        heartbeat.start()
        try:
            reports, executed, cached = self._execute(scenarios)
        except Exception as error:  # noqa: BLE001 - report, keep the worker up
            heartbeat_stop.set()
            heartbeat.join(timeout=2.0)
            self._report_failure(lease["id"], error)
            return
        heartbeat_stop.set()
        heartbeat.join(timeout=2.0)
        try:
            ack = self.client.complete(
                lease["id"],
                self.worker_id,
                reports,
                executed=executed,
                cached=cached,
            )
        except ServiceError as error:
            # the coordinator is the source of truth; a rejected
            # completion (e.g. unknown worker after a restart) is logged
            # and the work is re-leased to someone
            self._log(f"completion rejected for {lease['id']}: {error}")
            return
        self.leases_done += 1
        self.executed += executed
        self.cached += cached
        self._log(
            f"{lease['id']}: {len(reports)} reports "
            f"({executed} executed, {cached} cached"
            f"{', late' if ack.get('late') else ''})"
        )

    def _execute(
        self, scenarios: list[Scenario]
    ) -> tuple[list[RunReport], int, int]:
        cached_before = sum(
            1
            for scenario in scenarios
            if scenario.cacheable and scenario.cache_key() in self.cache
        )
        reports = run_batch(
            scenarios,
            processes=self.processes,
            store=self.cache,
            reuse=True,
        )
        return reports, len(scenarios) - cached_before, cached_before

    def _heartbeat_loop(self, lease_id: str, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_s):
            try:
                self.client.heartbeat(lease_id, self.worker_id)
            except ServiceError as error:
                if error.status in (404, 410):
                    # the lease expired under us; finish anyway — the
                    # coordinator absorbs late completions by key
                    self._log(f"lease {lease_id} expired mid-run: {error}")
                    return
            except Exception:  # noqa: BLE001 - transient; retry next tick
                pass

    def _report_failure(self, lease_id: str, error: Exception) -> None:
        try:
            self.client.fail(
                lease_id, self.worker_id, f"{type(error).__name__}: {error}"
            )
        except Exception:  # noqa: BLE001 - the lease will expire instead
            pass
        self._log(f"lease {lease_id} failed: {error}")

    def _queue_idle(self) -> bool:
        try:
            snapshot = self.client.workers()
            queue = snapshot["queue"]
            return (
                queue["pending_scenarios"] == 0
                and queue["outstanding_leases"] == 0
            )
        except Exception:  # noqa: BLE001 - treat a flaky poll as busy
            return False

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[{self.name}] {message}", flush=True)


def run_worker(
    url: str,
    name: str = "",
    max_scenarios: Optional[int] = None,
    processes: Optional[int] = None,
    poll: float = 0.5,
    until_idle: bool = False,
    verbose: bool = True,
) -> int:
    """Run one worker until interrupted (the ``repro worker`` command)."""
    worker = FarmWorker(
        url,
        name=name,
        max_scenarios=max_scenarios,
        processes=processes,
        poll=poll,
        until_idle=until_idle,
        verbose=verbose,
    )
    # retry registration briefly so workers can start before the
    # coordinator finishes binding its socket
    deadline = time.monotonic() + 30.0
    while True:
        try:
            worker.register()
            break
        except Exception as error:  # noqa: BLE001 - connect errors, mostly
            if time.monotonic() >= deadline:
                print(f"cannot reach coordinator at {url}: {error}")
                return 1
            time.sleep(0.2)
    try:
        worker.run()
    except KeyboardInterrupt:
        pass
    return 0
