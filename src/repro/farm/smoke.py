"""End-to-end farm smoke: real processes, a kill -9, byte identity.

``python -m repro.farm.smoke`` (the CI ``farm`` job) proves the farm's
central invariant — a distributed sweep with a failing participant
stores exactly the bytes a serial run produces:

1. starts ``repro serve --workers remote`` as a subprocess on a free
   port with a fresh *sharded* store;
2. starts three ``repro worker`` subprocesses against it;
3. submits a 120-scenario sweep, waits until one worker is observed
   holding a lease, and SIGKILLs that worker — no goodbye, no cleanup;
4. waits for the job to finish anyway: the dead worker's lease expires
   and its scenarios are re-leased to the survivors;
5. asserts the stored canonical bytes are identical to a serial
   :func:`repro.runner.run_batch` of the same grid, that at least one
   lease expired, that every scenario was executed exactly once by the
   workers' own accounting (``sum(executed) == N``), and that no
   completion was double-counted (``duplicates == 0``).

Exit status 0 on success; any mismatch or timeout is fatal.
"""

from __future__ import annotations

import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Optional

from repro.core.faults import FaultConfig
from repro.runner import Scenario, expand_grid, run_batch
from repro.service.client import ServiceClient
from repro.store import ResultStore

#: sweep size — large enough that three workers overlap on the queue
SCENARIOS = 120

#: seconds an unheartbeated lease survives (short: the smoke waits it out)
LEASE_TIMEOUT = 3.0

#: the victim takes double-size leases so the kill lands mid-lease
VICTIM_CHUNK = 16


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _smoke_scenarios() -> list[Scenario]:
    base = Scenario(
        algorithm="decay",
        topology="path",
        topology_params={"n": 32},
        faults=FaultConfig.receiver(0.3),
    )
    return expand_grid(base, seeds=range(SCENARIOS))


def _wait_for_health(client: ServiceClient, deadline_s: float = 30.0) -> None:
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            client.health()
            return
        except Exception:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)


def _spawn_worker(
    url: str,
    name: str,
    chunk: Optional[int] = None,
    until_idle: bool = True,
) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro", "worker",
        "--connect", url, "--name", name, "--poll", "0.05",
    ]
    if until_idle:
        command.append("--until-idle")
    if chunk is not None:
        command += ["--chunk", str(chunk)]
    return subprocess.Popen(command)


def _kill_leaseholder(
    client: ServiceClient,
    workers: dict[str, subprocess.Popen],
    deadline_s: float = 60.0,
) -> str:
    """SIGKILL the first worker observed holding a lease; returns its name."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        # prefer the double-chunk victim: its leases are the longest, so
        # the kill cannot race the lease's own completion
        entries = sorted(
            client.workers()["workers"],
            key=lambda entry: entry["name"] != "victim",
        )
        for entry in entries:
            process = workers.get(entry["name"])
            if process is not None and entry["active_leases"] > 0:
                process.send_signal(signal.SIGKILL)
                process.wait(timeout=10.0)
                return entry["name"]
        time.sleep(0.01)
    raise TimeoutError("no worker was ever observed holding a lease")


def run_smoke(verbose: bool = True) -> dict[str, Any]:
    """The whole scenario (see module docstring); returns the evidence.

    Raises :class:`AssertionError`/:class:`TimeoutError` on any
    violation — also the pytest entry point
    (``tests/farm/test_farm_process.py``).
    """
    port = _free_port()
    url = f"http://127.0.0.1:{port}"
    scenarios = _smoke_scenarios()
    with tempfile.TemporaryDirectory(prefix="repro-farm-smoke-") as tmp:
        store_path = str(Path(tmp) / "farm")
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--store", store_path, "--port", str(port),
                "--workers", "remote", "--shards", "2",
                "--lease-timeout", str(LEASE_TIMEOUT),
                "--lease-scenarios", "8",
            ],
        )
        workers: dict[str, subprocess.Popen] = {}
        try:
            client = ServiceClient(url)
            _wait_for_health(client)

            # submit before any worker starts: an --until-idle worker
            # that registered first would see an empty queue and exit
            job = client.submit(scenarios=scenarios)

            # victim first (double-size leases), then two survivors
            workers["victim"] = _spawn_worker(url, "victim", VICTIM_CHUNK)
            workers["w1"] = _spawn_worker(url, "w1")
            workers["w2"] = _spawn_worker(url, "w2")
            killed = _kill_leaseholder(client, workers)
            if verbose:
                print(f"killed {killed} while it held a lease")

            done = client.wait(job["id"], timeout=180.0, poll=0.1)
            assert done["completed"] == len(scenarios), done

            snapshot = client.workers()
            queue = snapshot["queue"]
            # wait for the survivors to notice the idle queue and exit
            for name, process in workers.items():
                if name != killed:
                    assert process.wait(timeout=60.0) == 0, name
        finally:
            for process in workers.values():
                if process.poll() is None:
                    process.kill()
            server.terminate()
            try:
                server.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                server.kill()

        # the farm's store vs a serial run of the same grid: byte identity
        direct = run_batch(scenarios)
        with ResultStore(store_path) as store:
            assert len(store) == len(scenarios), (len(store), len(scenarios))
            for scenario, report in zip(scenarios, direct):
                stored = store.get_json(scenario.cache_key())
                expected = report.to_json(canonical=True)
                assert stored == expected, (
                    f"farmed bytes differ from serial run_batch for "
                    f"{scenario.cache_key()}"
                )

        # the kill was observed and recovered from
        assert queue["leases_expired"] >= 1, queue
        assert queue["scenarios_completed"] == len(scenarios), queue
        # accounting: every scenario's execution was recorded exactly once
        # (the victim's lost chunk was never recorded, then re-executed)
        assert queue["duplicates"] == 0, queue
        executed = sum(w["executed"] for w in snapshot["workers"])
        cached = sum(w["cached"] for w in snapshot["workers"])
        assert executed == len(scenarios), (executed, len(scenarios))
        assert cached == 0, snapshot["workers"]

        evidence = {
            "scenarios": len(scenarios),
            "killed": killed,
            "leases_expired": queue["leases_expired"],
            "leases_issued": queue["leases_issued"],
            "duplicates": queue["duplicates"],
            "executed": executed,
        }
        if verbose:
            print(
                f"farm smoke OK: {evidence['scenarios']} scenarios, "
                f"{evidence['killed']} killed mid-lease, "
                f"{evidence['leases_expired']} lease(s) expired and "
                f"recovered, store byte-identical to serial run_batch, "
                f"{evidence['executed']} executions recorded (no doubles)"
            )
        return evidence


def main() -> int:
    run_smoke(verbose=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
