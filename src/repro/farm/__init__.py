"""The distributed sweep farm: coordinator, leased workers, fault recovery.

One ``repro serve --workers remote`` process coordinates; any number of
``repro worker --connect URL`` processes (on any host that can reach it)
pull chunked scenario leases, execute them through the unified runner,
and push canonical report bytes back into the shared content-addressed
store. The paper's own robustness theme applies to the farm itself:
progress must survive silently failing participants, so leases carry
heartbeat-extended deadlines and an expired lease's scenarios return to
the queue — a killed worker costs at most one chunk of redone work, and
content-addressed accounting makes re-delivered results duplicates, not
corruption. A farmed sweep's stored bytes are identical to a serial
:func:`repro.runner.run_batch` of the same grid, which
:mod:`repro.farm.smoke` proves while killing a worker mid-sweep.

The coordinator is held to the same standard as the workers: every
state transition is write-ahead journaled into the store's
``farm_journal`` table, and :meth:`Coordinator.recover` rebuilds the
exact queue/lease/progress state after a coordinator crash — in-flight
leases resume their remaining deadlines, jobs keep their ids, and the
chaos harness (:mod:`repro.chaos`) proves a sweep survives a
coordinator SIGKILL plus injected network faults byte-identically.

The pieces:

* :mod:`repro.farm.coordinator` — :class:`Coordinator`: the journaled
  scenario queue (chunking, deadlines, expiry requeue, quarantine,
  crash recovery, accounting);
* :mod:`repro.farm.worker` — :class:`FarmWorker`: the pull-execute-push
  loop behind ``repro worker``, resilient to coordinator restarts;
* :mod:`repro.farm.smoke` — the kill-a-worker end-to-end check
  (``python -m repro.farm.smoke``) CI runs.
"""

from repro.farm.coordinator import (
    Coordinator,
    Lease,
    UnknownLease,
    UnknownWorker,
    read_quarantined,
)
from repro.farm.worker import FarmWorker, run_worker

__all__ = [
    "Coordinator",
    "FarmWorker",
    "Lease",
    "UnknownLease",
    "UnknownWorker",
    "read_quarantined",
    "run_worker",
]
