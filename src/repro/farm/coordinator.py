"""The farm coordinator: journaled scenario leases with crash recovery.

One :class:`Coordinator` owns the farmed half of the job queue. Workers
(:mod:`repro.farm.worker`) register, then pull :class:`Lease` chunks of
N scenarios each; a lease carries a deadline that heartbeats extend, and
a lease whose deadline lapses returns its unfinished scenarios to the
front of the queue — so a worker killed mid-sweep costs the farm at most
one chunk of redone work, never a stuck job.

Progress accounting is content-addressed, like the store itself: a
scenario is *done* when a report under its cache key has been absorbed,
no matter which worker or lease delivered it. That one rule makes every
failure mode safe by construction:

* a killed worker's lease expires and is re-leased — the job's
  ``completed`` counter never counted the lost work, so it stays
  consistent;
* a slow worker that completes *after* its lease expired still lands
  its reports (they are correct bytes under a content address); any
  scenario another worker re-finished first is counted once and the
  surplus shows up in the ``duplicates`` counter instead of inflating
  progress;
* two workers racing on the same key write the same canonical bytes —
  the store's ``INSERT OR IGNORE`` keeps exactly one.

The coordinator itself is held to the same fault model it imposes on
workers: every state transition (job intake, lease grant, heartbeat,
release, quarantine) is **journaled** into the store's ``farm_journal``
table under the same lock that applies it — no caller is ever
acknowledged a transition the journal doesn't hold — and
:meth:`Coordinator.recover` rebuilds the exact queue/lease/progress
state from that journal plus the reports table — done-ness is never
journaled at all, because "the report is in the store" *is* the durable
completion record. In-flight leases resume with whatever deadline time
they had left (journal deadlines are wall-clock, so coordinator
downtime counts against them), which means a restart mid-lease neither
double-executes — the content addressing absorbs re-delivery — nor
stalls waiting on a dead worker. The journal is compacted in place every
``compact_every`` appends down to one record per job, per live attempt
counter, per quarantined scenario, and per outstanding lease, so its
size is bounded by live state, not by history.

A scenario that keeps *failing* (a worker reports an error, not a lost
lease) is requeued up to :data:`MAX_ATTEMPTS` times and then
**quarantined**: the job finishes ``partial`` (or ``failed`` when
nothing completed) with a per-scenario error map instead of one poison
scenario sinking the whole sweep. Lease expiries never count toward
quarantine — a chaos-killed worker must not poison innocent scenarios.

The coordinator is a plain thread-safe object; :mod:`repro.service`
exposes it over HTTP (``POST /leases``, ``PUT /leases/<id>/heartbeat``,
``POST /leases/<id>/complete``, ``GET/POST /workers``).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from repro.runner import RunReport, Scenario
from repro.store import ResultStore
from repro.telemetry.metrics import METRICS as _METRICS
from repro.telemetry.tracing import trace_id_for_keys

if TYPE_CHECKING:  # pragma: no cover - circular import at type time only
    from repro.service.jobs import Job

__all__ = [
    "Coordinator",
    "Lease",
    "UnknownLease",
    "UnknownWorker",
    "read_quarantined",
]

#: scenarios handed out per lease unless the worker asks for fewer
DEFAULT_LEASE_SCENARIOS = 8

#: seconds a lease stays valid without a heartbeat
DEFAULT_LEASE_TIMEOUT = 30.0

#: a scenario failed (not lost) this many times is quarantined
MAX_ATTEMPTS = 3

#: journal appends between in-place compactions
DEFAULT_COMPACT_EVERY = 256

#: completion timestamps kept for the snapshot's throughput window
_RATE_WINDOW_S = 60.0
_RATE_SAMPLES = 4096

_M_LEASES_GRANTED = _METRICS.counter(
    "repro_farm_leases_granted_total", "leases checked out by workers"
)
_M_LEASES_EXPIRED = _METRICS.counter(
    "repro_farm_leases_expired_total", "leases lost to missed heartbeats"
)
_M_SCENARIOS_COMPLETED = _METRICS.counter(
    "repro_farm_scenarios_completed_total", "scenarios completed via the farm"
)
_M_SCENARIOS_REQUEUED = _METRICS.counter(
    "repro_farm_scenarios_requeued_total", "scenarios returned to the queue"
)
_M_SCENARIOS_QUARANTINED = _METRICS.counter(
    "repro_farm_scenarios_quarantined_total", "scenarios pulled from rotation"
)
_M_DUPLICATES = _METRICS.counter(
    "repro_farm_duplicates_total", "completions for already-done scenarios"
)


class UnknownLease(LookupError):
    """The lease id is not outstanding (expired, completed, or bogus)."""


class UnknownWorker(LookupError):
    """The worker id is not registered (never was, or the coordinator
    restarted since) — workers answer by re-registering."""


class Lease(object):
    """One outstanding chunk of scenarios checked out by one worker."""

    __slots__ = (
        "id", "worker_id", "job_id", "indexes", "keys", "issued_at", "deadline"
    )

    def __init__(
        self,
        lease_id: str,
        worker_id: str,
        job_id: str,
        indexes: list[int],
        keys: list[str],
        issued_at: float,
        deadline: float,
    ) -> None:
        self.id = lease_id
        self.worker_id = worker_id
        self.job_id = job_id
        self.indexes = indexes
        self.keys = keys
        self.issued_at = issued_at
        self.deadline = deadline


class _JobState:
    """Coordinator-side bookkeeping for one farmed job."""

    __slots__ = ("job", "done", "pending", "attempts", "quarantined")

    def __init__(self, job: "Job") -> None:
        self.job = job
        self.done = [False] * len(job.scenarios)
        self.pending: deque[int] = deque()
        self.attempts = [0] * len(job.scenarios)
        #: index -> last error, for scenarios pulled out of rotation
        self.quarantined: dict[int, str] = {}


class _WorkerState:
    """Registration, liveness, and throughput counters for one worker."""

    __slots__ = (
        "id", "name", "registered_at", "last_seen", "leases_completed",
        "leases_lost", "executed", "cached",
    )

    def __init__(self, worker_id: str, name: str, now: float) -> None:
        self.id = worker_id
        self.name = name
        self.registered_at = now
        self.last_seen = now
        self.leases_completed = 0
        self.leases_lost = 0
        self.executed = 0
        self.cached = 0


class Coordinator:
    """Store-backed scenario queue with journaled, deadline-guarded leases.

    Parameters
    ----------
    store:
        The shared result store completed reports land in (and cached
        scenarios are answered from at submit time). Its ``farm_journal``
        table holds the coordinator's durable state.
    lease_scenarios:
        Default chunk size per lease.
    lease_timeout:
        Seconds a lease survives without a heartbeat before its
        unfinished scenarios return to the queue.
    clock:
        Monotonic time source (injectable for tests).
    wall:
        Wall-clock source for journaled deadlines (injectable for
        tests); wall time is what lets a restarted coordinator charge
        its own downtime against in-flight leases.
    journal:
        Write-ahead journal every state transition (default). A fresh
        coordinator *discards* any stale journal left by a previous
        process — resuming one is an explicit :meth:`recover` call, not
        an accident.
    compact_every:
        Journal appends between in-place compactions.
    """

    def __init__(
        self,
        store: ResultStore,
        lease_scenarios: int = DEFAULT_LEASE_SCENARIOS,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        clock: Callable[[], float] = time.monotonic,
        wall: Callable[[], float] = time.time,
        journal: bool = True,
        compact_every: int = DEFAULT_COMPACT_EVERY,
    ) -> None:
        if lease_scenarios < 1:
            raise ValueError(
                f"lease_scenarios must be >= 1, got {lease_scenarios}"
            )
        if lease_timeout <= 0.0:
            raise ValueError(f"lease_timeout must be > 0, got {lease_timeout}")
        if compact_every < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every}")
        self.store = store
        self.lease_scenarios = int(lease_scenarios)
        self.lease_timeout = float(lease_timeout)
        self._clock = clock
        self._wall = wall
        self._lock = threading.Lock()
        self._jobs: dict[str, _JobState] = {}
        self._workers: dict[str, _WorkerState] = {}
        self._leases: dict[str, Lease] = {}
        self._key_map: dict[str, list[tuple[str, int]]] = {}
        self._worker_ids = itertools.count(1)
        self._lease_ids = itertools.count(1)
        self._journal_enabled = bool(journal)
        self.compact_every = int(compact_every)
        self._appends_since_compact = 0
        #: set by :meth:`recover`: what the journal replay rebuilt
        self.recovered: Optional[dict[str, int]] = None
        #: completions that arrived for already-done scenarios
        self.duplicates = 0
        self.leases_issued = 0
        self.leases_expired = 0
        #: scenarios completed through the farm (store-cached ones excluded)
        self.scenarios_completed = 0
        self._started = clock()
        #: recent completion stamps backing the snapshot's rate window
        self._completions: deque[float] = deque(maxlen=_RATE_SAMPLES)
        if self._journal_enabled and store.journal_size():
            # a fresh coordinator on a store with a leftover journal:
            # starting clean is the contract (recovery is recover())
            store.journal_replace([])

    # -- crash recovery ------------------------------------------------------

    @classmethod
    def recover(
        cls,
        store: ResultStore,
        lease_scenarios: int = DEFAULT_LEASE_SCENARIOS,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        clock: Callable[[], float] = time.monotonic,
        wall: Callable[[], float] = time.time,
        compact_every: int = DEFAULT_COMPACT_EVERY,
    ) -> "Coordinator":
        """Rebuild a coordinator from a store's journal + reports table.

        Replays the ``farm_journal`` records a crashed (or cleanly
        stopped) coordinator left behind: jobs are re-created from their
        journaled specs, done-ness is re-derived from the reports table
        (a report under the cache key *is* the completion record, no
        matter who wrote it or when), attempt counters and quarantines
        are restored, and leases that were outstanding at the crash
        resume with the wall-clock deadline time they had left — zero
        remaining means the next :meth:`lease` call requeues them. A
        worker holding a resumed lease can keep heartbeating and
        complete as if nothing happened; every other worker gets
        :class:`UnknownWorker` (HTTP 404) on its next call and simply
        re-registers.

        Works on an empty journal too (an empty coordinator), so a
        service can call this unconditionally at startup.
        """
        from repro.service.jobs import Job

        coordinator = cls(
            store,
            lease_scenarios=lease_scenarios,
            lease_timeout=lease_timeout,
            clock=clock,
            wall=wall,
            journal=False,  # nothing to write while replaying
            compact_every=compact_every,
        )
        job_specs: list[dict[str, Any]] = []
        grants: dict[str, dict[str, Any]] = {}
        attempts: dict[str, dict[int, int]] = {}
        quarantined: dict[str, dict[int, str]] = {}
        max_worker = 0
        max_lease = 0
        for _seq, kind, payload in store.journal_records():
            data = json.loads(payload)
            if kind == "job":
                job_specs.append(data)
            elif kind == "grant":
                grants[data["lease"]] = data
                max_worker = max(max_worker, _id_number(data["worker"]))
                max_lease = max(max_lease, _id_number(data["lease"]))
            elif kind == "beat":
                grant = grants.get(data["lease"])
                if grant is not None:
                    grant["expires"] = data["expires"]
            elif kind == "release":
                grant = grants.pop(data["lease"], None)
                if grant is not None and data.get("requeue") and data.get("error"):
                    per_job = attempts.setdefault(grant["job"], {})
                    for index in grant["indexes"]:
                        per_job[index] = per_job.get(index, 0) + 1
            elif kind == "quarantine":
                quarantined.setdefault(data["job"], {})[
                    int(data["index"])
                ] = data["error"]
            elif kind == "attempts":
                per_job = attempts.setdefault(data["job"], {})
                for index, count in data["attempts"].items():
                    per_job[int(index)] = max(per_job.get(int(index), 0), count)

        now = clock()
        wall_now = wall()
        leased: dict[str, set[int]] = {}
        for grant in grants.values():
            leased.setdefault(grant["job"], set()).update(grant["indexes"])
        for spec in job_specs:
            job = Job(
                spec["id"],
                [Scenario.from_dict(data) for data in spec["scenarios"]],
            )
            job.submitted_at = spec.get("submitted_at", job.submitted_at)
            state = _JobState(job)
            per_job = attempts.get(job.id, {})
            for index, count in per_job.items():
                if 0 <= index < job.total:
                    state.attempts[index] = count
            for index, error in quarantined.get(job.id, {}).items():
                if 0 <= index < job.total:
                    state.quarantined[index] = error
                    job.quarantined[job.cache_keys[index]] = error
            out = leased.get(job.id, set())
            for index, key in enumerate(job.cache_keys):
                if key in store:
                    state.done[index] = True
                    job.completed += 1
                    continue
                coordinator._key_map.setdefault(key, []).append((job.id, index))
                if index not in state.quarantined and index not in out:
                    state.pending.append(index)
            coordinator._jobs[job.id] = state
            coordinator._maybe_finish(state)
            if job.status == "queued" and (job.completed or out or per_job):
                job.status = "running"
                job.started_at = job.started_at or time.time()
        for lease_id, grant in grants.items():
            state = coordinator._jobs.get(grant["job"])
            if state is None:  # pragma: no cover - grants follow their job
                continue
            indexes = [
                index for index in grant["indexes"] if not state.done[index]
            ]
            if not indexes:
                continue
            lease = Lease(
                lease_id,
                grant["worker"],
                grant["job"],
                indexes,
                [state.job.cache_keys[index] for index in indexes],
                now,
                now + (grant["expires"] - wall_now),
            )
            coordinator._leases[lease_id] = lease
            # the holder may still be alive: recreate its registration so
            # its heartbeats and completion land instead of 404ing
            if lease.worker_id not in coordinator._workers:
                coordinator._workers[lease.worker_id] = _WorkerState(
                    lease.worker_id, lease.worker_id, now
                )
        coordinator._worker_ids = itertools.count(max_worker + 1)
        coordinator._lease_ids = itertools.count(max_lease + 1)
        coordinator.recovered = {
            "jobs": len(coordinator._jobs),
            "leases": len(coordinator._leases),
            "pending_scenarios": sum(
                len(state.pending) for state in coordinator._jobs.values()
            ),
        }
        coordinator._journal_enabled = True
        with coordinator._lock:
            coordinator._compact()
        return coordinator

    def jobs(self) -> list["Job"]:
        """The coordinator's jobs in intake order (for re-adoption by a
        :class:`~repro.service.jobs.JobManager` after :meth:`recover`)."""
        with self._lock:
            return [state.job for state in self._jobs.values()]

    # -- job intake ---------------------------------------------------------

    def add_job(self, job: "Job") -> None:
        """Queue a job's scenarios for leasing.

        Scenarios whose cache key is already stored complete instantly —
        the farm never re-executes content the store already holds.
        """
        with self._lock:
            state = _JobState(job)
            self._jobs[job.id] = state
            for index, key in enumerate(job.cache_keys):
                if key in self.store:
                    state.done[index] = True
                    job.completed += 1
                else:
                    state.pending.append(index)
                    self._key_map.setdefault(key, []).append((job.id, index))
            self._maybe_finish(state)
            self._append(
                "job",
                {
                    "id": job.id,
                    "scenarios": [
                        scenario.to_dict() for scenario in job.scenarios
                    ],
                    "submitted_at": job.submitted_at,
                },
            )

    # -- worker lifecycle ---------------------------------------------------

    def register(self, name: str = "") -> dict[str, Any]:
        """Register a worker; returns its id and the lease protocol knobs."""
        with self._lock:
            worker_id = f"w-{next(self._worker_ids):04d}"
            self._workers[worker_id] = _WorkerState(
                worker_id, name or worker_id, self._clock()
            )
        return {
            "worker": worker_id,
            "lease_scenarios": self.lease_scenarios,
            "lease_timeout_s": self.lease_timeout,
            "heartbeat_s": self.lease_timeout / 3.0,
        }

    def lease(
        self, worker_id: str, max_scenarios: Optional[int] = None
    ) -> Optional[dict[str, Any]]:
        """Check out the next chunk of scenarios (None when queue is idle)."""
        limit = self.lease_scenarios if max_scenarios is None else max_scenarios
        if limit < 1:
            raise ValueError(f"max_scenarios must be >= 1, got {limit}")
        now = self._clock()
        with self._lock:
            worker = self._touch(worker_id, now)
            self._expire(now)
            for state in self._jobs.values():
                if state.job.status == "failed":
                    continue
                indexes = self._pop_pending(state, limit)
                if not indexes:
                    continue
                job = state.job
                if job.status == "queued":
                    job.status = "running"
                    job.started_at = time.time()
                lease = Lease(
                    f"lease-{next(self._lease_ids):06d}",
                    worker.id,
                    job.id,
                    indexes,
                    [job.cache_keys[i] for i in indexes],
                    now,
                    now + self.lease_timeout,
                )
                self._leases[lease.id] = lease
                self.leases_issued += 1
                if _METRICS.enabled:
                    _M_LEASES_GRANTED.inc()
                self._append(
                    "grant",
                    {
                        "lease": lease.id,
                        "worker": worker.id,
                        "job": job.id,
                        "indexes": indexes,
                        "expires": self._wall() + self.lease_timeout,
                    },
                )
                return {
                    "id": lease.id,
                    "worker": worker.id,
                    "job": job.id,
                    "scenarios": [
                        job.scenarios[i].to_dict() for i in indexes
                    ],
                    "deadline_s": self.lease_timeout,
                    "heartbeat_s": self.lease_timeout / 3.0,
                    "trace": trace_id_for_keys(lease.keys),
                }
            return None

    def heartbeat(self, lease_id: str, worker_id: str) -> dict[str, Any]:
        """Extend a lease's deadline; raises :class:`UnknownLease` when gone."""
        now = self._clock()
        with self._lock:
            self._touch(worker_id, now)
            self._expire(now)
            lease = self._leases.get(lease_id)
            if lease is None:
                raise UnknownLease(
                    f"lease {lease_id!r} is not outstanding (expired, or the "
                    "coordinator restarted)"
                )
            lease.deadline = now + self.lease_timeout
            self._append(
                "beat",
                {"lease": lease.id, "expires": self._wall() + self.lease_timeout},
            )
            return {"id": lease.id, "deadline_s": self.lease_timeout}

    def complete(
        self,
        lease_id: str,
        worker_id: str,
        reports: Sequence[RunReport],
        executed: int = 0,
        cached: int = 0,
    ) -> dict[str, Any]:
        """Absorb a lease's finished reports and advance job progress.

        Reports from a lease that already expired are still absorbed
        (``late: true`` in the response) — the bytes are correct under
        their content address; only the accounting differs.
        """
        now = self._clock()
        # durability order matters: the reports land in the store BEFORE
        # the lease is released in the journal, so a crash between the
        # two recovers a lease whose scenarios are already done — marked
        # complete at replay — never a released lease with lost work
        stored = self.store.put_many(
            [report for report in reports if report.cache_key]
        )
        with self._lock:
            worker = self._touch(worker_id, now)
            self._expire(now)
            lease = self._leases.pop(lease_id, None)
            if lease is not None:
                self._append(
                    "release", {"lease": lease.id, "requeue": False, "error": ""}
                )
            fresh, duplicates = self._mark_done(
                [report.cache_key for report in reports]
            )
            worker.executed += int(executed)
            worker.cached += int(cached)
            if lease is not None:
                worker.leases_completed += 1
            return {
                "stored": stored,
                "completed": fresh,
                "duplicates": duplicates,
                "late": lease is None,
            }

    def fail(
        self, lease_id: str, worker_id: str, message: str
    ) -> dict[str, Any]:
        """A worker reports a lease it could not finish; requeue its work.

        Each scenario gets :data:`MAX_ATTEMPTS` failed tries across all
        workers; one that keeps failing is quarantined (the job finishes
        ``partial`` with a per-scenario error map) instead of looping
        forever or sinking its whole job.
        """
        now = self._clock()
        with self._lock:
            self._touch(worker_id, now)
            self._expire(now)
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                raise UnknownLease(
                    f"lease {lease_id!r} is not outstanding (expired, or the "
                    "coordinator restarted)"
                )
            self._append(
                "release",
                {"lease": lease.id, "requeue": True, "error": str(message)},
            )
            requeued = self._requeue(lease, error=str(message))
            return {"requeued": requeued}

    # -- inspection ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The farm's state (what ``GET /workers`` serves)."""
        now = self._clock()
        with self._lock:
            self._expire(now)
            leases_by_worker: dict[str, int] = {}
            for lease in self._leases.values():
                leases_by_worker[lease.worker_id] = (
                    leases_by_worker.get(lease.worker_id, 0) + 1
                )
            pending = sum(
                1
                for state in self._jobs.values()
                for index in state.pending
                if not state.done[index]
            )
            quarantined = [
                {
                    "job": state.job.id,
                    "key": state.job.cache_keys[index],
                    "error": error,
                }
                for state in self._jobs.values()
                for index, error in sorted(state.quarantined.items())
            ]
            recent = sum(
                1 for stamp in self._completions
                if now - stamp <= _RATE_WINDOW_S
            )
            window = min(_RATE_WINDOW_S, max(now - self._started, 1e-9))
            return {
                "workers": [
                    {
                        "id": worker.id,
                        "name": worker.name,
                        "idle_s": round(now - worker.last_seen, 3),
                        "active_leases": leases_by_worker.get(worker.id, 0),
                        "leases_completed": worker.leases_completed,
                        "leases_lost": worker.leases_lost,
                        "executed": worker.executed,
                        "cached": worker.cached,
                    }
                    for worker in self._workers.values()
                ],
                "rates": {
                    "window_s": _RATE_WINDOW_S,
                    "recent_completions": recent,
                    "scenarios_per_s": round(recent / window, 4),
                    "uptime_s": round(now - self._started, 3),
                },
                "queue": {
                    "pending_scenarios": pending,
                    "outstanding_leases": len(self._leases),
                    "leases_issued": self.leases_issued,
                    "leases_expired": self.leases_expired,
                    "scenarios_completed": self.scenarios_completed,
                    "duplicates": self.duplicates,
                    "quarantined_scenarios": len(quarantined),
                },
                "quarantined": quarantined,
                "recovered": self.recovered,
                "journal_records": (
                    self.store.journal_size() if self._journal_enabled else 0
                ),
                "lease_timeout_s": self.lease_timeout,
                "lease_scenarios": self.lease_scenarios,
            }

    def idle(self) -> bool:
        """True when no scenario is pending or leased."""
        with self._lock:
            self._expire(self._clock())
            if self._leases:
                return False
            return all(
                state.done[index]
                for state in self._jobs.values()
                for index in state.pending
            )

    # -- internals (call with the lock held) --------------------------------

    def _append(self, kind: str, payload: dict[str, Any]) -> None:
        """Journal one record under the coordinator lock.

        The mutation it describes is applied *first*, then the record is
        appended, and only then does the lock release — so no caller is
        ever acknowledged a transition the journal doesn't hold, and a
        compaction triggered by this very append (which snapshots live
        state, replacing history) can never drop the transition.
        """
        if not self._journal_enabled:
            return
        self.store.journal_append([(kind, json.dumps(payload, sort_keys=True))])
        self._appends_since_compact += 1
        if self._appends_since_compact >= self.compact_every:
            self._compact()

    def _compact(self) -> None:
        """Rewrite the journal as a snapshot of live state.

        One ``job`` record per job, one ``attempts``/``quarantine``
        record where those are non-trivial, one ``grant`` per
        outstanding lease (with its *current* wall-clock deadline) —
        history collapses, so journal size is bounded by live state no
        matter how many lease cycles a long job goes through.
        """
        now = self._clock()
        wall_now = self._wall()
        records: list[tuple[str, str]] = []

        def record(kind: str, payload: dict[str, Any]) -> None:
            records.append((kind, json.dumps(payload, sort_keys=True)))

        for state in self._jobs.values():
            job = state.job
            record(
                "job",
                {
                    "id": job.id,
                    "scenarios": [
                        scenario.to_dict() for scenario in job.scenarios
                    ],
                    "submitted_at": job.submitted_at,
                },
            )
            live_attempts = {
                str(index): count
                for index, count in enumerate(state.attempts)
                if count
            }
            if live_attempts:
                record("attempts", {"job": job.id, "attempts": live_attempts})
            for index, error in sorted(state.quarantined.items()):
                record(
                    "quarantine",
                    {
                        "job": job.id,
                        "index": index,
                        "key": job.cache_keys[index],
                        "error": error,
                    },
                )
        for lease in self._leases.values():
            record(
                "grant",
                {
                    "lease": lease.id,
                    "worker": lease.worker_id,
                    "job": lease.job_id,
                    "indexes": list(lease.indexes),
                    "expires": wall_now + (lease.deadline - now),
                },
            )
        self.store.journal_replace(records)
        self._appends_since_compact = 0

    def _touch(self, worker_id: str, now: float) -> _WorkerState:
        worker = self._workers.get(worker_id)
        if worker is None:
            raise UnknownWorker(
                f"worker {worker_id!r} is not registered (the coordinator "
                "may have restarted; register again)"
            )
        worker.last_seen = now
        return worker

    def _pop_pending(self, state: _JobState, limit: int) -> list[int]:
        """Up to ``limit`` not-yet-done indexes off the job's queue."""
        indexes: list[int] = []
        while state.pending and len(indexes) < limit:
            index = state.pending.popleft()
            if not state.done[index] and index not in state.quarantined:
                indexes.append(index)
        return indexes

    def _mark_done(self, keys: Sequence[str]) -> tuple[int, int]:
        """Mark scenarios done by cache key; returns (fresh, duplicate)."""
        fresh = 0
        duplicates = 0
        for key in keys:
            for job_id, index in self._key_map.get(key, ()):
                state = self._jobs.get(job_id)
                if state is None:
                    continue
                if state.done[index]:
                    duplicates += 1
                    continue
                state.done[index] = True
                # a late success beats an earlier quarantine: the report
                # is in the store, so the scenario is simply done
                state.quarantined.pop(index, None)
                state.job.quarantined.pop(key, None)
                fresh += 1
                state.job.completed += 1
                self._maybe_finish(state)
        self.scenarios_completed += fresh
        self.duplicates += duplicates
        if fresh:
            now = self._clock()
            self._completions.extend([now] * fresh)
        if _METRICS.enabled:
            if fresh:
                _M_SCENARIOS_COMPLETED.inc(fresh)
            if duplicates:
                _M_DUPLICATES.inc(duplicates)
        return fresh, duplicates

    def _maybe_finish(self, state: _JobState) -> None:
        """Move a job to its terminal status once every scenario is
        done or quarantined: ``done`` (clean), ``partial`` (some
        quarantined), ``failed`` (nothing completed at all)."""
        job = state.job
        if job.status in ("done", "partial", "failed"):
            return
        if job.completed + len(state.quarantined) < job.total:
            return
        if not state.quarantined:
            job.status = "done"
        elif job.completed:
            job.status = "partial"
        else:
            job.status = "failed"
        if state.quarantined:
            job.error = (
                f"{len(state.quarantined)} scenario(s) quarantined after "
                f"{MAX_ATTEMPTS} failed attempts each; see 'quarantined'"
            )
        job.started_at = job.started_at or time.time()
        job.finished_at = time.time()

    def _requeue(self, lease: Lease, error: str = "") -> int:
        """Return a dead lease's unfinished scenarios to the queue front.

        ``error`` non-empty means the worker *reported* a failure: those
        count toward :data:`MAX_ATTEMPTS` and can quarantine a scenario.
        A plain expiry (``error=""``) requeues without prejudice — lost
        leases are the coordinator's fault model, not the scenario's.
        """
        state = self._jobs.get(lease.job_id)
        if state is None:  # pragma: no cover - jobs are never deleted
            return 0
        requeued = 0
        for index in reversed(lease.indexes):
            if state.done[index] or index in state.quarantined:
                continue
            if error:
                state.attempts[index] += 1
                if state.attempts[index] >= MAX_ATTEMPTS:
                    self._quarantine(state, index, error)
                    continue
            state.pending.appendleft(index)
            requeued += 1
        if requeued and _METRICS.enabled:
            _M_SCENARIOS_REQUEUED.inc(requeued)
        self._maybe_finish(state)
        return requeued

    def _quarantine(self, state: _JobState, index: int, error: str) -> None:
        job = state.job
        key = job.cache_keys[index]
        state.quarantined[index] = error
        job.quarantined[key] = error
        if _METRICS.enabled:
            _M_SCENARIOS_QUARANTINED.inc()
        self._append(
            "quarantine",
            {"job": job.id, "index": index, "key": key, "error": error},
        )

    def _expire(self, now: float) -> None:
        """Requeue every lease whose deadline has lapsed."""
        for lease_id in [
            lease_id
            for lease_id, lease in self._leases.items()
            if lease.deadline < now
        ]:
            lease = self._leases.pop(lease_id)
            self._append(
                "release", {"lease": lease.id, "requeue": True, "error": ""}
            )
            self._requeue(lease)
            self.leases_expired += 1
            if _METRICS.enabled:
                _M_LEASES_EXPIRED.inc()
            worker = self._workers.get(lease.worker_id)
            if worker is not None:
                worker.leases_lost += 1


def _id_number(identifier: str) -> int:
    """The numeric tail of a ``w-0007`` / ``lease-000042`` id (0 if odd)."""
    try:
        return int(identifier.rsplit("-", 1)[-1])
    except (ValueError, IndexError):
        return 0


def read_quarantined(store: ResultStore) -> list[dict[str, Any]]:
    """Quarantined scenarios recorded in a store's farm journal.

    Reads the durable record (no live coordinator needed), which is what
    lets ``repro store PATH --stats`` report poison scenarios after the
    farm is gone. Each entry: ``{"job", "key", "error"}``.
    """
    seen: dict[tuple[str, str], dict[str, Any]] = {}
    for _seq, kind, payload in store.journal_records():
        if kind != "quarantine":
            continue
        data = json.loads(payload)
        entry = {"job": data["job"], "key": data["key"], "error": data["error"]}
        seen[(data["job"], data["key"])] = entry
    return list(seen.values())
