"""The farm coordinator: chunked scenario leases with deadline recovery.

One :class:`Coordinator` owns the farmed half of the job queue. Workers
(:mod:`repro.farm.worker`) register, then pull :class:`Lease` chunks of
N scenarios each; a lease carries a deadline that heartbeats extend, and
a lease whose deadline lapses returns its unfinished scenarios to the
front of the queue — so a worker killed mid-sweep costs the farm at most
one chunk of redone work, never a stuck job.

Progress accounting is content-addressed, like the store itself: a
scenario is *done* when a report under its cache key has been absorbed,
no matter which worker or lease delivered it. That one rule makes every
failure mode safe by construction:

* a killed worker's lease expires and is re-leased — the job's
  ``completed`` counter never counted the lost work, so it stays
  consistent;
* a slow worker that completes *after* its lease expired still lands
  its reports (they are correct bytes under a content address); any
  scenario another worker re-finished first is counted once and the
  surplus shows up in the ``duplicates`` counter instead of inflating
  progress;
* two workers racing on the same key write the same canonical bytes —
  the store's ``INSERT OR IGNORE`` keeps exactly one.

The coordinator is a plain thread-safe object; :mod:`repro.service`
exposes it over HTTP (``POST /leases``, ``PUT /leases/<id>/heartbeat``,
``POST /leases/<id>/complete``, ``GET/POST /workers``).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional, Sequence

from repro.runner import RunReport
from repro.store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - circular import at type time only
    from repro.service.jobs import Job

__all__ = ["Coordinator", "Lease", "UnknownLease", "UnknownWorker"]

#: scenarios handed out per lease unless the worker asks for fewer
DEFAULT_LEASE_SCENARIOS = 8

#: seconds a lease stays valid without a heartbeat
DEFAULT_LEASE_TIMEOUT = 30.0

#: a scenario requeued this many times marks its job failed
MAX_ATTEMPTS = 3


class UnknownLease(LookupError):
    """The lease id is not outstanding (expired, completed, or bogus)."""


class UnknownWorker(LookupError):
    """The worker id was never registered."""


class Lease(object):
    """One outstanding chunk of scenarios checked out by one worker."""

    __slots__ = (
        "id", "worker_id", "job_id", "indexes", "keys", "issued_at", "deadline"
    )

    def __init__(
        self,
        lease_id: str,
        worker_id: str,
        job_id: str,
        indexes: list[int],
        keys: list[str],
        issued_at: float,
        deadline: float,
    ) -> None:
        self.id = lease_id
        self.worker_id = worker_id
        self.job_id = job_id
        self.indexes = indexes
        self.keys = keys
        self.issued_at = issued_at
        self.deadline = deadline


class _JobState:
    """Coordinator-side bookkeeping for one farmed job."""

    __slots__ = ("job", "done", "pending", "attempts")

    def __init__(self, job: "Job") -> None:
        self.job = job
        self.done = [False] * len(job.scenarios)
        self.pending: deque[int] = deque()
        self.attempts = [0] * len(job.scenarios)


class _WorkerState:
    """Registration, liveness, and throughput counters for one worker."""

    __slots__ = (
        "id", "name", "registered_at", "last_seen", "leases_completed",
        "leases_lost", "executed", "cached",
    )

    def __init__(self, worker_id: str, name: str, now: float) -> None:
        self.id = worker_id
        self.name = name
        self.registered_at = now
        self.last_seen = now
        self.leases_completed = 0
        self.leases_lost = 0
        self.executed = 0
        self.cached = 0


class Coordinator:
    """Store-backed scenario queue with chunked, deadline-guarded leases.

    Parameters
    ----------
    store:
        The shared result store completed reports land in (and cached
        scenarios are answered from at submit time).
    lease_scenarios:
        Default chunk size per lease.
    lease_timeout:
        Seconds a lease survives without a heartbeat before its
        unfinished scenarios return to the queue.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        store: ResultStore,
        lease_scenarios: int = DEFAULT_LEASE_SCENARIOS,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_scenarios < 1:
            raise ValueError(
                f"lease_scenarios must be >= 1, got {lease_scenarios}"
            )
        if lease_timeout <= 0.0:
            raise ValueError(f"lease_timeout must be > 0, got {lease_timeout}")
        self.store = store
        self.lease_scenarios = int(lease_scenarios)
        self.lease_timeout = float(lease_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: dict[str, _JobState] = {}
        self._workers: dict[str, _WorkerState] = {}
        self._leases: dict[str, Lease] = {}
        self._key_map: dict[str, list[tuple[str, int]]] = {}
        self._worker_ids = itertools.count(1)
        self._lease_ids = itertools.count(1)
        #: completions that arrived for already-done scenarios
        self.duplicates = 0
        self.leases_issued = 0
        self.leases_expired = 0
        #: scenarios completed through the farm (store-cached ones excluded)
        self.scenarios_completed = 0

    # -- job intake ---------------------------------------------------------

    def add_job(self, job: "Job") -> None:
        """Queue a job's scenarios for leasing.

        Scenarios whose cache key is already stored complete instantly —
        the farm never re-executes content the store already holds.
        """
        with self._lock:
            state = _JobState(job)
            self._jobs[job.id] = state
            for index, key in enumerate(job.cache_keys):
                if key in self.store:
                    state.done[index] = True
                    job.completed += 1
                else:
                    state.pending.append(index)
                    self._key_map.setdefault(key, []).append((job.id, index))
            if job.completed >= job.total:
                job.status = "done"
                job.started_at = job.started_at or time.time()
                job.finished_at = time.time()

    # -- worker lifecycle ---------------------------------------------------

    def register(self, name: str = "") -> dict[str, Any]:
        """Register a worker; returns its id and the lease protocol knobs."""
        with self._lock:
            worker_id = f"w-{next(self._worker_ids):04d}"
            self._workers[worker_id] = _WorkerState(
                worker_id, name or worker_id, self._clock()
            )
        return {
            "worker": worker_id,
            "lease_scenarios": self.lease_scenarios,
            "lease_timeout_s": self.lease_timeout,
            "heartbeat_s": self.lease_timeout / 3.0,
        }

    def lease(
        self, worker_id: str, max_scenarios: Optional[int] = None
    ) -> Optional[dict[str, Any]]:
        """Check out the next chunk of scenarios (None when queue is idle)."""
        limit = self.lease_scenarios if max_scenarios is None else max_scenarios
        if limit < 1:
            raise ValueError(f"max_scenarios must be >= 1, got {limit}")
        now = self._clock()
        with self._lock:
            worker = self._touch(worker_id, now)
            self._expire(now)
            for state in self._jobs.values():
                if state.job.status == "failed":
                    continue
                indexes = self._pop_pending(state, limit)
                if not indexes:
                    continue
                job = state.job
                if job.status == "queued":
                    job.status = "running"
                    job.started_at = time.time()
                lease = Lease(
                    f"lease-{next(self._lease_ids):06d}",
                    worker.id,
                    job.id,
                    indexes,
                    [job.cache_keys[i] for i in indexes],
                    now,
                    now + self.lease_timeout,
                )
                self._leases[lease.id] = lease
                self.leases_issued += 1
                return {
                    "id": lease.id,
                    "worker": worker.id,
                    "job": job.id,
                    "scenarios": [
                        job.scenarios[i].to_dict() for i in indexes
                    ],
                    "deadline_s": self.lease_timeout,
                    "heartbeat_s": self.lease_timeout / 3.0,
                }
            return None

    def heartbeat(self, lease_id: str, worker_id: str) -> dict[str, Any]:
        """Extend a lease's deadline; raises :class:`UnknownLease` when gone."""
        now = self._clock()
        with self._lock:
            self._touch(worker_id, now)
            self._expire(now)
            lease = self._leases.get(lease_id)
            if lease is None:
                raise UnknownLease(
                    f"lease {lease_id!r} is not outstanding (expired?)"
                )
            lease.deadline = now + self.lease_timeout
            return {"id": lease.id, "deadline_s": self.lease_timeout}

    def complete(
        self,
        lease_id: str,
        worker_id: str,
        reports: Sequence[RunReport],
        executed: int = 0,
        cached: int = 0,
    ) -> dict[str, Any]:
        """Absorb a lease's finished reports and advance job progress.

        Reports from a lease that already expired are still absorbed
        (``late: true`` in the response) — the bytes are correct under
        their content address; only the accounting differs.
        """
        now = self._clock()
        stored = self.store.put_many(
            [report for report in reports if report.cache_key]
        )
        with self._lock:
            worker = self._touch(worker_id, now)
            self._expire(now)
            lease = self._leases.pop(lease_id, None)
            fresh, duplicates = self._mark_done(
                [report.cache_key for report in reports]
            )
            worker.executed += int(executed)
            worker.cached += int(cached)
            if lease is not None:
                worker.leases_completed += 1
            return {
                "stored": stored,
                "completed": fresh,
                "duplicates": duplicates,
                "late": lease is None,
            }

    def fail(
        self, lease_id: str, worker_id: str, message: str
    ) -> dict[str, Any]:
        """A worker reports a lease it could not finish; requeue its work.

        Each scenario gets :data:`MAX_ATTEMPTS` tries across all
        workers; one that keeps failing marks its job ``failed`` instead
        of looping forever.
        """
        now = self._clock()
        with self._lock:
            self._touch(worker_id, now)
            self._expire(now)
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                raise UnknownLease(
                    f"lease {lease_id!r} is not outstanding (expired?)"
                )
            requeued = self._requeue(lease, error=message)
            return {"requeued": requeued}

    # -- inspection ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The farm's state (what ``GET /workers`` serves)."""
        now = self._clock()
        with self._lock:
            self._expire(now)
            leases_by_worker: dict[str, int] = {}
            for lease in self._leases.values():
                leases_by_worker[lease.worker_id] = (
                    leases_by_worker.get(lease.worker_id, 0) + 1
                )
            pending = sum(
                1
                for state in self._jobs.values()
                for index in state.pending
                if not state.done[index]
            )
            return {
                "workers": [
                    {
                        "id": worker.id,
                        "name": worker.name,
                        "idle_s": round(now - worker.last_seen, 3),
                        "active_leases": leases_by_worker.get(worker.id, 0),
                        "leases_completed": worker.leases_completed,
                        "leases_lost": worker.leases_lost,
                        "executed": worker.executed,
                        "cached": worker.cached,
                    }
                    for worker in self._workers.values()
                ],
                "queue": {
                    "pending_scenarios": pending,
                    "outstanding_leases": len(self._leases),
                    "leases_issued": self.leases_issued,
                    "leases_expired": self.leases_expired,
                    "scenarios_completed": self.scenarios_completed,
                    "duplicates": self.duplicates,
                },
                "lease_timeout_s": self.lease_timeout,
                "lease_scenarios": self.lease_scenarios,
            }

    def idle(self) -> bool:
        """True when no scenario is pending or leased."""
        with self._lock:
            self._expire(self._clock())
            if self._leases:
                return False
            return all(
                state.done[index]
                for state in self._jobs.values()
                for index in state.pending
            )

    # -- internals (call with the lock held) --------------------------------

    def _touch(self, worker_id: str, now: float) -> _WorkerState:
        worker = self._workers.get(worker_id)
        if worker is None:
            raise UnknownWorker(f"worker {worker_id!r} is not registered")
        worker.last_seen = now
        return worker

    def _pop_pending(self, state: _JobState, limit: int) -> list[int]:
        """Up to ``limit`` not-yet-done indexes off the job's queue."""
        indexes: list[int] = []
        while state.pending and len(indexes) < limit:
            index = state.pending.popleft()
            if not state.done[index]:
                indexes.append(index)
        return indexes

    def _mark_done(self, keys: Sequence[str]) -> tuple[int, int]:
        """Mark scenarios done by cache key; returns (fresh, duplicate)."""
        fresh = 0
        duplicates = 0
        for key in keys:
            for job_id, index in self._key_map.get(key, ()):
                state = self._jobs.get(job_id)
                if state is None:
                    continue
                if state.done[index]:
                    duplicates += 1
                    continue
                state.done[index] = True
                fresh += 1
                job = state.job
                job.completed += 1
                if job.completed >= job.total and job.status != "failed":
                    job.status = "done"
                    job.finished_at = time.time()
        self.scenarios_completed += fresh
        self.duplicates += duplicates
        return fresh, duplicates

    def _requeue(self, lease: Lease, error: str = "") -> int:
        """Return a dead lease's unfinished scenarios to the queue front."""
        state = self._jobs.get(lease.job_id)
        if state is None:  # pragma: no cover - jobs are never deleted
            return 0
        requeued = 0
        for index in reversed(lease.indexes):
            if state.done[index]:
                continue
            state.attempts[index] += 1
            if state.attempts[index] >= MAX_ATTEMPTS and error:
                job = state.job
                job.status = "failed"
                job.error = (
                    f"scenario {index} failed {state.attempts[index]} "
                    f"times; last error: {error}"
                )
                job.finished_at = time.time()
                continue
            state.pending.appendleft(index)
            requeued += 1
        return requeued

    def _expire(self, now: float) -> None:
        """Requeue every lease whose deadline has lapsed."""
        for lease_id in [
            lease_id
            for lease_id, lease in self._leases.items()
            if lease.deadline < now
        ]:
            lease = self._leases.pop(lease_id)
            self._requeue(lease)
            self.leases_expired += 1
            worker = self._workers.get(lease.worker_id)
            if worker is not None:
                worker.leases_lost += 1
