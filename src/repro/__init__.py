"""repro — a full reproduction of *Broadcasting in Noisy Radio Networks*
(Censor-Hillel, Haeupler, Hershkowitz, Zuzic; PODC 2017, arXiv:1705.07369).

The library implements the noisy radio network model (sender/receiver
faults over the classic collision channel), the paper's broadcast
algorithms (Decay, FASTBC, Robust FASTBC, RLNC multi-message variants),
the coding substrate (GF(2^8), Reed-Solomon, RLNC), every topology the
arguments use (star, single link, WCT, layered networks, ...), the
Lemma 25/26 fault-robustness transformations, and one experiment driver
per reproduced statement.

Quickstart — declare a :class:`Scenario` and :func:`run` it::

    from repro import FaultConfig, Scenario, run

    report = run(Scenario(algorithm="decay", topology="path",
                          topology_params={"n": 64},
                          faults=FaultConfig.receiver(0.3), seed=1))
    print(report.rounds, report.success)

Every registered algorithm (``all_algorithms()`` lists them) runs through
the same entry point, and :func:`sweep`/:func:`run_batch` fan seed and
parameter grids out across a process pool, returning JSON-serializable
:class:`RunReport` records::

    from repro import sweep

    reports = sweep(Scenario(algorithm="decay", topology="path",
                             topology_params={"n": 64}),
                    seeds=range(10),
                    grid={"algorithm": ["decay", "fastbc"]},
                    processes=4)

The per-algorithm functions (``decay_broadcast``, ``fastbc_broadcast``,
``star_rs_coding``, ...) predate the scenario API and are kept as thin
compatibility entry points over the same implementations::

    from repro import decay_broadcast, FaultConfig, path

    outcome = decay_broadcast(path(64), faults=FaultConfig.receiver(0.3), rng=1)
    print(outcome.rounds, outcome.success)

See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
results; ``python -m repro list`` enumerates the experiments, algorithms,
and topology families, and ``python -m repro sweep`` runs scenario grids
from the command line.
"""

from repro._version import __version__
from repro.algorithms import (
    decay_broadcast,
    fastbc_broadcast,
    robust_fastbc_broadcast,
)
from repro.algorithms.multi import (
    rlnc_decay_broadcast,
    rlnc_robust_fastbc_broadcast,
    star_adaptive_routing,
    star_rs_coding,
)
from repro.adversary import all_adversaries, build_adversary, get_adversary_type
from repro.coding import GF256, ReedSolomonCode, RLNCDecoder, RLNCEncoder
from repro.core import (
    AdversaryConfig,
    Channel,
    FaultConfig,
    FaultModel,
    RadioNetwork,
    Simulator,
)
from repro.analysis import (
    AnalysisReport,
    adaptive_sweep,
    aggregate,
    compare,
    fit,
    fit_scaling,
)
from repro.gbst import build_gbst
from repro.runner import (
    BroadcastAlgorithm,
    RunReport,
    Scenario,
    all_algorithms,
    get_algorithm,
    register_algorithm,
    run,
    run_batch,
    sweep,
)
from repro.store import ResultStore
from repro.timeline import Timeline, TimelineConfig
from repro.topologies import (
    grid,
    gnp,
    path,
    single_link,
    star,
    worst_case_topology,
)

__all__ = [
    "__version__",
    "AdversaryConfig",
    "AnalysisReport",
    "BroadcastAlgorithm",
    "Channel",
    "FaultConfig",
    "FaultModel",
    "GF256",
    "RadioNetwork",
    "ReedSolomonCode",
    "RLNCDecoder",
    "RLNCEncoder",
    "ResultStore",
    "RunReport",
    "Scenario",
    "Simulator",
    "Timeline",
    "TimelineConfig",
    "adaptive_sweep",
    "aggregate",
    "all_adversaries",
    "all_algorithms",
    "build_adversary",
    "build_gbst",
    "compare",
    "get_adversary_type",
    "decay_broadcast",
    "fastbc_broadcast",
    "fit",
    "fit_scaling",
    "get_algorithm",
    "gnp",
    "grid",
    "path",
    "register_algorithm",
    "rlnc_decay_broadcast",
    "rlnc_robust_fastbc_broadcast",
    "robust_fastbc_broadcast",
    "run",
    "run_batch",
    "single_link",
    "star",
    "star_adaptive_routing",
    "star_rs_coding",
    "sweep",
    "worst_case_topology",
]
