"""Streaming group-by aggregation over run reports and result stores.

:func:`aggregate` consumes either a :class:`~repro.store.ResultStore`
(streamed through :meth:`~repro.store.ResultStore.iter_rows`, never
loading the store into memory) or any iterable of
:class:`~repro.runner.RunReport` records, groups on scenario dimensions
(algorithm, topology, n, adversary, fault model/probability, seed,
success), and reports per group: count, mean/stddev, percentiles,
success rate with a Wilson interval, and a seeded-bootstrap confidence
interval for the mean of the metric.

Two row sources exist on purpose. The fast path streams the store's
denormalized columns — no JSON parsing — which is what the 50k+ rows/s
aggregation bar in ``BENCH_analysis.json`` measures. Metrics that need
the scenario parameters (``rounds_per_message`` divides by the RLNC
``k``) stream full reports instead and pay the parse.

Determinism: group order is sorted, and each group's bootstrap is seeded
from the caller seed plus the group key, so the same underlying runs
aggregate to byte-identical canonical :class:`AnalysisReport` JSON
regardless of arrival order or store file layout.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.analysis.report import AnalysisReport
from repro.runner.report import RunReport
from repro.store.store import ResultStore, StoreRow
from repro.util.stats import bootstrap_ci, mean, percentile, stddev, wilson_interval

__all__ = [
    "aggregate",
    "DIMENSIONS",
    "METRICS",
    "rows_from_reports",
    "metric_value",
]

#: dimensions aggregate() can group on
DIMENSIONS = (
    "algorithm",
    "topology",
    "adversary",
    "fault_model",
    "fault_p",
    "n",
    "seed",
    "success",
)

#: metrics aggregate()/compare()/adaptive_sweep() understand; metrics in
#: _REPORT_METRICS need the full report (scenario params), not just the
#: store's denormalized columns
METRICS = ("rounds", "rounds_per_message", "informed_fraction")
_REPORT_METRICS = frozenset({"rounds_per_message", "informed_fraction"})

Row = Union[StoreRow, Mapping[str, Any]]
Source = Union[ResultStore, Iterable[Any]]


def rows_from_reports(reports: Iterable[RunReport]) -> Iterator[dict[str, Any]]:
    """Full report records -> analysis rows (every dimension + metric)."""
    for report in reports:
        scenario = report.scenario
        faults = scenario.get("faults", {})
        adversary = scenario.get("adversary")
        k = int(scenario.get("params", {}).get("k", 1)) or 1
        yield {
            "algorithm": report.algorithm,
            "topology": str(scenario.get("topology", "")),
            "adversary": adversary["kind"] if adversary else "",
            "fault_model": str(faults.get("model", "none")),
            "fault_p": float(faults.get("p", 0.0)),
            "seed": int(scenario.get("seed", 0)),
            "n": report.network_n,
            "success": bool(report.success),
            "rounds": int(report.rounds),
            "k": k,
            "rounds_per_message": report.rounds / k,
            "informed_fraction": report.informed_fraction,
        }


def metric_value(row: Row, metric: str) -> float:
    """The metric of one row (works for StoreRow and mapping rows)."""
    return float(_get(row, metric))


def _get(row: Row, field: str) -> Any:
    if isinstance(row, StoreRow):
        return row.network_n if field == "n" else getattr(row, field)
    return row[field]


def _iter_source(
    source: Source,
    metric: str,
    filters: Optional[Mapping[str, Any]],
    force_reports: bool = False,
) -> Iterator[Row]:
    """Rows from a store (streamed), reports, or pre-built row mappings.

    ``force_reports`` streams full reports from a store even when the
    metric alone would not require them (callers whose *filters* touch
    scenario params, e.g. compare arms on ``k``).
    """
    filters = dict(filters or {})
    if isinstance(source, ResultStore):
        if force_reports or metric in _REPORT_METRICS:
            yield from rows_from_reports(source.iter_reports(**filters))
        else:
            yield from source.iter_rows(**filters)
        return
    if filters:
        raise ValueError(
            "filters= only applies to ResultStore sources; filter report "
            "iterables before passing them"
        )
    iterator = iter(source)
    try:
        first = next(iterator)
    except StopIteration:
        return
    if isinstance(first, RunReport):
        yield from rows_from_reports(_chain_one(first, iterator))
    else:
        yield first
        yield from iterator


def _chain_one(first: Any, rest: Iterator[Any]) -> Iterator[Any]:
    yield first
    yield from rest


def group_seed(seed: int, key: Sequence[Any], salt: str = "") -> int:
    """A deterministic bootstrap seed for one group, order-independent."""
    payload = json.dumps([seed, salt, list(key)], sort_keys=True, default=str)
    return int.from_bytes(
        hashlib.sha256(payload.encode("utf-8")).digest()[:8], "big"
    )


def _percentile_name(q: float) -> str:
    text = f"{float(q):g}"
    return f"p{text}"


def aggregate(
    source: Source,
    by: Sequence[str] = ("algorithm",),
    metric: str = "rounds",
    percentiles: Sequence[float] = (5.0, 50.0, 95.0),
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
    filters: Optional[Mapping[str, Any]] = None,
) -> AnalysisReport:
    """Group-by aggregation -> a canonical :class:`AnalysisReport`.

    Parameters
    ----------
    source:
        A :class:`~repro.store.ResultStore` (streamed; ``filters`` are
        pushed down to SQL) or an iterable of :class:`RunReport` records
        / pre-built row mappings.
    by:
        Dimensions to group on, any subset of :data:`DIMENSIONS`.
    metric:
        One of :data:`METRICS`; ``rounds_per_message`` normalizes
        multi-message (RLNC) runs by their ``k``.
    percentiles:
        Metric percentiles reported per group.
    confidence / resamples / seed:
        Wilson interval confidence and seeded-bootstrap parameters; the
        per-group bootstrap seed mixes ``seed`` with the group key, so
        results are independent of row order.
    """
    by = tuple(by)
    if not by:
        raise ValueError("by must name at least one dimension")
    unknown = set(by) - set(DIMENSIONS)
    if unknown:
        raise ValueError(
            f"unknown dimensions {sorted(unknown)}; allowed: {DIMENSIONS}"
        )
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; allowed: {METRICS}")

    groups: dict[tuple, list[float]] = {}
    successes: dict[tuple, int] = {}
    scanned = 0
    for row in _iter_source(source, metric, filters):
        key = tuple(_get(row, dimension) for dimension in by)
        values = groups.get(key)
        if values is None:
            values = groups[key] = []
            successes[key] = 0
        values.append(float(_get(row, metric)))
        if _get(row, "success"):
            successes[key] += 1
        scanned += 1

    quantile_names = [_percentile_name(q) for q in percentiles]
    columns = (
        list(by)
        + ["count", "mean", "stddev"]
        + quantile_names
        + ["ci_low", "ci_high", "success_rate", "success_low", "success_high"]
    )
    rows = []
    for key in sorted(groups, key=lambda k: tuple(str(v) for v in k)):
        values = groups[key]
        count = len(values)
        # sort before resampling: the bootstrap indexes into the sample,
        # so this makes the interval a function of the multiset of values
        # rather than their arrival order
        ci_low, ci_high = bootstrap_ci(
            sorted(values),
            confidence=confidence,
            resamples=resamples,
            seed=group_seed(seed, key, salt=metric),
        )
        success_low, success_high = wilson_interval(
            successes[key], count, confidence=confidence
        )
        row = dict(zip(by, key))
        row.update(
            count=count,
            mean=mean(values),
            stddev=stddev(values),
            ci_low=ci_low,
            ci_high=ci_high,
            success_rate=successes[key] / count,
            success_low=success_low,
            success_high=success_high,
        )
        for name, q in zip(quantile_names, percentiles):
            row[name] = percentile(values, float(q))
        rows.append(row)

    return AnalysisReport(
        kind="aggregate",
        params={
            "by": list(by),
            "metric": metric,
            "percentiles": [float(q) for q in percentiles],
            "confidence": confidence,
            "resamples": resamples,
            "seed": seed,
            "filters": dict(filters or {}),
        },
        columns=columns,
        rows=rows,
        summary={
            "title": f"aggregate {metric} by {'/'.join(by)}",
            "rows_scanned": scanned,
            "groups": len(rows),
        },
    )
