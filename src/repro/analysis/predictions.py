"""Closed-form round-count predictions, one per reproduced statement.

Each function evaluates the *functional form* a lemma/theorem bounds —
with all constants set to 1 — so experiments can regress measured rounds
against predicted shape (ratios across a sweep should be near-constant if
the shape is right). These are shapes, not absolute predictions.
"""

from __future__ import annotations

import math

__all__ = [
    "decay_rounds",
    "fastbc_faultless_rounds",
    "fastbc_noisy_path_rounds",
    "robust_fastbc_rounds",
    "star_routing_rounds",
    "star_coding_rounds",
    "wct_routing_rounds",
    "wct_coding_rounds",
    "single_link_nonadaptive_rounds",
    "single_link_adaptive_rounds",
    "single_link_coding_rounds",
]


def _log2(value: float) -> float:
    return math.log2(max(2.0, value))


def decay_rounds(n: int, diameter: int, p: float = 0.0) -> float:
    """Lemma 6 / Lemma 9: log n / (1-p) * (D + log n)."""
    return _log2(n) / (1.0 - p) * (diameter + _log2(n))


def fastbc_faultless_rounds(n: int, diameter: int) -> float:
    """Lemma 8: D + log^2 n."""
    return diameter + _log2(n) ** 2


def fastbc_noisy_path_rounds(n: int, diameter: int, p: float) -> float:
    """Lemma 10: p/(1-p) * D log n + D/(1-p)."""
    return p / (1.0 - p) * diameter * _log2(n) + diameter / (1.0 - p)


def robust_fastbc_rounds(n: int, diameter: int, p: float = 0.0) -> float:
    """Theorem 11: D + log n * log log n * log n, with a 1/(1-p) factor on
    the additive term (the D term's constant also depends on 1/(1-p)
    through the block multiplier, folded into the shape constant)."""
    log_n = _log2(n)
    log_log_n = max(1.0, math.log2(max(2.0, log_n)))
    return diameter + log_n * log_log_n * log_n / (1.0 - p)


def star_routing_rounds(n_leaves: int, k: int, p: float) -> float:
    """Lemma 15: k log n (the receiver-fault last-straggler cost).

    The log base reflects per-transmission success 1-p: the expected
    straggler tail is log_{1/p}(n) ~ log2(n)/log2(1/p)."""
    if p == 0.0:
        return float(k)
    return k * _log2(n_leaves) / max(1e-9, math.log2(1.0 / p))


def star_coding_rounds(k: int, p: float) -> float:
    """Lemma 16: k/(1-p) rounds — constant per message."""
    return k / (1.0 - p)


def wct_routing_rounds(n: int, k: int, p: float = 0.5) -> float:
    """Lemma 19: k log^2 n."""
    return k * _log2(n) ** 2 / (1.0 - p)


def wct_coding_rounds(n: int, k: int, p: float = 0.5) -> float:
    """Lemma 23: k log n."""
    return k * _log2(n) / (1.0 - p)


def single_link_nonadaptive_rounds(k: int, p: float) -> float:
    """Lemma 29: k log k."""
    if p == 0.0:
        return float(k)
    return k * 2.0 * math.log(max(2, k)) / math.log(1.0 / p)


def single_link_adaptive_rounds(k: int, p: float) -> float:
    """Lemma 32: k/(1-p)."""
    return k / (1.0 - p)


def single_link_coding_rounds(k: int, p: float) -> float:
    """Lemma 30: k/(1-p)."""
    return k / (1.0 - p)
