"""Growth-rate fitting for experiment tables.

Experiments check *shapes*: does a measured quantity grow like log n, like
n, like k log k? These helpers fit the simple models involved.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["linear_fit", "loglog_slope", "growth_exponent"]


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit ``y = slope * x + intercept``."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a line")
    slope, intercept = np.polyfit(np.asarray(xs, float), np.asarray(ys, float), 1)
    return float(slope), float(intercept)


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Slope of log y against log x — the empirical polynomial degree."""
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("loglog_slope requires positive data")
    slope, _ = linear_fit(
        [math.log(x) for x in xs], [math.log(y) for y in ys]
    )
    return slope


def growth_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Alias of :func:`loglog_slope`, named for experiment readability:
    ``growth_exponent ~ 1`` means linear growth, ``~ 0`` means flat."""
    return loglog_slope(xs, ys)
