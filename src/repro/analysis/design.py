"""Adaptive sequential experiment design over the result store.

:func:`adaptive_sweep` answers the ROADMAP question "which scenarios are
worth running?": instead of a fixed seeds-per-cell grid, it runs seed
batches per grid cell until every cell's seeded-bootstrap confidence
interval for the metric mean is tighter than ``target_halfwidth``,
always spending the next batch on the **widest** unconverged cell. Cells
whose noise is already characterized stop consuming compute; noisy cells
(bursty adversaries, fault probabilities near the percolation knee) get
the extra seeds.

Everything flows through :func:`repro.runner.run_batch` with the store
threaded in (``reuse=True``), so the design is **resumable for free**:
seeds per cell are allocated ``0, 1, 2, ...`` deterministically, every
decision is a pure function of the (deterministic) run results, and a
rerun against the same store replays the identical allocation from cache
— byte-identical canonical :class:`AnalysisReport`, zero new scenario
executions. That invariant is what the CI kill/restart check asserts.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.analysis.aggregate import METRICS, group_seed, rows_from_reports
from repro.analysis.report import AnalysisReport
from repro.runner import Scenario, expand_grid, run_batch
from repro.store.store import ResultStore
from repro.util.stats import bootstrap_ci, mean

__all__ = ["adaptive_sweep"]


def _cell_label(keys: Sequence[str], combo: Sequence[Any]) -> dict[str, Any]:
    """One grid combination as a JSON-friendly mapping."""
    label = {}
    for key, value in zip(keys, combo):
        label[key] = value.to_dict() if hasattr(value, "to_dict") else value
    return label


class _Cell:
    """One grid cell's scenarios-so-far and metric values."""

    __slots__ = ("scenario", "label", "values", "halfwidth", "converged")

    def __init__(self, scenario: Scenario, label: dict[str, Any]) -> None:
        self.scenario = scenario
        self.label = label
        self.values: list[float] = []
        self.halfwidth = float("inf")
        self.converged = False


def adaptive_sweep(
    base: Scenario,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    target_halfwidth: float = 1.0,
    max_seeds: int = 64,
    batch: int = 4,
    metric: str = "rounds",
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
    seed_start: int = 0,
    store: Optional[ResultStore] = None,
    processes: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> AnalysisReport:
    """Run seed batches per grid cell until every CI is tight enough.

    Parameters
    ----------
    base, grid:
        The scenario grid, exactly as :func:`repro.runner.expand_grid`
        understands it (minus seeds, which this function allocates).
    target_halfwidth:
        Stop refining a cell once the bootstrap CI for the metric mean is
        within ``±target_halfwidth``.
    max_seeds:
        Hard per-cell seed budget; an unconverged cell at the budget is
        reported with ``converged=False``, never silently dropped.
    batch:
        Seeds per refinement step (also the initial allocation).
    store:
        A :class:`~repro.store.ResultStore`; strongly recommended — with
        it the sweep is resumable and a rerun executes nothing.
    progress:
        Optional callback ``(runs_completed, runs_upper_bound)`` invoked
        after every batch (the service job layer threads its progress
        counters through this).

    Returns a canonical :class:`AnalysisReport` (kind ``adaptive``) with
    one row per cell; ``meta`` records wall time and how many scenarios
    actually executed vs. were served from the store.
    """
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; allowed: {METRICS}")
    if target_halfwidth <= 0.0:
        raise ValueError(
            f"target_halfwidth must be > 0, got {target_halfwidth}"
        )
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if max_seeds < batch:
        raise ValueError(
            f"max_seeds ({max_seeds}) must be >= batch ({batch})"
        )

    grid = dict(grid or {})
    keys = list(grid)
    combos = list(itertools.product(*(grid[key] for key in keys)))
    # expand_grid iterates the same itertools.product order (seeds vary
    # fastest), so one placeholder seed yields exactly one scenario per
    # combo, in combo order
    cell_scenarios = expand_grid(base, seeds=[0], grid=grid)
    assert len(cell_scenarios) == len(combos)
    cells = [
        _Cell(scenario, _cell_label(keys, combo))
        for scenario, combo in zip(cell_scenarios, combos)
    ]

    start = time.perf_counter()
    stored_before = len(store) if store is not None else 0
    total_runs = 0
    upper_bound = len(cells) * max_seeds

    def extend(cell: _Cell, count: int) -> None:
        nonlocal total_runs
        first = seed_start + len(cell.values)
        scenarios = [
            cell.scenario.with_(seed=s) for s in range(first, first + count)
        ]
        reports = run_batch(
            scenarios, processes=processes, store=store, reuse=True
        )
        cell.values.extend(
            row[metric] for row in rows_from_reports(reports)
        )
        total_runs += count
        if progress is not None:
            progress(total_runs, upper_bound)

    def refresh(cell: _Cell) -> None:
        low, high = bootstrap_ci(
            cell.values,
            confidence=confidence,
            resamples=resamples,
            seed=group_seed(
                seed, (sorted(cell.label.items()), len(cell.values)),
                salt=metric,
            ),
        )
        cell.halfwidth = (high - low) / 2.0
        cell.converged = cell.halfwidth <= target_halfwidth

    for cell in cells:
        extend(cell, batch)
        refresh(cell)

    while True:
        open_cells = [
            cell
            for cell in cells
            if not cell.converged and len(cell.values) < max_seeds
        ]
        if not open_cells:
            break
        # widest CI first; ties broken by grid order for determinism
        widest = max(
            open_cells,
            key=lambda cell: (cell.halfwidth, -cells.index(cell)),
        )
        extend(widest, min(batch, max_seeds - len(widest.values)))
        refresh(widest)

    executed = (len(store) - stored_before) if store is not None else total_runs
    columns = ["cell", "seeds", "mean", "ci_low", "ci_high", "halfwidth", "converged"]
    rows = []
    for cell in cells:
        low, high = bootstrap_ci(
            cell.values,
            confidence=confidence,
            resamples=resamples,
            seed=group_seed(
                seed, (sorted(cell.label.items()), len(cell.values)),
                salt=metric,
            ),
        )
        rows.append(
            {
                "cell": cell.label,
                "seeds": len(cell.values),
                "mean": mean(cell.values),
                "ci_low": low,
                "ci_high": high,
                "halfwidth": (high - low) / 2.0,
                "converged": cell.converged,
            }
        )

    converged = sum(1 for cell in cells if cell.converged)
    return AnalysisReport(
        kind="adaptive",
        params={
            "base": base.to_dict(),
            "grid": {
                key: [
                    value.to_dict() if hasattr(value, "to_dict") else value
                    for value in values
                ]
                for key, values in grid.items()
            },
            "metric": metric,
            "target_halfwidth": target_halfwidth,
            "max_seeds": max_seeds,
            "batch": batch,
            "confidence": confidence,
            "resamples": resamples,
            "seed": seed,
            "seed_start": seed_start,
        },
        columns=columns,
        rows=rows,
        summary={
            "title": (
                f"adaptive sweep: {len(cells)} cells to ±{target_halfwidth:g} "
                f"{metric} ({converged} converged)"
            ),
            "cells": len(cells),
            "converged": converged,
            "total_runs": total_runs,
        },
        meta={
            "wall_time_s": time.perf_counter() - start,
            "executed": executed,
            "served_from_store": total_runs - executed if store is not None else 0,
            "store_path": store.path if store is not None else "",
        },
    )
