"""Paired comparison of two arms on matched seeds.

The repo's headline quantitative claim — network-coded gossip beats
uncoded broadcast by a multiplicative factor — is a *paired* statement:
both arms run the same topology, size, noise, and seed, and only the
algorithm differs. :func:`compare` matches rows from two arms on those
shared dimensions and certifies the gap two ways:

* an exact two-sided **sign test** on which arm wins each pair (no
  distributional assumptions at all), and
* a seeded **bootstrap CI of the mean per-pair ratio** (arm A metric /
  arm B metric); a CI excluding 1.0 is the certification the E21
  acceptance bar asks for.

The result is a canonical :class:`AnalysisReport` (kind ``compare``)
with one row per matched group (every match dimension except the seed)
and the overall verdict in ``summary`` — content-addressed via
``cache_key()`` like every other analysis.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional, Sequence

from repro.analysis.aggregate import (
    DIMENSIONS,
    METRICS,
    Source,
    _get,
    _iter_source,
    group_seed,
)
from repro.analysis.report import AnalysisReport
from repro.util.stats import bootstrap_ci, mean

__all__ = ["compare", "sign_test"]

#: row fields arms may filter on (the dimensions plus the RLNC k)
_ARM_FIELDS = frozenset(DIMENSIONS) | {"k"}

#: fields only report-backed rows carry (store rows lack scenario params)
_REPORT_FIELDS = frozenset({"k"})


def sign_test(wins: int, losses: int) -> float:
    """Exact two-sided sign-test p-value (ties excluded by the caller).

    Under the null both arms are equally likely to win a pair, so
    ``wins ~ Binomial(wins + losses, 1/2)``; the p-value doubles the tail
    of the more extreme side (clipped at 1.0).
    """
    if wins < 0 or losses < 0:
        raise ValueError("wins and losses must be non-negative")
    trials = wins + losses
    if trials == 0:
        return 1.0
    extreme = min(wins, losses)
    tail = sum(math.comb(trials, i) for i in range(extreme + 1)) / 2.0**trials
    return min(1.0, 2.0 * tail)


def _normalize_arm(arm: Mapping[str, Any]) -> dict[str, Any]:
    """Honor the store layer's ``adversary="none"`` spelling (stored ``""``)."""
    normalized = dict(arm)
    if normalized.get("adversary") == "none":
        normalized["adversary"] = ""
    return normalized


def _matches(row: Any, conditions: Mapping[str, Any]) -> bool:
    return all(_get(row, field) == value for field, value in conditions.items())


def compare(
    source: Source,
    arm_a: Mapping[str, Any],
    arm_b: Mapping[str, Any],
    metric: str = "rounds",
    match_on: Sequence[str] = ("topology", "n", "seed"),
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
    filters: Optional[Mapping[str, Any]] = None,
) -> AnalysisReport:
    """Pair two arms on matched dimensions -> :class:`AnalysisReport`.

    ``arm_a``/``arm_b`` are equality filters on row fields (e.g.
    ``{"algorithm": "decay"}`` vs ``{"algorithm": "rlnc_decay"}``); rows
    matching neither arm are ignored. Pairs form on equal ``match_on``
    tuples; duplicates within an arm collapse to their mean. The per-pair
    ratio is ``metric(A) / metric(B)`` — for round counts, a ratio above
    1.0 means arm A is slower.

    ``summary.significant`` is True when the bootstrap CI of the mean
    ratio excludes 1.0; ``summary.sign_test_p`` is the exact sign test
    over pair winners.
    """
    arm_a = _normalize_arm(arm_a)
    arm_b = _normalize_arm(arm_b)
    if not arm_a or not arm_b:
        raise ValueError("both arms need at least one filter field")
    match_on = tuple(match_on)
    if not match_on:
        raise ValueError("match_on must name at least one dimension")
    for mapping in (arm_a, arm_b, dict.fromkeys(match_on)):
        unknown = set(mapping) - _ARM_FIELDS
        if unknown:
            raise ValueError(
                f"unknown fields {sorted(unknown)}; allowed: {sorted(_ARM_FIELDS)}"
            )
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; allowed: {METRICS}")

    # force report-backed rows when any filter needs fields the store's
    # denormalized columns do not carry (the metric forces them itself)
    needs_reports = bool(
        _REPORT_FIELDS & (set(arm_a) | set(arm_b) | set(match_on))
    )

    sides: dict[tuple, dict[str, list[float]]] = {}
    scanned = 0
    for row in _iter_source(source, metric, filters, force_reports=needs_reports):
        scanned += 1
        in_a = _matches(row, arm_a)
        in_b = _matches(row, arm_b)
        if in_a and in_b:
            # a misassigned partition would silently skew every pairing
            # statistic, so overlapping arms are a caller error
            raise ValueError(
                f"arms overlap: a row matches both {arm_a} and {arm_b}; "
                "make the arm filters mutually exclusive"
            )
        if in_a:
            side = "a"
        elif in_b:
            side = "b"
        else:
            continue
        key = tuple(_get(row, field) for field in match_on)
        sides.setdefault(key, {"a": [], "b": []})[side].append(
            float(_get(row, metric))
        )

    pairs: dict[tuple, tuple[float, float]] = {}
    for key, values in sides.items():
        if values["a"] and values["b"]:
            pairs[key] = (mean(values["a"]), mean(values["b"]))
    if not pairs:
        raise ValueError(
            "no matched pairs: the two arms share no "
            f"{'/'.join(match_on)} combination"
        )

    ordered = sorted(pairs, key=lambda k: tuple(str(v) for v in k))
    ratios, wins, losses, ties, dropped = [], 0, 0, 0, 0
    for key in ordered:
        value_a, value_b = pairs[key]
        if value_b == 0.0:
            dropped += 1
            continue
        ratios.append(value_a / value_b)
        if value_a > value_b:
            wins += 1
        elif value_a < value_b:
            losses += 1
        else:
            ties += 1
    if not ratios:
        raise ValueError("every matched pair had a zero-valued B arm")

    ci_low, ci_high = bootstrap_ci(
        ratios,
        confidence=confidence,
        resamples=resamples,
        seed=group_seed(seed, ("compare", metric), salt="ratio"),
    )

    # per-group breakdown: everything in match_on except the seed axis
    group_fields = tuple(field for field in match_on if field != "seed")
    groups: dict[tuple, list[tuple[float, float]]] = {}
    for key in ordered:
        value_a, value_b = pairs[key]
        if value_b == 0.0:
            continue
        label = tuple(
            part for field, part in zip(match_on, key) if field != "seed"
        )
        groups.setdefault(label, []).append((value_a, value_b))
    columns = list(group_fields) + [
        "pairs", "mean_a", "mean_b", "mean_ratio",
        "ratio_ci_low", "ratio_ci_high",
    ]
    rows = []
    for label in sorted(groups, key=lambda k: tuple(str(v) for v in k)):
        group_pairs = groups[label]
        values = [a / b for a, b in group_pairs]
        low, high = bootstrap_ci(
            values,
            confidence=confidence,
            resamples=resamples,
            seed=group_seed(seed, label, salt="compare-group"),
        )
        row = dict(zip(group_fields, label))
        row.update(
            pairs=len(values),
            mean_a=mean([a for a, _ in group_pairs]),
            mean_b=mean([b for _, b in group_pairs]),
            mean_ratio=mean(values),
            ratio_ci_low=low,
            ratio_ci_high=high,
        )
        rows.append(row)

    mean_ratio = mean(ratios)
    return AnalysisReport(
        kind="compare",
        params={
            "arm_a": arm_a,
            "arm_b": arm_b,
            "metric": metric,
            "match_on": list(match_on),
            "confidence": confidence,
            "resamples": resamples,
            "seed": seed,
            "filters": dict(filters or {}),
        },
        columns=columns,
        rows=rows,
        summary={
            "title": (
                f"compare {metric}: {arm_a} vs {arm_b} "
                f"on matched {'/'.join(match_on)}"
            ),
            "rows_scanned": scanned,
            "pairs": len(ratios),
            "dropped_zero_pairs": dropped,
            "mean_ratio": mean_ratio,
            "ratio_ci_low": ci_low,
            "ratio_ci_high": ci_high,
            "wins": wins,
            "losses": losses,
            "ties": ties,
            "sign_test_p": sign_test(wins, losses),
            "significant": ci_low > 1.0 or ci_high < 1.0,
        },
    )
