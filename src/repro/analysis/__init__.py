"""Theory-side tools: tail bounds, closed-form predictions, curve fitting."""

from repro.analysis.bounds import (
    chernoff_binomial_lower_tail,
    chernoff_binomial_upper_tail,
    chernoff_geometric_sum_tail,
    union_bound,
)
from repro.analysis.fitting import growth_exponent, linear_fit, loglog_slope
from repro.analysis.predictions import (
    decay_rounds,
    fastbc_faultless_rounds,
    fastbc_noisy_path_rounds,
    robust_fastbc_rounds,
    single_link_adaptive_rounds,
    single_link_coding_rounds,
    single_link_nonadaptive_rounds,
    star_coding_rounds,
    star_routing_rounds,
    wct_coding_rounds,
    wct_routing_rounds,
)

__all__ = [
    "chernoff_binomial_lower_tail",
    "chernoff_binomial_upper_tail",
    "chernoff_geometric_sum_tail",
    "decay_rounds",
    "fastbc_faultless_rounds",
    "fastbc_noisy_path_rounds",
    "growth_exponent",
    "linear_fit",
    "loglog_slope",
    "robust_fastbc_rounds",
    "single_link_adaptive_rounds",
    "single_link_coding_rounds",
    "single_link_nonadaptive_rounds",
    "star_coding_rounds",
    "star_routing_rounds",
    "union_bound",
    "wct_coding_rounds",
    "wct_routing_rounds",
]
