"""Statistics and experiment design over runs, stores, and theory.

Two halves live here. The theory side (bounds, closed-form predictions,
basic curve fitting) predates the result store. The store-native side —
:mod:`~repro.analysis.aggregate` (streaming group-by with Wilson and
bootstrap intervals), :mod:`~repro.analysis.fit` (scaling-law fitting
with AIC model comparison), :mod:`~repro.analysis.compare` (paired
sign-test/bootstrap certification of algorithm gaps), and
:mod:`~repro.analysis.design` (adaptive sequential sweeps that spend
seeds where the confidence intervals are widest) — consumes the
thousands of canonical reports a :class:`~repro.store.ResultStore`
accumulates and emits content-addressed :class:`AnalysisReport` records.
The CLI surface is ``repro analyze aggregate|fit|compare|adaptive``; the
service surface is ``GET /analysis`` and adaptive ``POST /jobs``.
"""

from repro.analysis.aggregate import aggregate, rows_from_reports
from repro.analysis.compare import compare, sign_test
from repro.analysis.design import adaptive_sweep
from repro.analysis.fit import fit, fit_polylog, fit_power_law, fit_scaling
from repro.analysis.report import ANALYSIS_SCHEMA, AnalysisReport
from repro.analysis.bounds import (
    chernoff_binomial_lower_tail,
    chernoff_binomial_upper_tail,
    chernoff_geometric_sum_tail,
    union_bound,
)
from repro.analysis.fitting import growth_exponent, linear_fit, loglog_slope
from repro.analysis.predictions import (
    decay_rounds,
    fastbc_faultless_rounds,
    fastbc_noisy_path_rounds,
    robust_fastbc_rounds,
    single_link_adaptive_rounds,
    single_link_coding_rounds,
    single_link_nonadaptive_rounds,
    star_coding_rounds,
    star_routing_rounds,
    wct_coding_rounds,
    wct_routing_rounds,
)

__all__ = [
    "ANALYSIS_SCHEMA",
    "AnalysisReport",
    "adaptive_sweep",
    "aggregate",
    "compare",
    "fit",
    "fit_polylog",
    "fit_power_law",
    "fit_scaling",
    "rows_from_reports",
    "sign_test",
    "chernoff_binomial_lower_tail",
    "chernoff_binomial_upper_tail",
    "chernoff_geometric_sum_tail",
    "decay_rounds",
    "fastbc_faultless_rounds",
    "fastbc_noisy_path_rounds",
    "growth_exponent",
    "linear_fit",
    "loglog_slope",
    "robust_fastbc_rounds",
    "single_link_adaptive_rounds",
    "single_link_coding_rounds",
    "single_link_nonadaptive_rounds",
    "star_coding_rounds",
    "star_routing_rounds",
    "union_bound",
    "wct_coding_rounds",
    "wct_routing_rounds",
]
