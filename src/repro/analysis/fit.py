"""Scaling-law fitting: fitted exponents and ``D + c*log^k n`` models.

The paper's statements are asymptotic shapes — uncoded broadcast pays a
multiplicative ``Θ(log n)``-type overhead that network-coded gossip
avoids — so E-series experiments should report *fitted* complexity, not
raw tables. Two model families are fit against rounds-vs-n curves:

* a power law ``y = C * n^a`` via log-log least squares (the empirical
  polynomial degree, :func:`repro.analysis.fitting.loglog_slope`);
* the paper's additive family ``y = D + c * log^k n`` for
  ``k = 0..max_k`` via linear least squares,

and compared with AIC on the common linear-space residuals, so "does a
``D + log^2 n`` shape beat a ``D + log n`` shape" is a model-selection
statement instead of an eyeball.

:func:`fit_scaling` works on plain (x, y) arrays;
:func:`fit` streams a store or report iterable, collapses it to mean
metric per (group, n) through :mod:`repro.analysis.aggregate`, and emits
one canonical :class:`AnalysisReport` row per group.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.aggregate import Source, aggregate
from repro.analysis.fitting import linear_fit
from repro.analysis.report import AnalysisReport

__all__ = ["fit", "fit_scaling", "fit_power_law", "fit_polylog"]

_RSS_FLOOR = 1e-12


def _aic(rss: float, points: int, parameters: int) -> float:
    """Akaike information criterion under gaussian residuals."""
    return points * math.log(max(rss, _RSS_FLOOR) / points) + 2.0 * parameters


def _r2(ys: np.ndarray, residuals: np.ndarray) -> float:
    total = float(np.sum((ys - ys.mean()) ** 2))
    if total <= 0.0:
        return 1.0
    return 1.0 - float(np.sum(residuals**2)) / total


def fit_power_law(
    xs: Sequence[float], ys: Sequence[float]
) -> dict[str, Any]:
    """Fit ``y = C * x^a`` by log-log least squares.

    Returns the fitted ``exponent`` (a), ``coefficient`` (C), linear-space
    ``rss``/``aic`` (comparable with :func:`fit_polylog` models), and the
    log-space ``r2``.
    """
    xs_arr = np.asarray(xs, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    if xs_arr.size != ys_arr.size:
        raise ValueError(f"length mismatch: {xs_arr.size} xs vs {ys_arr.size} ys")
    if xs_arr.size < 3:
        raise ValueError("need at least three points to fit a scaling law")
    if np.any(xs_arr <= 0) or np.any(ys_arr <= 0):
        raise ValueError("power-law fitting requires positive data")
    slope, intercept = linear_fit(np.log(xs_arr), np.log(ys_arr))
    predicted = math.e**intercept * xs_arr**slope
    residuals = ys_arr - predicted
    log_residuals = np.log(ys_arr) - (intercept + slope * np.log(xs_arr))
    rss = float(np.sum(residuals**2))
    return {
        "model": "power_law",
        "exponent": float(slope),
        "coefficient": float(math.e**intercept),
        "rss": rss,
        "aic": _aic(rss, xs_arr.size, 2),
        "r2_log": _r2(np.log(ys_arr), log_residuals),
    }


def fit_polylog(
    xs: Sequence[float], ys: Sequence[float], max_k: int = 3
) -> list[dict[str, Any]]:
    """Fit ``y = D + c * log^k x`` for every ``k`` in ``0..max_k``.

    ``k = 0`` is the constant model (``y = D``). Returns one model dict
    per ``k`` with linear-space ``rss``/``aic``/``r2``, in ``k`` order.
    """
    xs_arr = np.asarray(xs, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    if xs_arr.size != ys_arr.size:
        raise ValueError(f"length mismatch: {xs_arr.size} xs vs {ys_arr.size} ys")
    if xs_arr.size < 3:
        raise ValueError("need at least three points to fit a scaling law")
    if np.any(xs_arr <= 1):
        raise ValueError("polylog fitting requires x > 1")
    if max_k < 0:
        raise ValueError(f"max_k must be >= 0, got {max_k}")
    logs = np.log2(xs_arr)
    models = []
    for k in range(max_k + 1):
        if k == 0:
            d = float(ys_arr.mean())
            c = 0.0
            predicted = np.full_like(ys_arr, d)
            parameters = 1
        else:
            design = np.column_stack([np.ones_like(logs), logs**k])
            (d, c), *_ = np.linalg.lstsq(design, ys_arr, rcond=None)
            predicted = d + c * logs**k
            parameters = 2
        residuals = ys_arr - predicted
        rss = float(np.sum(residuals**2))
        models.append(
            {
                "model": f"D+c*log^{k}(n)" if k else "constant",
                "k": k,
                "D": float(d),
                "c": float(c),
                "rss": rss,
                "aic": _aic(rss, xs_arr.size, parameters),
                "r2": _r2(ys_arr, residuals),
            }
        )
    return models


def fit_scaling(
    xs: Sequence[float], ys: Sequence[float], max_k: int = 3
) -> dict[str, Any]:
    """Fit the power law and every polylog model; pick the AIC winner.

    Returns ``{"power_law": ..., "models": [...], "best": <model dict>}``
    where ``models`` holds the polylog family and ``best`` minimizes AIC
    across all candidates (power law included).
    """
    power = fit_power_law(xs, ys)
    models = fit_polylog(xs, ys, max_k=max_k)
    best = min(models + [power], key=lambda m: m["aic"])
    return {"power_law": power, "models": models, "best": best}


def fit(
    source: Source,
    by: Sequence[str] = ("algorithm",),
    x: str = "n",
    metric: str = "rounds",
    max_k: int = 3,
    filters: Optional[Mapping[str, Any]] = None,
    seed: int = 0,
) -> AnalysisReport:
    """Fit metric-vs-``x`` scaling per group -> :class:`AnalysisReport`.

    Streams ``source`` once (see :func:`repro.analysis.aggregate.aggregate`),
    collapses to the mean metric per (group, x), and fits
    :func:`fit_scaling` on each group's curve. Groups with fewer than
    three distinct ``x`` values are reported with ``points`` only (no
    fit), not dropped — silent truncation would read as "fitted".
    """
    by = tuple(by)
    if x in by:
        raise ValueError(f"x dimension {x!r} cannot also be a group dimension")
    collapsed = aggregate(
        source,
        by=by + (x,),
        metric=metric,
        percentiles=(50.0,),
        resamples=1,
        seed=seed,
        filters=filters,
    )
    curves: dict[tuple, list[tuple[float, float]]] = {}
    for row in collapsed.rows:
        key = tuple(row[dimension] for dimension in by)
        curves.setdefault(key, []).append((float(row[x]), float(row["mean"])))

    columns = list(by) + [
        "points",
        "exponent",
        "coefficient",
        "r2_log",
        "best_model",
        "best_aic",
        "models",
    ]
    rows = []
    for key in sorted(curves, key=lambda k: tuple(str(v) for v in k)):
        points = sorted(curves[key])
        row: dict[str, Any] = dict(zip(by, key))
        row["points"] = len(points)
        if len(points) < 3:
            row.update(
                exponent=None, coefficient=None, r2_log=None,
                best_model=None, best_aic=None, models=[],
            )
        else:
            xs_arr = [p for p, _ in points]
            ys_arr = [value for _, value in points]
            result = fit_scaling(xs_arr, ys_arr, max_k=max_k)
            power = result["power_law"]
            row.update(
                exponent=power["exponent"],
                coefficient=power["coefficient"],
                r2_log=power["r2_log"],
                best_model=result["best"]["model"],
                best_aic=result["best"]["aic"],
                models=[
                    {"model": m["model"], "aic": m["aic"], "r2": m["r2"]}
                    for m in result["models"]
                ],
            )
        rows.append(row)

    return AnalysisReport(
        kind="fit",
        params={
            "by": list(by),
            "x": x,
            "metric": metric,
            "max_k": max_k,
            "seed": seed,
            "filters": dict(filters or {}),
        },
        columns=columns,
        rows=rows,
        summary={
            "title": f"fit {metric} vs {x} by {'/'.join(by)}",
            "groups": len(rows),
            "rows_scanned": collapsed.summary["rows_scanned"],
        },
    )
