"""Canonical, content-addressed analysis records.

Every analysis entry point (:func:`~repro.analysis.aggregate.aggregate`,
:func:`~repro.analysis.fit.fit_scaling`,
:func:`~repro.analysis.compare.compare`,
:func:`~repro.analysis.design.adaptive_sweep`) returns one
:class:`AnalysisReport`: a fixed-schema table of rows plus a summary
dict, rendered canonically the same way :class:`~repro.runner.RunReport`
is. The determinism contract extends upward: because run reports are
pure functions of their scenarios and every analysis statistic is
seeded, an analysis over the same underlying runs renders byte-identical
canonical JSON — which makes ``cache_key()`` (SHA-256 over the canonical
body plus code/schema version) a valid content address for the analysis
itself.

``meta`` carries everything that is true about one particular execution
rather than the analysis (wall time, how many scenarios actually
executed vs. were served from the store, the store path); it is excluded
from the canonical form, exactly like ``wall_time_s`` on a run report.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro._version import __version__
from repro.util.tables import Table

__all__ = ["AnalysisReport", "ANALYSIS_SCHEMA"]

#: bump on incompatible changes to the analysis report shape
ANALYSIS_SCHEMA = 1


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars / tuples to JSON-native values, recursively."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _jsonable(value.item())
    return str(value)


@dataclass(frozen=True)
class AnalysisReport:
    """One analysis outcome: kind, parameters, row table, summary.

    ``rows`` are mappings keyed by ``columns`` (extra keys are not
    allowed — the schema is fixed so canonical bytes are stable);
    ``summary`` holds the headline statistics of the whole analysis.
    """

    kind: str
    params: dict
    columns: tuple
    rows: list
    summary: dict
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _jsonable(dict(self.params)))
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(
            self, "rows", [_jsonable(dict(row)) for row in self.rows]
        )
        object.__setattr__(self, "summary", _jsonable(dict(self.summary)))
        object.__setattr__(self, "meta", dict(self.meta))
        for index, row in enumerate(self.rows):
            if set(row) != set(self.columns):
                raise ValueError(
                    f"row {index} keys {sorted(row)} do not match columns "
                    f"{sorted(self.columns)}"
                )

    # -- content addressing --------------------------------------------------

    def _body(self) -> dict[str, Any]:
        return {
            "schema": ANALYSIS_SCHEMA,
            "version": __version__,
            "kind": self.kind,
            "params": self.params,
            "columns": list(self.columns),
            "rows": self.rows,
            "summary": self.summary,
        }

    def cache_key(self) -> str:
        """SHA-256 content address of the canonical analysis body."""
        payload = json.dumps(
            self._body(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- serialization -------------------------------------------------------

    def to_dict(self, include_meta: bool = True) -> dict[str, Any]:
        """JSON form; ``include_meta=False`` is the canonical subset."""
        data = self._body()
        data["cache_key"] = self.cache_key()
        if include_meta and self.meta:
            data["meta"] = _jsonable(self.meta)
        return data

    def to_json(self, indent: "int | None" = None, canonical: bool = False) -> str:
        """Render as JSON; ``canonical=True`` drops ``meta`` and fixes key
        order so equal analyses compare byte-identical."""
        return json.dumps(
            self.to_dict(include_meta=not canonical),
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalysisReport":
        """Inverse of :meth:`to_dict` (``schema``/``version``/``cache_key``
        are recomputed, not trusted)."""
        return cls(
            kind=data["kind"],
            params=dict(data.get("params", {})),
            columns=tuple(data["columns"]),
            rows=[dict(row) for row in data.get("rows", [])],
            summary=dict(data.get("summary", {})),
            meta=dict(data.get("meta", {})),
        )

    # -- rendering -----------------------------------------------------------

    def to_table(self) -> Table:
        """Tabulate the rows (dict-valued cells render as compact JSON)."""
        title = self.summary.get("title") or f"analysis: {self.kind}"
        table = Table(list(self.columns), title=str(title))
        for row in self.rows:
            table.add_row(
                *(
                    json.dumps(row[column], sort_keys=True)
                    if isinstance(row[column], (dict, list))
                    else row[column]
                    for column in self.columns
                )
            )
        return table
