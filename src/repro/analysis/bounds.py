"""Concentration bounds used in the paper's proofs (Appendix B).

These are the *analytic* counterparts of the simulations: experiments
compare empirical failure rates against these bounds (which must upper
bound them), and tests verify the bounds against exact tail computations
on small instances.
"""

from __future__ import annotations

import math

from repro.util.validation import check_fraction, check_positive

__all__ = [
    "chernoff_geometric_sum_tail",
    "chernoff_binomial_upper_tail",
    "chernoff_binomial_lower_tail",
    "union_bound",
]


def chernoff_geometric_sum_tail(n: int, delta: float) -> float:
    """Theorem 34 (Doerr): for X the sum of n independent geometric
    variables with common success probability, and any delta > 0,

        P(X >= (1 + delta) E[X]) <= exp(-delta^2 (n-1) / (2 (1 + delta))).

    Notably independent of the success probability.
    """
    check_positive(n, "n")
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    exponent = -(delta**2) * (n - 1) / (2.0 * (1.0 + delta))
    return math.exp(exponent)


def chernoff_binomial_upper_tail(n: int, p: float, delta: float) -> float:
    """P(Bin(n, p) >= (1+delta) np) <= exp(-delta^2 np / (2 + delta))."""
    check_positive(n, "n")
    check_fraction(p, "p")
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    return math.exp(-(delta**2) * n * p / (2.0 + delta))


def chernoff_binomial_lower_tail(n: int, p: float, delta: float) -> float:
    """P(Bin(n, p) <= (1-delta) np) <= exp(-delta^2 np / 2)."""
    check_positive(n, "n")
    check_fraction(p, "p")
    if not 0 < delta <= 1:
        raise ValueError(f"delta must be in (0, 1], got {delta}")
    return math.exp(-(delta**2) * n * p / 2.0)


def union_bound(*probabilities: float) -> float:
    """min(1, sum of failure probabilities)."""
    total = 0.0
    for q in probabilities:
        if q < 0:
            raise ValueError(f"probability must be >= 0, got {q}")
        total += q
    return min(1.0, total)
