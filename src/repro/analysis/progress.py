"""Trace-based progress analysis: stalls, frontier speed, wave diagnostics.

The Lemma 10 recurrence predicts a very specific microscopic behaviour: on
a path, the message front advances one hop per wave slot unless a fault
drops it, in which case it *stalls for a full wave period* ``Θ(log n)``.
These helpers extract exactly that from a simulation — the per-hop
inter-progress gaps — so experiments and tests can check the stall
distribution itself, not just the total round count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.util.stats import Summary, summarize

__all__ = ["ProgressTimeline", "extract_progress", "stall_gaps"]


@dataclass(frozen=True)
class ProgressTimeline:
    """Rounds at which each node first became informed (index order).

    ``informed_round[v]`` is -1 for nodes never informed; the source is 0.
    """

    informed_round: tuple[int, ...]

    def frontier_times(self, order: Sequence[int]) -> list[int]:
        """Informed-times along a node order (e.g. a path's spine)."""
        times = []
        for v in order:
            t = self.informed_round[v]
            if t < 0:
                break
            times.append(t)
        return times

    def hop_gaps(self, order: Sequence[int]) -> list[int]:
        """Inter-progress gaps along ``order`` (length len-1 when fully
        informed): gap j is the wait between node j and node j+1."""
        times = self.frontier_times(order)
        return [b - a for a, b in zip(times, times[1:])]

    def completion_round(self) -> int:
        """Round when the last node was informed (-1 if incomplete)."""
        if any(t < 0 for t in self.informed_round):
            return -1
        return max(self.informed_round)


def extract_progress(protocols: Sequence) -> ProgressTimeline:
    """Build a timeline from protocols exposing ``informed_round``.

    All single-message protocols in :mod:`repro.algorithms` record the
    round of their first reception; this adapter collects them.
    """
    times = []
    for protocol in protocols:
        value = getattr(protocol, "informed_round", None)
        times.append(-1 if value is None else int(value))
    return ProgressTimeline(informed_round=tuple(times))


def stall_gaps(
    timeline: ProgressTimeline,
    order: Sequence[int],
    stall_threshold: int,
) -> tuple[list[int], Summary]:
    """Split hop gaps into stalls (> threshold) and return them + summary.

    For FASTBC's wave on a path, gaps cluster at the wave speed (2 rounds)
    with a heavy second mode one full wave period later — pass the period
    as ``stall_threshold`` divided by 2 to separate the modes.
    """
    gaps = timeline.hop_gaps(order)
    if not gaps:
        raise ValueError("timeline has no progress along the given order")
    stalls = [g for g in gaps if g > stall_threshold]
    return stalls, summarize([float(g) for g in gaps])
