"""Process-local metrics: counters, gauges, histograms, Prometheus text.

One module-level :data:`METRICS` registry instruments the whole stack —
channel rounds, RLNC rank progress, store latency, coordinator lease
lifecycle, worker splits, client retries. The design constraint is the
hot path: instrumented code gates every update on ``METRICS.enabled``,
a plain attribute read, so a simulation run with telemetry off pays one
load-and-branch per round and nothing else (``bench_telemetry.py``
enforces <= 1% on the channel-kernel bench). Metric *objects* are
created once at module import; the disabled path never takes a lock,
never formats a string, never touches a dict.

Metrics live outside the determinism contract by construction: nothing
in this module is ever written into a :class:`~repro.runner.RunReport`,
so canonical report bytes are identical with telemetry on or off (the
telemetry test suite property-checks this end to end).

The registry renders two ways: :meth:`MetricsRegistry.prometheus_text`
is the ``GET /metrics`` exposition (text format 0.0.4), and
:meth:`MetricsRegistry.snapshot` the JSON twin behind ``GET
/metrics.json`` and ``repro top``.

Multiprocessing caveat: counters are per-process. A ``run_batch`` with a
process pool accumulates engine metrics in the *pool workers*, which
vanish with them; the farm worker and the service — the processes whose
observability matters — run their hot loops in-process, so their
registries see everything they do.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Iterator, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "DEFAULT_BUCKETS",
]

#: histogram bucket upper bounds (seconds): store/query latency range
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

Number = Union[int, float]


def _format_value(value: Number) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if isinstance(value, bool):  # bool is an int; never expose True/False
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing count, optionally with labels.

    The unlabeled fast path (:meth:`inc`) is what hot loops use; labeled
    children (:meth:`inc_labels`) exist for low-rate dimensions like
    HTTP method/route where cardinality is bounded by the router.
    """

    kind = "counter"

    __slots__ = ("name", "help", "labelnames", "_lock", "_value", "_children")

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._value: Number = 0
        self._children: dict[tuple[str, ...], Number] = {}

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    def inc_labels(self, labelvalues: Sequence[str], amount: Number = 1) -> None:
        key = tuple(str(value) for value in labelvalues)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, got {key}"
            )
        with self._lock:
            self._children[key] = self._children.get(key, 0) + amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0
            self._children.clear()

    def samples(self) -> Iterator[tuple[str, Number]]:
        """``(label_suffix, value)`` pairs for exposition."""
        with self._lock:
            children = sorted(self._children.items())
            value = self._value
        if not self.labelnames:
            yield "", value
        for key, child_value in children:
            yield _render_labels(self.labelnames, key), child_value

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            payload: dict[str, Any] = {"kind": self.kind, "value": self._value}
            if self._children:
                payload["labeled"] = [
                    {
                        "labels": dict(zip(self.labelnames, key)),
                        "value": value,
                    }
                    for key, value in sorted(self._children.items())
                ]
        return payload


class Gauge(Counter):
    """A value that can go both ways (queue depths, timestamps)."""

    kind = "gauge"

    __slots__ = ()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def dec(self, amount: Number = 1) -> None:
        self.inc(-amount)


class Histogram:
    """Cumulative-bucket latency histogram (unlabeled; one per seam)."""

    kind = "histogram"

    __slots__ = ("name", "help", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be sorted and non-empty: {buckets}")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    break

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self.buckets)
            self._sum = 0.0
            self._count = 0

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` per bucket, +Inf last."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), total))
        return out

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            payload = {
                "kind": self.kind,
                "count": self._count,
                "sum": round(self._sum, 9),
            }
        payload["buckets"] = {
            ("+Inf" if bound == float("inf") else _format_value(bound)): count
            for bound, count in self.cumulative()
        }
        return payload


class MetricsRegistry:
    """A named collection of metrics with one cheap ``enabled`` flag.

    Registration is idempotent — asking for an existing name returns the
    existing metric (so every module can declare its metrics at import
    without ordering concerns) — and kind-checked, so two modules cannot
    silently share a name across kinds.
    """

    def __init__(self, enabled: bool = False) -> None:
        #: the hot-path gate: instrumented code reads this attribute and
        #: branches; everything else in the module is off that path
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: dict[str, Union[Counter, Gauge, Histogram]] = {}

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric (keeps registrations; for tests and tools)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    # -- registration -------------------------------------------------------

    def _register(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, **kwargs)
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labelnames=labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return list(self._metrics)

    # -- exposition ---------------------------------------------------------

    def prometheus_text(self) -> str:
        """The ``GET /metrics`` body (Prometheus text format 0.0.4)."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, count in metric.cumulative():
                    le = "+Inf" if bound == float("inf") else _format_value(bound)
                    lines.append(f'{metric.name}_bucket{{le="{le}"}} {count}')
                lines.append(f"{metric.name}_sum {_format_value(metric.sum)}")
                lines.append(f"{metric.name}_count {metric.count}")
            else:
                for suffix, value in metric.samples():
                    lines.append(f"{metric.name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, Any]:
        """Every metric as JSON-ready dicts (the ``/metrics.json`` body)."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.to_dict() for name, metric in metrics}


#: the process-wide registry every instrumented module shares. Off by
#: default; the service enables it at startup, library users opt in via
#: METRICS.enable() or REPRO_TELEMETRY=1.
METRICS = MetricsRegistry(
    enabled=os.environ.get("REPRO_TELEMETRY", "") not in ("", "0")
)
