"""Span tracing with deterministic ids, JSONL sinks, and sampling.

Traces ride on the same identity the store does: a scenario's trace id
is the first 32 hex digits of its cache key, and a lease's trace id is
derived from the sorted cache keys it carries — so the coordinator, a
worker, and a local ``run_batch`` all mint the *same* id for the same
work without coordinating. Span ids are likewise derived (trace id +
span name + parent), which keeps a re-run byte-comparable and means a
trace can be stitched across processes from nothing but the JSONL files
they wrote.

The coordinator propagates a lease's trace id to its worker in the
``X-Repro-Trace`` response header (:data:`TRACE_HEADER`) and in the
lease body's ``trace`` field; the :class:`~repro.service.client
.ServiceClient` captures the header into ``client.last_trace``.

Writing is handled by a :class:`TraceSink`: one JSONL line per span,
sampled two ways so million-node sweeps stay bounded:

* ``rate`` — a deterministic per-trace coin (hash of the trace id, not
  ``random``), so every process samples the *same* subset of traces;
* ``allow`` — an algorithm allowlist that bypasses the rate, for "trace
  every ``rlnc_decay`` run no matter what" debugging.

Like metrics, spans never enter canonical report bytes; the global
:data:`TRACER` is disabled unless configured (``REPRO_TRACE=...`` env
or :meth:`Tracer.configure`), and the disabled check is one attribute
read.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Optional, Sequence

__all__ = [
    "TRACE_HEADER",
    "TraceSink",
    "Tracer",
    "TRACER",
    "configure_from_env",
    "trace_id_for_key",
    "trace_id_for_keys",
    "span_id_for",
    "read_trace_file",
]

#: the HTTP header a coordinator answers lease checkouts with
TRACE_HEADER = "X-Repro-Trace"

#: hex digits in a trace id / span id
_TRACE_DIGITS = 32
_SPAN_DIGITS = 16


def trace_id_for_key(cache_key: str) -> str:
    """A scenario's trace id: the cache key's leading 128 bits.

    The cache key is already a SHA-256 of the canonical scenario, so its
    prefix is uniform and collision-safe at trace-id width; deriving
    rather than re-hashing keeps the id greppable against store keys.
    """
    if not cache_key:
        return ""
    return cache_key[:_TRACE_DIGITS]


def trace_id_for_keys(cache_keys: Iterable[str]) -> str:
    """A deterministic trace id for a group of scenarios (a lease).

    Sorted before hashing so every holder of the same scenario set —
    the coordinator that granted the lease, the worker that ran it —
    derives the identical id.
    """
    keys = sorted(key for key in cache_keys if key)
    if not keys:
        return ""
    digest = hashlib.sha256(",".join(keys).encode("ascii")).hexdigest()
    return digest[:_TRACE_DIGITS]


def span_id_for(trace_id: str, name: str, parent: str = "") -> str:
    """A deterministic span id within a trace."""
    digest = hashlib.sha256(
        f"{trace_id}/{parent}/{name}".encode("utf-8")
    ).hexdigest()
    return digest[:_SPAN_DIGITS]


class TraceSink:
    """An append-only JSONL span writer with deterministic sampling.

    Parameters
    ----------
    path:
        The JSONL file (created/appended; one JSON object per line).
    rate:
        Fraction of traces written, decided per *trace id* by hashing
        it — every process with the same rate keeps the same traces.
    allow:
        Algorithm names sampled unconditionally (the per-scenario
        allowlist); empty means rate-only.
    """

    def __init__(
        self,
        path: str,
        rate: float = 1.0,
        allow: Sequence[str] = (),
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.path = str(path)
        self.rate = float(rate)
        self.allow = frozenset(allow)
        self._lock = threading.Lock()
        self._file: Optional[Any] = None
        self.written = 0
        self.sampled_out = 0

    def should_sample(
        self, trace_id: str, algorithm: Optional[str] = None
    ) -> bool:
        """The sampling decision for one trace (pure, deterministic)."""
        if not trace_id:
            return False
        if algorithm is not None and algorithm in self.allow:
            return True
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        # the id is already a hash prefix: its leading 32 bits are a
        # uniform coin shared by every process tracing this id
        coin = int(trace_id[:8], 16) / float(1 << 32)
        return coin < self.rate

    def write(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._file is None:
                self._file = open(self.path, "a", encoding="utf-8")
            self._file.write(line + "\n")
            self._file.flush()
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class Tracer:
    """The process-wide span recorder (one, module-level, off unless
    configured — mirroring :data:`~repro.telemetry.metrics.METRICS`)."""

    def __init__(self) -> None:
        self.enabled = False
        self.sink: Optional[TraceSink] = None

    def configure(self, sink: Optional[TraceSink]) -> None:
        """Install (or remove, with None) the sink; flips ``enabled``."""
        previous = self.sink
        self.sink = sink
        self.enabled = sink is not None
        if previous is not None and previous is not sink:
            previous.close()

    def record_span(
        self,
        name: str,
        trace_id: str,
        duration_s: float,
        parent: str = "",
        algorithm: Optional[str] = None,
        **attrs: Any,
    ) -> bool:
        """Write one already-timed span; returns True iff it was kept.

        The non-context-manager form: hot callers (the runner) time
        work they were timing anyway and record after the fact, so the
        disabled path stays a single ``TRACER.enabled`` read.
        """
        sink = self.sink
        if sink is None or not sink.should_sample(trace_id, algorithm):
            if sink is not None:
                sink.sampled_out += 1
            return False
        record = {
            "trace": trace_id,
            "span": span_id_for(trace_id, name, parent),
            "parent": parent,
            "name": name,
            "t": round(time.time(), 6),
            "duration_s": round(duration_s, 9),
        }
        if algorithm is not None:
            attrs = {"algorithm": algorithm, **attrs}
        if attrs:
            record["attrs"] = attrs
        sink.write(record)
        return True

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: str,
        parent: str = "",
        algorithm: Optional[str] = None,
        **attrs: Any,
    ) -> Iterator[Optional[dict[str, Any]]]:
        """Time a block as one span.

        Yields the span's mutable attrs dict when the trace is sampled
        (append outcome fields to it) and None when it is not — so
        callers can skip building expensive attributes for dropped
        spans. The span is written even if the block raises (with
        ``error`` set), then the exception propagates.
        """
        sink = self.sink
        if sink is None or not sink.should_sample(trace_id, algorithm):
            if sink is not None:
                sink.sampled_out += 1
            yield None
            return
        span_attrs: dict[str, Any] = dict(attrs)
        start = time.perf_counter()
        try:
            yield span_attrs
        except BaseException as error:
            span_attrs["error"] = f"{type(error).__name__}: {error}"
            raise
        finally:
            self.record_span(
                name,
                trace_id,
                time.perf_counter() - start,
                parent=parent,
                algorithm=algorithm,
                **span_attrs,
            )


def read_trace_file(path: str) -> list[dict[str, Any]]:
    """Parse a TraceSink JSONL file (skipping blank lines)."""
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


#: the process-wide tracer; see :func:`configure_from_env`
TRACER = Tracer()


def configure_from_env(environ: Optional[dict[str, str]] = None) -> bool:
    """Configure :data:`TRACER` from the environment; True if enabled.

    ``REPRO_TRACE=path.jsonl`` turns tracing on; ``REPRO_TRACE_RATE``
    (default 1.0) and ``REPRO_TRACE_ALLOW`` (comma-separated algorithm
    names) tune the sink's sampling. Called once at import so every
    entry point — CLI, worker, service, tests — honors the variables
    without plumbing.
    """
    env = os.environ if environ is None else environ
    path = env.get("REPRO_TRACE", "")
    if not path:
        return False
    rate = float(env.get("REPRO_TRACE_RATE", "1.0"))
    allow = [
        name.strip()
        for name in env.get("REPRO_TRACE_ALLOW", "").split(",")
        if name.strip()
    ]
    TRACER.configure(TraceSink(path, rate=rate, allow=allow))
    return True


configure_from_env()
