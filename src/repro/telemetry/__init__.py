"""Zero-overhead observability: metrics, span tracing, exposition.

Two module-level singletons the whole stack shares:

* :data:`METRICS` — a :class:`~repro.telemetry.metrics.MetricsRegistry`
  of counters/gauges/histograms. Instrumented hot paths gate on the
  ``METRICS.enabled`` attribute, so telemetry off costs one attribute
  read per seam (enforced by ``benchmarks/bench_telemetry.py``).
* :data:`TRACER` — a :class:`~repro.telemetry.tracing.Tracer` writing
  JSONL spans through a sampling :class:`~repro.telemetry.tracing
  .TraceSink`, with trace/span ids derived deterministically from
  scenario cache keys.

Surfacing: the service serves ``GET /metrics`` (Prometheus text) and
``GET /metrics.json``; ``repro top --connect URL`` renders a live view;
``repro trace show|summarize`` reads the JSONL sinks.

Neither subsystem ever touches canonical report bytes — reports are
byte-identical with telemetry on or off, and the test suite checks it.
"""

from repro.telemetry.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracing import (
    TRACE_HEADER,
    TRACER,
    TraceSink,
    Tracer,
    configure_from_env,
    read_trace_file,
    span_id_for,
    trace_id_for_key,
    trace_id_for_keys,
)

__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TRACE_HEADER",
    "TRACER",
    "TraceSink",
    "Tracer",
    "configure_from_env",
    "read_trace_file",
    "span_id_for",
    "trace_id_for_key",
    "trace_id_for_keys",
]
