"""Coding substrate: GF(2^8) arithmetic, matrices, Reed-Solomon, and RLNC.

The paper uses two coding black boxes:

* **Reed-Solomon erasure codes** (Lemma 16, Lemma 26, Lemma 30): from ``k``
  message packets, generate ``m >= k`` coded packets such that *any* ``k`` of
  them reconstruct the originals (the MDS property).
* **Random linear network coding** (Lemmas 12-13, following Haeupler [24]):
  nodes broadcast random GF-linear combinations of the coded packets they
  hold; a node decodes once it has collected ``k`` linearly independent
  combinations.

Both are implemented here from scratch over GF(2^8).
"""

from repro.coding.gf256 import GF256
from repro.coding.matrix import GFMatrix
from repro.coding.reed_solomon import ReedSolomonCode
from repro.coding.rlnc import CodedPacket, RLNCDecoder, RLNCEncoder, random_coefficients

__all__ = [
    "GF256",
    "GFMatrix",
    "ReedSolomonCode",
    "CodedPacket",
    "RLNCDecoder",
    "RLNCEncoder",
    "random_coefficients",
]
