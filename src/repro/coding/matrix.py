"""Dense matrices over GF(2^8): rank, RREF, solving, inversion.

This is the linear-algebra engine behind both Reed-Solomon decoding
(Vandermonde system solves) and RLNC decoding (incremental Gaussian
elimination over received coefficient vectors).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.coding.gf256 import GF256

__all__ = ["GFMatrix"]


class GFMatrix:
    """A dense matrix over GF(2^8) backed by a uint8 numpy array.

    Instances are immutable from the caller's perspective: operations return
    new matrices and never mutate their operands.
    """

    __slots__ = ("data",)

    def __init__(self, data: "np.ndarray | Sequence[Sequence[int]]") -> None:
        arr = np.array(data, dtype=np.uint8, copy=True)
        if arr.ndim != 2:
            raise ValueError(f"matrix data must be 2-D, got shape {arr.shape}")
        self.data = arr

    # -- constructors -------------------------------------------------------

    @classmethod
    def zeros(cls, rows: int, cols: int) -> "GFMatrix":
        """All-zero rows x cols matrix."""
        if rows < 0 or cols < 0:
            raise ValueError("dimensions must be non-negative")
        return cls(np.zeros((rows, cols), dtype=np.uint8))

    @classmethod
    def identity(cls, n: int) -> "GFMatrix":
        """n x n identity (multiplicative identity is the byte 1)."""
        return cls(np.eye(n, dtype=np.uint8))

    @classmethod
    def vandermonde(cls, points: Sequence[int], cols: int) -> "GFMatrix":
        """Vandermonde matrix: row i is (1, x_i, x_i^2, ..., x_i^{cols-1}).

        Any ``cols`` rows with distinct ``x_i`` are linearly independent,
        which is exactly the MDS property Reed-Solomon relies on.
        """
        if cols <= 0:
            raise ValueError("cols must be positive")
        rows = np.zeros((len(points), cols), dtype=np.uint8)
        for i, x in enumerate(points):
            if not 0 <= x <= 255:
                raise ValueError(f"evaluation point {x} outside GF(2^8)")
            acc = 1
            for j in range(cols):
                rows[i, j] = acc
                acc = GF256.mul(acc, x)
        return cls(rows)

    # -- basic properties ----------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def rows(self) -> int:
        return self.data.shape[0]

    @property
    def cols(self) -> int:
        return self.data.shape[1]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GFMatrix):
            return NotImplemented
        return self.shape == other.shape and bool(np.all(self.data == other.data))

    def __hash__(self) -> int:
        return hash((self.shape, self.data.tobytes()))

    def __repr__(self) -> str:
        return f"GFMatrix({self.data.tolist()!r})"

    def copy(self) -> "GFMatrix":
        return GFMatrix(self.data)

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: "GFMatrix") -> "GFMatrix":
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        return GFMatrix(np.bitwise_xor(self.data, other.data))

    # Subtraction equals addition in characteristic 2.
    __sub__ = __add__

    def __matmul__(self, other: "GFMatrix") -> "GFMatrix":
        return GFMatrix(GF256.matmul(self.data, other.data))

    def scale(self, scalar: int) -> "GFMatrix":
        """Multiply every entry by a field scalar."""
        return GFMatrix(GF256.scale_vec(scalar, self.data))

    def transpose(self) -> "GFMatrix":
        return GFMatrix(self.data.T)

    # -- elimination ------------------------------------------------------------

    def rref(self) -> tuple["GFMatrix", list[int]]:
        """Reduced row-echelon form and the list of pivot column indices."""
        m = self.data.copy()
        rows, cols = m.shape
        pivots: list[int] = []
        pivot_row = 0
        for col in range(cols):
            if pivot_row >= rows:
                break
            # find a row at or below pivot_row with a nonzero entry in col
            nonzero = np.nonzero(m[pivot_row:, col])[0]
            if nonzero.size == 0:
                continue
            chosen = pivot_row + int(nonzero[0])
            if chosen != pivot_row:
                m[[pivot_row, chosen]] = m[[chosen, pivot_row]]
            # normalize the pivot row
            inv = GF256.inv(int(m[pivot_row, col]))
            m[pivot_row] = GF256.scale_vec(inv, m[pivot_row])
            # eliminate the column from every other row
            col_vals = m[:, col].copy()
            col_vals[pivot_row] = 0
            eliminate = np.nonzero(col_vals)[0]
            for r in eliminate:
                m[r] ^= GF256.scale_vec(int(col_vals[r]), m[pivot_row])
            pivots.append(col)
            pivot_row += 1
        return GFMatrix(m), pivots

    def rank(self) -> int:
        """Rank of the matrix."""
        _, pivots = self.rref()
        return len(pivots)

    def is_invertible(self) -> bool:
        """True iff the matrix is square and full-rank."""
        return self.rows == self.cols and self.rank() == self.rows

    def inverse(self) -> "GFMatrix":
        """Matrix inverse; raises ValueError if singular or non-square."""
        if self.rows != self.cols:
            raise ValueError(f"cannot invert non-square matrix {self.shape}")
        n = self.rows
        augmented = np.concatenate(
            [self.data, np.eye(n, dtype=np.uint8)], axis=1
        )
        reduced, pivots = GFMatrix(augmented).rref()
        if pivots != list(range(n)):
            raise ValueError("matrix is singular")
        return GFMatrix(reduced.data[:, n:])

    def solve(self, rhs: "GFMatrix") -> "GFMatrix":
        """Solve A @ X = rhs for X; A must be square and invertible.

        ``rhs`` may have any number of columns (each is solved
        simultaneously).
        """
        if self.rows != self.cols:
            raise ValueError(f"solve requires a square matrix, got {self.shape}")
        if rhs.rows != self.rows:
            raise ValueError(
                f"rhs has {rhs.rows} rows but matrix has {self.rows}"
            )
        augmented = np.concatenate([self.data, rhs.data], axis=1)
        reduced, pivots = GFMatrix(augmented).rref()
        if pivots[: self.rows] != list(range(self.rows)):
            raise ValueError("matrix is singular")
        return GFMatrix(reduced.data[:, self.cols :])

    def row(self, index: int) -> np.ndarray:
        """Copy of one row as a uint8 vector."""
        return self.data[index].copy()
