"""Systematic Reed-Solomon erasure codes over GF(2^8).

The paper (Lemmas 16, 26, 30) uses Reed-Solomon as a black box with one
property: from ``k`` message packets one can produce ``m >= k`` coded packets
such that **any** ``k`` of the coded packets suffice to reconstruct the
originals. This module implements exactly that as a systematic code:

* the message is a ``k x symbol_count`` byte matrix (k packets, each a byte
  string);
* coded packet ``i`` is the evaluation of the message polynomial columns at
  field point ``alpha_i`` (points 0..k-1 reproduce the message verbatim —
  the systematic part — and points k..m-1 are parity);
* decoding solves a k x k Vandermonde system over the surviving points.

Because GF(2^8) has 256 elements, a single code supports ``m <= 256`` coded
packets. The paper needs ``m = Theta(k + log n)`` with small constants in
its schedules; for larger ``m`` the multi-message layer chunks messages into
batches of at most 256 (see :mod:`repro.algorithms.multi`), which preserves
every claimed bound since bounds are linear in k.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.coding.matrix import GFMatrix

__all__ = ["ReedSolomonCode"]


class ReedSolomonCode:
    """A systematic (m, k) Reed-Solomon erasure code over GF(2^8).

    Parameters
    ----------
    k:
        Number of message packets (1 <= k <= 256).
    m:
        Total number of coded packets produced (k <= m <= 256).
    """

    def __init__(self, k: int, m: int) -> None:
        if not 1 <= k <= 256:
            raise ValueError(f"k must be in [1, 256], got {k}")
        if not k <= m <= 256:
            raise ValueError(f"m must be in [k, 256] = [{k}, 256], got {m}")
        self.k = k
        self.m = m
        # Evaluation points: the first k points are the "systematic" ones.
        self._points = list(range(m))
        self._encode_matrix = GFMatrix.vandermonde(self._points, k)

    def __repr__(self) -> str:
        return f"ReedSolomonCode(k={self.k}, m={self.m})"

    # -- encoding ---------------------------------------------------------

    def encode(self, packets: Sequence[bytes]) -> list[bytes]:
        """Encode ``k`` equal-length byte packets into ``m`` coded packets.

        Coded packet ``i`` equals the GF(2^8) combination
        ``sum_j V[i, j] * packet_j`` where V is the Vandermonde encode
        matrix. Note that with Vandermonde row 0 = (1, 0, ..., 0), coded
        packet 0 is message packet 0; the code is *partially* systematic
        (row i of a Vandermonde matrix is the evaluation at point i, so only
        point 0 reproduces a message verbatim). Decoding never relies on
        systematicity.
        """
        message = self._as_matrix(packets)
        coded = self._encode_matrix @ message
        return [bytes(coded.data[i].tobytes()) for i in range(self.m)]

    def encode_array(self, message: np.ndarray) -> np.ndarray:
        """Encode a ``(k, length)`` uint8 array into ``(m, length)``."""
        if message.shape[0] != self.k:
            raise ValueError(
                f"message has {message.shape[0]} rows, code expects {self.k}"
            )
        coded = self._encode_matrix @ GFMatrix(message)
        return coded.data

    # -- decoding ---------------------------------------------------------

    def decode(
        self, received: Sequence[tuple[int, bytes]]
    ) -> list[bytes]:
        """Reconstruct the k message packets from any k received packets.

        Parameters
        ----------
        received:
            Pairs ``(index, payload)`` where ``index`` is the coded-packet
            index in [0, m) and ``payload`` the received bytes. At least
            ``k`` pairs with distinct indices are required.
        """
        by_index: dict[int, bytes] = {}
        for index, payload in received:
            if not 0 <= index < self.m:
                raise ValueError(f"coded-packet index {index} out of range")
            by_index.setdefault(index, payload)
        if len(by_index) < self.k:
            raise ValueError(
                f"need at least k={self.k} distinct packets to decode, "
                f"got {len(by_index)}"
            )
        chosen = sorted(by_index)[: self.k]
        lengths = {len(by_index[i]) for i in chosen}
        if len(lengths) != 1:
            raise ValueError(f"received packets have mixed lengths {lengths}")
        (length,) = lengths

        system = GFMatrix.vandermonde(chosen, self.k)
        rhs = np.zeros((self.k, length), dtype=np.uint8)
        for row, i in enumerate(chosen):
            rhs[row] = np.frombuffer(by_index[i], dtype=np.uint8)
        # In this encoding the message packets are the polynomial
        # coefficients themselves (coded packet i = evaluation at point i),
        # so the Vandermonde solve recovers the message directly.
        solution = system.solve(GFMatrix(rhs))
        return [bytes(solution.data[j].tobytes()) for j in range(self.k)]

    def decode_array(
        self, indices: Sequence[int], payloads: np.ndarray
    ) -> np.ndarray:
        """Array variant of :meth:`decode` returning a ``(k, length)`` array."""
        pairs = [
            (int(i), payloads[row].tobytes())
            for row, i in enumerate(indices)
        ]
        decoded = self.decode(pairs)
        return np.stack(
            [np.frombuffer(p, dtype=np.uint8) for p in decoded], axis=0
        )

    # -- internals ----------------------------------------------------------

    def _as_matrix(self, packets: Sequence[bytes]) -> GFMatrix:
        if len(packets) != self.k:
            raise ValueError(
                f"expected {self.k} message packets, got {len(packets)}"
            )
        lengths = {len(p) for p in packets}
        if len(lengths) != 1:
            raise ValueError(f"message packets have mixed lengths {lengths}")
        (length,) = lengths
        if length == 0:
            raise ValueError("message packets must be non-empty")
        data = np.zeros((self.k, length), dtype=np.uint8)
        for i, packet in enumerate(packets):
            data[i] = np.frombuffer(packet, dtype=np.uint8)
        return GFMatrix(data)
