"""Random linear network coding over GF(2^8), following Haeupler [24].

In RLNC multi-message broadcast, every packet on the air is a pair
``(coefficient vector, payload)`` where the payload is the corresponding
GF-linear combination of the k original messages. A node's knowledge is the
subspace spanned by the coefficient vectors it has received; it decodes once
that subspace has full dimension k.

Two objects implement this:

* :class:`RLNCEncoder` — held by each node; accumulates received coded
  packets and emits fresh *random* combinations of everything it knows.
* :class:`RLNCDecoder` — incremental Gaussian elimination that tracks the
  dimension of the known subspace and recovers the original messages at full
  rank. (Encoder embeds a decoder; the split exists so lower-bound
  experiments can count rank evolution without paying for re-encoding.)

The innovation probability argument of the paper's Lemmas 12-13 needs a
field large enough that a random combination from a strictly-more-knowing
neighbor is non-innovative with at most constant probability; over GF(2^8)
that probability is 1/256 per reception.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.coding.gf256 import GF256
from repro.telemetry.metrics import METRICS as _METRICS
from repro.util.rng import RandomSource

__all__ = ["CodedPacket", "RLNCDecoder", "RLNCEncoder", "random_coefficients"]

_M_RECEIVES = _METRICS.counter(
    "repro_rlnc_receives_total", "coded packets absorbed by decoders"
)
_M_INNOVATIVE = _METRICS.counter(
    "repro_rlnc_innovative_total", "receptions that advanced decoder rank"
)
_M_DECODES = _METRICS.counter(
    "repro_rlnc_decodes_total", "full-rank message-matrix recoveries"
)


@dataclass(frozen=True)
class CodedPacket:
    """A coded packet: coefficients over the k messages, plus the payload.

    ``coefficients`` has length k; ``payload`` is the same GF-linear
    combination applied to the message byte matrix (may be empty when an
    experiment tracks rank only).
    """

    coefficients: bytes
    payload: bytes

    @property
    def k(self) -> int:
        return len(self.coefficients)

    def coefficient_array(self) -> np.ndarray:
        return np.frombuffer(self.coefficients, dtype=np.uint8)

    def payload_array(self) -> np.ndarray:
        return np.frombuffer(self.payload, dtype=np.uint8)

    def is_zero(self) -> bool:
        # bytes iteration in C: no generator frame per coefficient
        return not any(self.coefficients)


def random_coefficients(k: int, rng: RandomSource) -> np.ndarray:
    """A uniformly random non-zero coefficient vector of length k."""
    while True:
        coeffs = rng.bytes_array(k)
        if np.any(coeffs):
            return coeffs


class RLNCDecoder:
    """Incremental Gaussian elimination over received coded packets.

    Maintains a row-reduced basis of the received coefficient vectors with
    payloads carried along, so that rank and decoding are both O(k) per
    packet amortized.

    The default elimination kernel keeps the basis in *reduced* row
    echelon form so an incoming row eliminates against every existing
    pivot in a single batched table-lookup pass.  Constructing with
    ``reference=True`` selects the original per-column scalar loop
    (echelon-only basis) — the executable specification the vectorized
    kernel is cross-checked against and the `repro bench` baseline.
    """

    def __init__(
        self, k: int, payload_length: int = 0, reference: bool = False
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if payload_length < 0:
            raise ValueError("payload_length must be non-negative")
        self.k = k
        self.payload_length = payload_length
        # basis rows: coefficient part (k) | payload part (payload_length)
        self._basis = np.zeros((k, k + payload_length), dtype=np.uint8)
        # pivot_of[c] = basis row index whose pivot is column c, or -1
        self._pivot_of = np.full(k, -1, dtype=np.int32)
        # pivot_col[r] = pivot column of basis row r (insertion order)
        self._pivot_col = np.zeros(k, dtype=np.int32)
        # scratch row reused across receptions to avoid per-packet allocs
        self._row_scratch = np.empty(k + payload_length, dtype=np.uint8)
        self._rank = 0
        self.received_count = 0
        self.innovative_count = 0
        self._reference = reference
        self._eliminate = (
            self._reduce_and_insert_reference
            if reference
            else self._reduce_and_insert
        )

    @property
    def rank(self) -> int:
        """Dimension of the subspace of coefficient space known so far."""
        return self._rank

    def is_complete(self) -> bool:
        """True once k independent combinations have been received."""
        return self._rank == self.k

    def receive(self, packet: CodedPacket) -> bool:
        """Absorb a coded packet; return True iff it was innovative."""
        if packet.k != self.k:
            raise ValueError(
                f"packet is over {packet.k} messages, decoder expects {self.k}"
            )
        payload = packet.payload_array()
        if payload.size != self.payload_length:
            raise ValueError(
                f"payload length {payload.size} != {self.payload_length}"
            )
        self.received_count += 1
        if self._rank == self.k and not self._reference:
            if _METRICS.enabled:
                _M_RECEIVES.inc()
            return False  # full rank: nothing can be innovative
        row = self._row_scratch
        row[: self.k] = packet.coefficient_array()
        row[self.k :] = payload
        innovative = self._eliminate(row)
        if innovative:
            self.innovative_count += 1
        if _METRICS.enabled:
            _M_RECEIVES.inc()
            if innovative:
                _M_INNOVATIVE.inc()
        return innovative

    def receive_raw(self, coefficients: np.ndarray, payload: np.ndarray) -> bool:
        """Copy-free variant of :meth:`receive` for simulator hot paths.

        Fills a preallocated scratch row instead of concatenating (the old
        path allocated twice: once for the concatenation, once for the
        uint8 cast). A full-rank decoder short-circuits: no reception can
        be innovative, so the elimination is skipped entirely — the regime
        that dominates long RLNC gossip runs.
        """
        self.received_count += 1
        if self._rank == self.k and not self._reference:
            if _METRICS.enabled:
                _M_RECEIVES.inc()
            return False
        row = self._row_scratch
        row[: self.k] = coefficients
        row[self.k :] = payload
        innovative = self._eliminate(row)
        if innovative:
            self.innovative_count += 1
        if _METRICS.enabled:
            _M_RECEIVES.inc()
            if innovative:
                _M_INNOVATIVE.inc()
        return innovative

    def _reduce_and_insert(self, row: np.ndarray) -> bool:
        """Batched elimination against a reduced-row-echelon basis.

        Because every stored row has 1 at its own pivot column and 0 at
        all other pivot columns, subtracting ``row[pivot_cols] @ basis``
        zeroes *all* pivot columns of ``row`` in one pass. If a nonzero
        coefficient survives, the row is normalized, back-substituted into
        the stored rows (keeping them reduced), and inserted. ``row`` may
        alias the scratch buffer; it is consumed.
        """
        rank = self._rank
        if rank:
            row ^= GF256.combine(row[self._pivot_col[:rank]], self._basis[:rank])
        head = row[: self.k]
        if not head.any():
            return False
        col = int(np.nonzero(head)[0][0])
        row = GF256.scale_vec(GF256.inv(int(row[col])), row)
        if rank:
            above = self._basis[:rank, col]
            if above.any():
                self._basis[:rank] ^= GF256.scale_rows(above, row[None, :])
        self._basis[rank] = row
        self._pivot_col[rank] = col
        self._pivot_of[col] = rank
        self._rank += 1
        return True

    def _reduce_and_insert_reference(self, row: np.ndarray) -> bool:
        """Original per-column elimination loop (echelon-only basis)."""
        for col in range(self.k):
            coeff = int(row[col])
            if coeff == 0:
                continue
            owner = int(self._pivot_of[col])
            if owner < 0:
                # new pivot: normalize and store
                inv = GF256.inv(coeff)
                row = GF256.scale_vec(inv, row)
                self._basis[self._rank] = row
                self._pivot_col[self._rank] = col
                self._pivot_of[col] = self._rank
                self._rank += 1
                # Back-substitute into earlier rows lazily at decode time;
                # keeping the basis merely in echelon form is enough for
                # rank queries, which dominate simulation time.
                return True
            row = row ^ GF256.scale_vec(coeff, self._basis[owner])
        return False

    def basis_coefficients(self) -> np.ndarray:
        """Copy of the current basis coefficient rows (rank x k)."""
        rows = [
            self._basis[int(self._pivot_of[c])][: self.k]
            for c in range(self.k)
            if self._pivot_of[c] >= 0
        ]
        if not rows:
            return np.zeros((0, self.k), dtype=np.uint8)
        return np.stack(rows, axis=0)

    def decode(self) -> np.ndarray:
        """Recover the (k, payload_length) message matrix at full rank."""
        if not self.is_complete():
            raise ValueError(
                f"cannot decode at rank {self._rank} < k = {self.k}"
            )
        # Full back-substitution: eliminate above-pivot entries.
        order = [int(self._pivot_of[c]) for c in range(self.k)]
        m = self._basis[order].copy()  # rows now sorted by pivot column
        for col in range(self.k - 1, -1, -1):
            pivot_row = col
            above = np.nonzero(m[:pivot_row, col])[0]
            for r in above:
                m[r] ^= GF256.scale_vec(int(m[r, col]), m[pivot_row])
        if _METRICS.enabled:
            _M_DECODES.inc()
        return m[:, self.k :]

    def decode_messages(self) -> list[bytes]:
        """Recover the original messages as byte strings."""
        matrix = self.decode()
        return [bytes(matrix[i].tobytes()) for i in range(self.k)]


class RLNCEncoder:
    """Per-node RLNC state: receive coded packets, emit fresh combinations.

    The source node is constructed with ``messages``; other nodes start
    empty and learn via :meth:`receive`.
    """

    def __init__(
        self,
        k: int,
        payload_length: int = 0,
        messages: Optional[Sequence[bytes]] = None,
        reference: bool = False,
    ) -> None:
        self.k = k
        self.payload_length = payload_length
        self.decoder = RLNCDecoder(k, payload_length, reference=reference)
        if messages is not None:
            if len(messages) != k:
                raise ValueError(f"expected {k} messages, got {len(messages)}")
            for index, message in enumerate(messages):
                if len(message) != payload_length:
                    raise ValueError(
                        f"message {index} has length {len(message)}, "
                        f"expected {payload_length}"
                    )
                unit = np.zeros(k, dtype=np.uint8)
                unit[index] = 1
                self.decoder.receive_raw(
                    unit, np.frombuffer(message, dtype=np.uint8)
                )

    @property
    def rank(self) -> int:
        return self.decoder.rank

    def is_complete(self) -> bool:
        return self.decoder.is_complete()

    def can_transmit(self) -> bool:
        """A node with no knowledge has nothing (non-zero) to send."""
        return self.decoder.rank > 0

    def receive(self, packet: CodedPacket) -> bool:
        """Absorb a packet from the channel; True iff innovative."""
        return self.decoder.receive(packet)

    def emit(self, rng: RandomSource) -> CodedPacket:
        """Emit a uniformly random combination of everything known.

        The combination is over the node's basis rows; a node that knows an
        r-dimensional subspace emits a uniform random vector of that
        subspace (excluding, with retry, the zero vector).
        """
        if not self.can_transmit():
            raise ValueError("node has no coded information to transmit")
        basis = self.decoder._basis[: self.decoder.rank]
        while True:
            weights = rng.bytes_array(self.decoder.rank)
            if not weights.any():
                continue
            # one broadcasted table lookup + XOR reduction over the basis
            row = GF256.combine(weights, basis)
            if row[: self.k].any():
                return CodedPacket(
                    coefficients=row[: self.k].tobytes(),
                    payload=row[self.k :].tobytes(),
                )

    def emit_reference(self, rng: RandomSource) -> CodedPacket:
        """Original per-row combination loop; `repro bench` baseline."""
        if not self.can_transmit():
            raise ValueError("node has no coded information to transmit")
        basis = self.decoder._basis[: self.decoder.rank]
        while True:
            weights = rng.bytes_array(self.decoder.rank)
            if not np.any(weights):
                continue
            row = np.zeros(basis.shape[1], dtype=np.uint8)
            for i, w in enumerate(weights):
                if w:
                    row ^= GF256.scale_vec(int(w), basis[i])
            if np.any(row[: self.k]):
                return CodedPacket(
                    coefficients=row[: self.k].tobytes(),
                    payload=row[self.k :].tobytes(),
                )

    def decode_messages(self) -> list[bytes]:
        """Recover the original k messages (requires full rank)."""
        return self.decoder.decode_messages()
