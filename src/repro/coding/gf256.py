"""Arithmetic in GF(2^8), the field with 256 elements.

Elements are integers in [0, 255] interpreted as polynomials over GF(2)
modulo the AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11B). Multiplication
and inversion go through log/antilog tables built once at import, using the
primitive element 3 (a generator for this modulus).

The class is a namespace of static methods plus vectorized numpy variants;
field *elements* stay plain ints / uint8 arrays so the hot RLNC paths avoid
object overhead.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GF256"]

_MODULUS = 0x11B
_GENERATOR = 0x03
_ORDER = 255  # multiplicative group order


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build exp/log tables for the multiplicative group of GF(2^8)."""
    exp = np.zeros(2 * _ORDER, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int16)
    value = 1
    for power in range(_ORDER):
        exp[power] = value
        log[value] = power
        # multiply value by the generator (x + 1) in GF(2^8)
        value = value ^ (value << 1)
        if value & 0x100:
            value ^= _MODULUS
    # duplicate so exp[a + b] never needs an explicit mod in scalar paths
    exp[_ORDER:] = exp[:_ORDER]
    return exp, log


_EXP, _LOG = _build_tables()

# 256x256 multiplication table: one-time 64 KiB cost buys branch-free
# vectorized multiplication for matrices and RLNC combination.
_MUL_TABLE = np.zeros((256, 256), dtype=np.uint8)
for _a in range(1, 256):
    for _b in range(1, 256):
        _MUL_TABLE[_a, _b] = _EXP[int(_LOG[_a]) + int(_LOG[_b])]

_INV_TABLE = np.zeros(256, dtype=np.uint8)
for _a in range(1, 256):
    _INV_TABLE[_a] = _EXP[_ORDER - int(_LOG[_a])]

# flat view of the multiplication table: np.take on a 1-D array with a
# precomputed (scalar << 8) + element index is 2-3x faster than 2-D
# advanced indexing on the hot batched paths
_MUL_FLAT = np.ascontiguousarray(_MUL_TABLE).reshape(65536)


class GF256:
    """Static arithmetic over GF(2^8).

    All scalar operations take and return plain ints in [0, 255]; vector
    operations take and return ``uint8`` numpy arrays.
    """

    order = 256
    modulus = _MODULUS
    generator = _GENERATOR

    # -- scalar operations -------------------------------------------------

    @staticmethod
    def add(a: int, b: int) -> int:
        """Field addition (= subtraction): XOR of representations."""
        return a ^ b

    @staticmethod
    def sub(a: int, b: int) -> int:
        """Field subtraction; identical to addition in characteristic 2."""
        return a ^ b

    @staticmethod
    def mul(a: int, b: int) -> int:
        """Field multiplication via log/antilog tables."""
        if a == 0 or b == 0:
            return 0
        return int(_EXP[int(_LOG[a]) + int(_LOG[b])])

    @staticmethod
    def inv(a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError for 0."""
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^8)")
        return int(_INV_TABLE[a])

    @staticmethod
    def div(a: int, b: int) -> int:
        """Field division a / b."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^8)")
        if a == 0:
            return 0
        return int(_EXP[(int(_LOG[a]) - int(_LOG[b])) % _ORDER])

    @staticmethod
    def pow(a: int, exponent: int) -> int:
        """Field exponentiation a ** exponent (exponent may be negative)."""
        if a == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise ZeroDivisionError("0 has no negative powers in GF(2^8)")
            return 0
        reduced = (int(_LOG[a]) * exponent) % _ORDER
        return int(_EXP[reduced])

    # -- vector operations ---------------------------------------------------

    @staticmethod
    def mul_vec(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise product of two uint8 arrays."""
        return _MUL_TABLE[a, b]

    @staticmethod
    def scale_vec(scalar: int, vec: np.ndarray) -> np.ndarray:
        """scalar * vec for a uint8 array."""
        return _MUL_TABLE[scalar, vec]

    @staticmethod
    def add_vec(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise sum (XOR) of two uint8 arrays."""
        return np.bitwise_xor(a, b)

    @staticmethod
    def dot_vec(a: np.ndarray, b: np.ndarray) -> int:
        """Inner product of two uint8 vectors."""
        if a.shape != b.shape:
            raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
        products = _MUL_TABLE[a, b]
        return int(np.bitwise_xor.reduce(products)) if products.size else 0

    #: above this many elements the 3-D broadcast in :meth:`matmul` would
    #: materialize a >16 MiB index tensor; fall back to the per-term loop
    MATMUL_BROADCAST_LIMIT = 1 << 24

    @staticmethod
    def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product of uint8 matrices over GF(2^8).

        Small products go through a single broadcast table lookup over the
        full (rows, inner, cols) tensor with one XOR reduction; products
        whose intermediate would exceed :attr:`MATMUL_BROADCAST_LIMIT`
        elements fall back to the per-inner-term loop of
        :meth:`matmul_reference`, which peaks at one (rows, cols) slab.
        """
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("matmul requires 2-D arrays")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} x {b.shape}")
        rows, inner = a.shape
        cols = b.shape[1]
        if inner == 0:
            # bitwise_xor.reduce over an empty axis has no identity for the
            # broadcast path; the empty sum is the zero matrix
            return np.zeros((rows, cols), dtype=np.uint8)
        if rows * inner * cols > GF256.MATMUL_BROADCAST_LIMIT:
            return GF256.matmul_reference(a, b)
        shifted = a.astype(np.int32) << 8
        index = b[np.newaxis, :, :] + shifted[:, :, np.newaxis]
        return np.bitwise_xor.reduce(_MUL_FLAT.take(index), axis=1)

    @staticmethod
    def matmul_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Loop-over-inner-dimension matrix product; memory stays O(rows*cols).

        The property suite checks :meth:`matmul` against this term-by-term
        form; ``matmul`` also dispatches here when the broadcast tensor
        would be too large.
        """
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("matmul requires 2-D arrays")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} x {b.shape}")
        rows, inner = a.shape
        cols = b.shape[1]
        out = np.zeros((rows, cols), dtype=np.uint8)
        # Iterate over the inner dimension: each term is an outer-product-free
        # table lookup, XOR-accumulated. O(inner) numpy ops instead of
        # O(rows*cols*inner) Python ops.
        shifted = a.astype(np.int32) << 8
        for t in range(inner):
            out ^= _MUL_FLAT.take(b[t, :] + shifted[:, t][:, None])
        return out

    @staticmethod
    def inv_vec(a: np.ndarray) -> np.ndarray:
        """Elementwise inverse; raises on any zero entry."""
        if np.any(a == 0):
            raise ZeroDivisionError("0 has no inverse in GF(2^8)")
        return _INV_TABLE[a]

    @staticmethod
    def scale_rows(scalars: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """``scalars[i] * rows[i]`` for every row, as one table lookup."""
        index = rows + (scalars.astype(np.int32) << 8)[:, None]
        return _MUL_FLAT.take(index)

    @staticmethod
    def combine(weights: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Weighted sum ``sum_i weights[i] * rows[i]`` over GF(2^8).

        The RLNC hot-path primitive: one broadcasted table lookup over the
        whole (rank, width) basis followed by an XOR reduction, instead of
        a per-row Python loop.
        """
        if rows.shape[0] == 0:
            return np.zeros(rows.shape[1:], dtype=np.uint8)
        index = rows + (weights.astype(np.int32) << 8)[:, None]
        return np.bitwise_xor.reduce(_MUL_FLAT.take(index), axis=0)

    # -- table access (read-only views, for tests) ---------------------------

    @staticmethod
    def exp_table() -> np.ndarray:
        view = _EXP.view()
        view.flags.writeable = False
        return view

    @staticmethod
    def log_table() -> np.ndarray:
        view = _LOG.view()
        view.flags.writeable = False
        return view
