"""End-to-end service smoke: a real ``repro serve`` process, checked
against a direct in-process run.

``python -m repro.service.smoke`` (the CI smoke step):

1. starts ``repro serve`` as a subprocess on a free port with a fresh
   temporary store;
2. submits a small sweep over two adversary models (plus the plain
   fault-coin baseline) through the HTTP API;
3. polls the job to completion and fetches every report by cache key;
4. asserts each fetched body is byte-identical to the canonical report
   a direct :func:`repro.runner.run_batch` produces for the same
   scenarios — the determinism contract, measured over a real socket;
5. re-submits the identical sweep and requires the cached replay to
   finish without recomputing (store size unchanged).

Exit status 0 on success; any mismatch or timeout is fatal.
"""

from __future__ import annotations

import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.faults import AdversaryConfig
from repro.runner import Scenario, expand_grid, run_batch
from repro.service.client import ServiceClient

#: the sweep CI submits: one baseline + two adversary models, two seeds
ADVERSARY_AXIS = [
    AdversaryConfig("iid", {"model": "receiver", "p": 0.3}),
    AdversaryConfig("gilbert_elliott", {"p_bad": 0.9}),
    AdversaryConfig("budgeted_jammer", {"per_round": 2}),
]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _smoke_scenarios() -> list[Scenario]:
    base = Scenario(
        algorithm="decay", topology="path", topology_params={"n": 24}
    )
    return expand_grid(
        base, seeds=[0, 1], grid={"adversary": ADVERSARY_AXIS}
    )


def _wait_for_health(client: ServiceClient, deadline_s: float = 30.0) -> None:
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            client.health()
            return
        except Exception:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)


def main() -> int:
    port = _free_port()
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        store_path = str(Path(tmp) / "smoke.db")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--store", store_path, "--port", str(port), "--workers", "1",
            ],
        )
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}")
            _wait_for_health(client)

            registry = client.registry()
            assert "decay" in {a["name"] for a in registry["algorithms"]}
            assert {"gilbert_elliott", "budgeted_jammer"} <= {
                a["name"] for a in registry["adversaries"]
            }

            scenarios = _smoke_scenarios()
            job = client.submit(scenarios=scenarios)
            done = client.wait(job["id"], timeout=120.0)
            assert done["completed"] == len(scenarios), done

            direct = run_batch(scenarios)
            for scenario, report in zip(scenarios, direct):
                fetched = client.report_bytes(scenario.cache_key())
                expected = report.to_json(canonical=True).encode("utf-8")
                assert fetched == expected, (
                    f"served report differs from direct run for "
                    f"{scenario.cache_key()}"
                )

            stored = client.health()["reports"]
            assert stored == len(scenarios), (stored, len(scenarios))

            # identical resubmission: pure cache replay, nothing new stored
            replay = client.wait(
                client.submit(scenarios=scenarios)["id"], timeout=60.0
            )
            assert replay["completed"] == len(scenarios)
            assert client.health()["reports"] == stored

            jammed = client.query(adversary="budgeted_jammer")
            assert len(jammed) == 2, [r.cache_key for r in jammed]

            print(
                f"service smoke OK: {len(scenarios)} reports over "
                f"{len(ADVERSARY_AXIS)} noise models served byte-identical "
                "to direct run_batch; cached replay stored nothing new"
            )
            return 0
        finally:
            process.terminate()
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()


if __name__ == "__main__":
    sys.exit(main())
