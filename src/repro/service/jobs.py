"""Job queue and background workers for the serving layer.

A :class:`Job` is a submitted batch of scenarios; a :class:`JobManager`
owns a queue of them and a pool of worker threads that execute each job
in chunks through :func:`repro.runner.run_batch` — with the result store
threaded through, so every chunk lands in SQLite as it finishes, cache
hits skip execution, and a job that repeats stored work completes in
milliseconds. Each chunk may itself fan out across the existing
``multiprocessing`` pool (``processes``), so the service composes thread
-level job concurrency with process-level scenario parallelism.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Any, Optional, Sequence

from repro.runner import Scenario, run_batch
from repro.store import ResultStore

__all__ = ["Job", "JobManager"]

#: scenarios per run_batch call — the progress-reporting granularity
DEFAULT_CHUNK_SIZE = 8


class Job:
    """One submitted batch of scenarios and its execution state.

    ``status`` walks ``queued -> running -> done`` (or ``failed``);
    ``completed``/``total`` is the progress counter the status endpoint
    reports; ``cache_keys`` are the content addresses of every scenario
    in submission order, known at submit time — clients can fetch
    reports by key the moment the job finishes (or earlier, for keys
    that were already stored).
    """

    def __init__(self, job_id: str, scenarios: Sequence[Scenario]) -> None:
        self.id = job_id
        self.scenarios = list(scenarios)
        self.cache_keys = [
            scenario.cache_key() for scenario in self.scenarios
        ]
        self.status = "queued"
        self.completed = 0
        self.total = len(self.scenarios)
        self.error = ""
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe view of the job (what ``GET /jobs/<id>`` returns)."""
        return {
            "id": self.id,
            "status": self.status,
            "completed": self.completed,
            "total": self.total,
            "cache_keys": list(self.cache_keys),
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class JobManager:
    """A queue of jobs drained by ``workers`` background threads.

    Parameters
    ----------
    store:
        The shared result store every job writes to (and reuses from).
    workers:
        Concurrent jobs; each worker thread runs one job at a time.
    processes:
        Per-chunk ``run_batch`` process fan-out (None/1: in-thread).
    chunk_size:
        Scenarios per ``run_batch`` call; smaller chunks mean finer
        progress reporting and more frequent store commits.
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 2,
        processes: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.store = store
        self.processes = processes
        self.chunk_size = chunk_size
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-job-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission and inspection ------------------------------------------

    def submit(self, scenarios: Sequence[Scenario]) -> Job:
        """Enqueue a batch; every scenario must be serializable."""
        batch = list(scenarios)
        if not batch:
            raise ValueError("cannot submit an empty batch")
        for scenario in batch:
            if not scenario.cacheable:
                raise ValueError(
                    "service jobs require serializable scenarios "
                    "(named topology families)"
                )
        with self._lock:
            job = Job(f"job-{next(self._counter):04d}", batch)
            self._jobs[job.id] = job
        self._queue.put(job.id)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """All jobs in submission order."""
        with self._lock:
            return list(self._jobs.values())

    # -- execution ----------------------------------------------------------

    def _worker(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            job = self.get(job_id)
            if job is None:  # pragma: no cover - jobs are never deleted
                continue
            self._execute(job)
            self._queue.task_done()

    def _execute(self, job: Job) -> None:
        job.status = "running"
        job.started_at = time.time()
        try:
            for start in range(0, job.total, self.chunk_size):
                if self._stop.is_set():
                    raise RuntimeError("service shutting down")
                chunk = job.scenarios[start : start + self.chunk_size]
                run_batch(chunk, processes=self.processes, store=self.store)
                job.completed = min(start + len(chunk), job.total)
            job.status = "done"
        except Exception as error:  # noqa: BLE001 - report, don't kill worker
            job.status = "failed"
            job.error = f"{type(error).__name__}: {error}"
        finally:
            job.finished_at = time.time()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the workers (the job in flight finishes its chunk)."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
