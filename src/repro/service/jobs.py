"""Job queue and background workers for the serving layer.

A :class:`Job` is a submitted batch of scenarios; a :class:`JobManager`
owns a queue of them and a pool of worker threads that execute each job
in chunks through :func:`repro.runner.run_batch` — with the result store
threaded through, so every chunk lands in SQLite as it finishes, cache
hits skip execution, and a job that repeats stored work completes in
milliseconds. Each chunk may itself fan out across the existing
``multiprocessing`` pool (``processes``), so the service composes thread
-level job concurrency with process-level scenario parallelism.

Two job kinds exist: ``batch`` (a fixed scenario list) and ``adaptive``
(an :func:`repro.analysis.design.adaptive_sweep` specification — the
worker decides how many seeds each grid cell needs as it goes, and the
finished job's snapshot carries the canonical
:class:`~repro.analysis.AnalysisReport` under ``result``).

With a farm :class:`~repro.farm.Coordinator` attached (``repro serve
--workers remote``), the manager keeps the same submission/inspection
API but executes nothing itself: batch jobs are handed to the
coordinator's lease queue and remote worker processes drain them.

Shutdown drains instead of dropping: in-flight jobs stop at their next
chunk boundary and are marked ``cancelled`` (with queued jobs), so no
job is ever left reading ``running`` forever after the service stops.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import TYPE_CHECKING, Any, Mapping, Optional, Sequence

from repro.runner import Scenario, run_batch
from repro.store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - import cycle at type time only
    from repro.farm import Coordinator

__all__ = ["Job", "JobManager", "coerce_grid"]


class _Cancelled(Exception):
    """Internal: the service is shutting down; stop at the chunk boundary."""


def coerce_grid(grid: Mapping[str, Any]) -> dict[str, list]:
    """JSON grid axes -> runner grid axes (configs arrive as dicts).

    Shared by the HTTP layer (batch jobs) and adaptive submission, so
    the two paths can never drift on which axes take config objects.
    Raises ValueError on malformed axes.
    """
    from repro.core.faults import AdversaryConfig, FaultConfig

    coerced: dict[str, list] = {}
    for key, values in dict(grid).items():
        if not isinstance(values, list):
            raise ValueError(f"grid axis {key!r} must be a list")
        if key == "adversary":
            coerced[key] = [
                AdversaryConfig.from_dict(v) if isinstance(v, dict) else v
                for v in values
            ]
        elif key == "faults":
            coerced[key] = [
                FaultConfig.from_dict(v) if isinstance(v, dict) else v
                for v in values
            ]
        else:
            coerced[key] = values
    return coerced

#: scenarios per run_batch call — the progress-reporting granularity
DEFAULT_CHUNK_SIZE = 8


class Job:
    """One submitted batch of scenarios and its execution state.

    ``status`` walks ``queued -> running -> done`` (or ``failed``;
    farmed jobs can also finish ``partial``, meaning some scenarios were
    quarantined after repeated failures — see ``quarantined`` for the
    per-scenario error map); ``completed``/``total`` is the progress
    counter the status endpoint reports; ``cache_keys`` are the content
    addresses of every scenario in submission order, known at submit
    time — clients can fetch reports by key the moment the job finishes
    (or earlier, for keys that were already stored).
    """

    def __init__(
        self,
        job_id: str,
        scenarios: Sequence[Scenario],
        kind: str = "batch",
        spec: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.id = job_id
        self.kind = kind
        self.spec = dict(spec or {})
        self.scenarios = list(scenarios)
        self.cache_keys = [
            scenario.cache_key() for scenario in self.scenarios
        ]
        self.status = "queued"
        self.completed = 0
        self.total = len(self.scenarios)
        #: cache key -> error, for scenarios the farm quarantined
        self.quarantined: dict[str, str] = {}
        self.error = ""
        self.result: Optional[dict[str, Any]] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe view of the job (what ``GET /jobs/<id>`` returns).

        For adaptive jobs ``total`` is the seed-budget upper bound (cells
        x max_seeds), ``completed`` counts runs resolved so far, and
        ``result`` is the finished analysis report dict (None until
        done).
        """
        return {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "completed": self.completed,
            "total": self.total,
            "cache_keys": list(self.cache_keys),
            "quarantined": dict(self.quarantined),
            "error": self.error,
            "result": self.result,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class JobManager:
    """A queue of jobs drained by ``workers`` background threads.

    Parameters
    ----------
    store:
        The shared result store every job writes to (and reuses from).
    workers:
        Concurrent jobs; each worker thread runs one job at a time.
    processes:
        Per-chunk ``run_batch`` process fan-out (None/1: in-thread).
    chunk_size:
        Scenarios per ``run_batch`` call; smaller chunks mean finer
        progress reporting and more frequent store commits.
    coordinator:
        A farm :class:`~repro.farm.Coordinator`. When given, no local
        worker threads start — submitted batches go to the lease queue
        and remote ``repro worker`` processes execute them. A
        coordinator built by :meth:`~repro.farm.Coordinator.recover`
        already carries jobs replayed from the journal; the manager
        adopts them under their original ids, so clients polling
        ``GET /jobs/<id>`` across a coordinator restart keep working.
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 2,
        processes: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        coordinator: "Optional[Coordinator]" = None,
    ) -> None:
        if workers < 1 and coordinator is None:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.store = store
        self.processes = processes
        self.chunk_size = chunk_size
        self.coordinator = coordinator
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-job-worker-{i}", daemon=True
            )
            for i in range(0 if coordinator is not None else workers)
        ]
        for thread in self._threads:
            thread.start()
        if coordinator is not None:
            self._adopt(coordinator.jobs())

    def _adopt(self, jobs: Sequence[Job]) -> None:
        """Adopt journal-recovered jobs under their original ids and
        advance the id counter past them (no id is ever reissued)."""
        highest = 0
        with self._lock:
            for job in jobs:
                self._jobs[job.id] = job
                tail = job.id.rsplit("-", 1)[-1]
                if tail.isdigit():
                    highest = max(highest, int(tail))
            if highest:
                self._counter = itertools.count(highest + 1)

    # -- submission and inspection ------------------------------------------

    def submit(self, scenarios: Sequence[Scenario]) -> Job:
        """Enqueue a batch; every scenario must be serializable."""
        if self._stop.is_set():
            raise RuntimeError("the job manager is shut down")
        batch = list(scenarios)
        if not batch:
            raise ValueError("cannot submit an empty batch")
        for scenario in batch:
            if not scenario.cacheable:
                raise ValueError(
                    "service jobs require serializable scenarios "
                    "(named topology families)"
                )
        with self._lock:
            job = Job(f"job-{next(self._counter):04d}", batch)
            self._jobs[job.id] = job
        if self.coordinator is not None:
            self.coordinator.add_job(job)
        else:
            self._queue.put(job.id)
        return job

    def submit_adaptive(self, spec: Mapping[str, Any]) -> Job:
        """Enqueue an adaptive sweep (see ``adaptive_sweep`` for keys).

        ``spec`` must hold a serializable ``base`` scenario dict and may
        hold ``grid``, ``target_halfwidth``, ``max_seeds``, ``batch``,
        ``metric``, ``confidence``, ``resamples``, ``seed``,
        ``seed_start``. Every knob is validated here (fail at submit
        time with a clear error, not later in a worker poll).
        """
        from repro.analysis.aggregate import METRICS

        if self._stop.is_set():
            raise RuntimeError("the job manager is shut down")
        if self.coordinator is not None:
            raise ValueError(
                "adaptive jobs need local workers; this service farms "
                "batches to remote workers (serve without --workers remote)"
            )
        spec = dict(spec)
        base = Scenario.from_dict(spec.get("base", {}))
        if not base.cacheable:
            raise ValueError("adaptive jobs require serializable scenarios")
        grid = coerce_grid(spec.get("grid") or {})
        max_seeds = int(spec.get("max_seeds", 64))
        batch_size = int(spec.get("batch", 4))
        if batch_size < 1 or max_seeds < batch_size:
            raise ValueError(
                f"need 1 <= batch <= max_seeds, got batch={batch_size} "
                f"max_seeds={max_seeds}"
            )
        if float(spec.get("target_halfwidth", 1.0)) <= 0.0:
            raise ValueError(
                f"target_halfwidth must be > 0, got {spec['target_halfwidth']}"
            )
        if int(spec.get("resamples", 1000)) < 1:
            raise ValueError(f"resamples must be >= 1, got {spec['resamples']}")
        metric = str(spec.get("metric", "rounds"))
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; allowed: {METRICS}")
        confidence = float(spec.get("confidence", 0.95))
        if not 0.0 < confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        from repro.runner import expand_grid

        cells = expand_grid(base, seeds=[0], grid=grid)
        if not cells:
            raise ValueError("the adaptive grid expands to zero cells")
        with self._lock:
            job = Job(
                f"job-{next(self._counter):04d}",
                cells,
                kind="adaptive",
                spec={**spec, "grid": grid, "max_seeds": max_seeds,
                      "batch": batch_size},
            )
            # for adaptive jobs the total is the seed-budget upper bound
            job.total = len(cells) * max_seeds
            self._jobs[job.id] = job
        self._queue.put(job.id)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """All jobs in submission order."""
        with self._lock:
            return list(self._jobs.values())

    # -- execution ----------------------------------------------------------

    def _worker(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            job = self.get(job_id)
            if job is None:  # pragma: no cover - jobs are never deleted
                continue
            self._execute(job)
            self._queue.task_done()

    def _execute(self, job: Job) -> None:
        job.status = "running"
        job.started_at = time.time()
        try:
            if job.kind == "adaptive":
                self._execute_adaptive(job)
            else:
                self._execute_batch(job)
            job.status = "done"
        except _Cancelled:
            # shutdown drained this job at a chunk boundary: completed
            # chunks are in the store (a resubmission is a cache replay),
            # and the terminal status is visible instead of a forever
            # "running"
            job.status = "cancelled"
            job.error = "service shut down before the job finished"
        except Exception as error:  # noqa: BLE001 - report, don't kill worker
            job.status = "failed"
            job.error = f"{type(error).__name__}: {error}"
        finally:
            job.finished_at = time.time()

    def _execute_batch(self, job: Job) -> None:
        for start in range(0, job.total, self.chunk_size):
            if self._stop.is_set():
                raise _Cancelled()
            chunk = job.scenarios[start : start + self.chunk_size]
            run_batch(chunk, processes=self.processes, store=self.store)
            job.completed = min(start + len(chunk), job.total)

    def _execute_adaptive(self, job: Job) -> None:
        from repro.analysis.design import adaptive_sweep

        spec = job.spec

        def on_progress(done: int, _bound: int) -> None:
            if self._stop.is_set():
                raise _Cancelled()
            job.completed = min(done, job.total)

        report = adaptive_sweep(
            Scenario.from_dict(spec["base"]),
            grid=spec.get("grid") or {},
            target_halfwidth=float(spec.get("target_halfwidth", 1.0)),
            max_seeds=int(spec["max_seeds"]),
            batch=int(spec["batch"]),
            metric=str(spec.get("metric", "rounds")),
            confidence=float(spec.get("confidence", 0.95)),
            resamples=int(spec.get("resamples", 1000)),
            seed=int(spec.get("seed", 0)),
            seed_start=int(spec.get("seed_start", 0)),
            store=self.store,
            processes=self.processes,
            progress=on_progress,
        )
        job.result = report.to_dict()
        job.completed = job.total

    def shutdown(self, timeout: float = 5.0) -> None:
        """Drain and stop: no job is left looking ``queued``/``running``.

        In-flight jobs stop at their next chunk boundary and end up
        ``cancelled`` (their finished chunks are already in the store,
        so resubmitting one after a restart replays the done part from
        cache). Jobs still waiting in the queue are marked ``cancelled``
        without starting. Worker threads are joined — daemon teardown is
        the backstop, not the mechanism — and if one is still wedged
        after ``timeout`` its job is cancelled anyway so clients polling
        the snapshot always see a terminal status.
        """
        self._stop.set()
        while True:  # jobs the workers will never pick up
            try:
                job_id = self._queue.get_nowait()
            except queue.Empty:
                break
            job = self.get(job_id)
            if job is not None and job.status == "queued":
                self._cancel(job)
        for thread in self._threads:
            thread.join(timeout=timeout)
        with self._lock:
            stuck = [
                job
                for job in self._jobs.values()
                if job.status in ("queued", "running")
            ]
        for job in stuck:
            self._cancel(job)

    @staticmethod
    def _cancel(job: Job) -> None:
        job.status = "cancelled"
        job.error = job.error or "service shut down before the job finished"
        job.finished_at = job.finished_at or time.time()
