"""The serving layer: run sweeps behind an HTTP API, answer from the store.

``repro serve --store results.db`` turns the simulator into a long-lived
service: clients submit scenario sweeps as JSON, a background worker
pool executes them through the unified runner (with the existing
``multiprocessing`` fan-out), every canonical report lands in the
content-addressed :class:`~repro.store.ResultStore`, and repeat queries
are answered with one SQLite read instead of a recompute.

The pieces:

* :mod:`repro.service.jobs`   — :class:`JobManager`: queue + workers;
* :mod:`repro.service.server` — :class:`ReproService`: the stdlib
  ``ThreadingHTTPServer`` JSON API (``/health``, ``/registry``,
  ``/jobs``, ``/reports``);
* :mod:`repro.service.client` — :class:`ServiceClient`: a stdlib client
  for scripts, tests, and the CI smoke;
* :mod:`repro.service.smoke`  — the end-to-end smoke
  (``python -m repro.service.smoke``) CI runs against a real
  ``repro serve`` subprocess.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobManager
from repro.service.server import ReproService, serve

__all__ = [
    "Job",
    "JobManager",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "serve",
]
