"""The serving layer: run sweeps behind an HTTP API, answer from the store.

``repro serve --store results.db`` turns the simulator into a long-lived
service: clients submit scenario sweeps as JSON, a background worker
pool executes them through the unified runner (with the existing
``multiprocessing`` fan-out), every canonical report lands in the
content-addressed :class:`~repro.store.ResultStore`, and repeat queries
are answered with one SQLite read instead of a recompute.

``repro serve --workers remote`` swaps the local worker pool for a
:mod:`repro.farm` coordinator: the same jobs become chunked scenario
leases that external ``repro worker`` processes pull, execute, and push
back — clients cannot tell which mode ran their sweep.

The pieces:

* :mod:`repro.service.jobs`   — :class:`JobManager`: queue + workers
  (or the farm coordinator in remote mode);
* :mod:`repro.service.server` — :class:`ReproService`: the stdlib
  ``ThreadingHTTPServer`` JSON API (``/health``, ``/registry``,
  ``/jobs``, ``/reports``, and the farm's ``/workers``/``/leases``)
  behind a bounded handler thread pool;
* :mod:`repro.service.client` — :class:`ServiceClient`: a stdlib client
  for scripts, tests, workers, and the CI smoke; idempotent calls
  retry transport failures with bounded backoff and jitter;
* :mod:`repro.service.smoke`  — the end-to-end smoke
  (``python -m repro.service.smoke``) CI runs against a real
  ``repro serve`` subprocess.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobManager
from repro.service.server import ReproService, serve

__all__ = [
    "Job",
    "JobManager",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "serve",
]
