"""A minimal stdlib client for the repro service JSON API.

Used by the tests, the CI smoke, and scripts that farm sweeps out to a
running ``repro serve`` instance; it is also executable documentation of
the wire protocol (every method maps to exactly one endpoint).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Optional, Sequence
from urllib.parse import quote

from repro.runner import RunReport, Scenario

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An error response (JSON ``{"error": ...}``) from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to a :class:`~repro.service.ReproService` at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(self, path: str, payload: Any = None) -> bytes:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=(
                None
                if payload is None
                else json.dumps(payload).encode("utf-8")
            ),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            body = error.read()
            try:
                message = json.loads(body)["error"]
            except (json.JSONDecodeError, KeyError, TypeError):
                message = body.decode("utf-8", "replace")
            raise ServiceError(error.code, message) from None

    def _json(self, path: str, payload: Any = None) -> Any:
        return json.loads(self._request(path, payload))

    # -- endpoints ----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._json("/health")

    def registry(self, adversaries_only: bool = False) -> dict[str, Any]:
        suffix = "?adversaries=1" if adversaries_only else ""
        return self._json(f"/registry{suffix}")

    def submit(
        self,
        scenarios: Optional[Sequence[Scenario]] = None,
        base: Optional[Scenario] = None,
        seeds: Optional[Sequence[int]] = None,
        grid: Optional[dict[str, Sequence[Any]]] = None,
    ) -> dict[str, Any]:
        """Submit a sweep; returns the job snapshot (id, cache_keys, ...)."""
        if (scenarios is None) == (base is None):
            raise ValueError("pass exactly one of scenarios= or base=")
        if scenarios is not None:
            payload: dict[str, Any] = {
                "scenarios": [scenario.to_dict() for scenario in scenarios]
            }
        else:
            payload = {"base": base.to_dict()}
            if seeds is not None:
                payload["seeds"] = list(seeds)
            if grid is not None:
                payload["grid"] = {
                    key: [
                        value.to_dict() if hasattr(value, "to_dict") else value
                        for value in values
                    ]
                    for key, values in grid.items()
                }
        return self._json("/jobs", payload)

    def jobs(self) -> list[dict[str, Any]]:
        return self._json("/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._json(f"/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.05
    ) -> dict[str, Any]:
        """Poll until the job finishes; raises on failure or timeout."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["status"] == "done":
                return snapshot
            if snapshot["status"] == "failed":
                raise ServiceError(500, f"job {job_id} failed: {snapshot['error']}")
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['status']} "
                    f"({snapshot['completed']}/{snapshot['total']}) "
                    f"after {timeout}s"
                )
            time.sleep(poll)

    def report_bytes(self, cache_key: str) -> bytes:
        """The stored canonical report JSON, byte-exact."""
        return self._request(f"/reports/{cache_key}")

    def report(self, cache_key: str) -> RunReport:
        return RunReport.from_dict(json.loads(self.report_bytes(cache_key)))

    def query(self, **filters: Any) -> list[RunReport]:
        """Fetch reports matching store filters (see ``ResultStore.query``).

        ``limit``/``offset``/``order_by`` page deterministically — the
        server's ordering is total, so walking pages never duplicates or
        drops a report.
        """
        pairs = "&".join(
            f"{key}={value}" for key, value in filters.items() if value is not None
        )
        payload = self._json(f"/reports?{pairs}" if pairs else "/reports")
        return [RunReport.from_dict(data) for data in payload["reports"]]

    def submit_adaptive(
        self,
        base: Scenario,
        grid: Optional[dict[str, Sequence[Any]]] = None,
        **spec: Any,
    ) -> dict[str, Any]:
        """Submit an adaptive sweep job (``repro.analysis.adaptive_sweep``).

        ``spec`` passes ``target_halfwidth``, ``max_seeds``, ``batch``,
        ``metric``, ... through; the finished job snapshot (``wait``)
        carries the canonical analysis report under ``"result"``.
        """
        payload: dict[str, Any] = {"base": base.to_dict(), **spec}
        if grid is not None:
            payload["grid"] = {
                key: [
                    value.to_dict() if hasattr(value, "to_dict") else value
                    for value in values
                ]
                for key, values in grid.items()
            }
        return self._json("/jobs", {"adaptive": payload})

    def analysis(self, kind: str = "aggregate", **params: Any) -> dict[str, Any]:
        """Run a server-side analysis (``GET /analysis``).

        ``kind="aggregate"`` takes ``by`` (comma list), ``metric``,
        ``percentiles``, store filters; ``kind="compare"`` takes arm
        filters spelled ``a_algorithm="decay"`` / ``b_algorithm=...``
        plus ``match_on``. Returns the analysis report dict (canonical
        body + cache_key).
        """
        pairs = "&".join(
            f"{key}={quote(str(value))}"
            for key, value in params.items()
            if value is not None
        )
        suffix = f"&{pairs}" if pairs else ""
        return self._json(f"/analysis?kind={kind}{suffix}")
