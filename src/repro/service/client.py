"""A minimal stdlib client for the repro service JSON API.

Used by the tests, the CI smoke, farm workers, and scripts that farm
sweeps out to a running ``repro serve`` instance; it is also executable
documentation of the wire protocol (every method maps to exactly one
endpoint).

Transport errors on *idempotent* calls — every GET, plus lease
heartbeats — are retried with bounded exponential backoff and jitter: a
coordinator restarting, a dropped keep-alive socket, or a transient
``ConnectionResetError`` under load costs a short sleep, not a dead
sweep. Non-idempotent POSTs are never retried automatically (a lease
checkout or job submission must not silently double), and an HTTP error
*response* is never retried — the server answered; retrying would not
change its mind.

On top of the per-attempt socket ``timeout`` there is a total per-call
``deadline``: the whole logical call — every attempt plus every backoff
sleep — must finish inside it or the call raises ``TimeoutError``. The
socket timeout cannot catch a coordinator that *accepts* the connection
and then never answers combined with retries extending the wait
indefinitely; the deadline can, so a black-holed coordinator costs a
worker at most ``deadline`` seconds per call, never forever.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Optional, Sequence
from urllib.parse import quote

from repro.runner import RunReport, Scenario
from repro.telemetry.metrics import METRICS as _METRICS
from repro.telemetry.tracing import TRACE_HEADER

__all__ = ["ServiceClient", "ServiceError"]

_M_RETRIES = _METRICS.counter(
    "repro_client_retries_total", "transport retries on idempotent calls"
)
_M_LAST_ERROR_AT = _METRICS.gauge(
    "repro_client_last_error_timestamp_seconds",
    "wall clock of the most recent transport error",
)

#: transport-level failures worth retrying on idempotent calls
_RETRYABLE = (
    urllib.error.URLError,
    http.client.HTTPException,
    ConnectionError,
    socket.timeout,
    TimeoutError,
)


class ServiceError(RuntimeError):
    """An error response (JSON ``{"error": ...}``) from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to a :class:`~repro.service.ReproService` at ``base_url``.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running service.
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Extra attempts for idempotent calls that die in transport.
    backoff:
        First retry delay in seconds; doubles per attempt up to
        ``backoff_max``, with jitter so a worker fleet never retries in
        lockstep.
    deadline:
        Total wall-clock budget in seconds for one logical call,
        attempts and backoff sleeps included (None: unbounded). Each
        attempt's socket timeout is clipped to the time remaining, and
        a retry that would start past the deadline raises
        ``TimeoutError`` instead.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.1,
        backoff_max: float = 2.0,
        deadline: Optional[float] = None,
    ) -> None:
        if deadline is not None and deadline <= 0.0:
            raise ValueError(f"deadline must be > 0, got {deadline}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.backoff_max = backoff_max
        self.deadline = deadline
        self._random = random.Random()
        #: retry/error observability (see the farm worker's exit summary)
        self.retries_total = 0
        self.last_error = ""
        self.last_error_at = 0.0
        #: the most recent X-Repro-Trace response header (lease checkouts)
        self.last_trace = ""
        self.verbose = False

    # -- transport ----------------------------------------------------------

    def _request(
        self,
        path: str,
        payload: Any = None,
        method: Optional[str] = None,
        idempotent: bool = False,
    ) -> bytes:
        attempts = 1 + (self.retries if idempotent else 0)
        expires = (
            None if self.deadline is None else time.monotonic() + self.deadline
        )
        for attempt in range(attempts):
            remaining = (
                None if expires is None else expires - time.monotonic()
            )
            if remaining is not None and remaining <= 0.0:
                raise TimeoutError(
                    f"call to {path} exceeded its {self.deadline}s deadline"
                )
            try:
                return self._request_once(path, payload, method, remaining)
            except ServiceError:
                raise  # the server answered; retrying cannot help
            except _RETRYABLE as error:
                self.last_error = f"{type(error).__name__}: {error}"
                self.last_error_at = time.time()
                if _METRICS.enabled:
                    _M_LAST_ERROR_AT.set(self.last_error_at)
                if attempt + 1 >= attempts:
                    raise
                self.retries_total += 1
                if _METRICS.enabled:
                    _M_RETRIES.inc()
                if self.verbose:
                    print(
                        f"[client] retrying {path} after {self.last_error} "
                        f"(attempt {attempt + 2}/{attempts})",
                        file=sys.stderr,
                    )
                if not self._sleep(attempt, expires):
                    raise TimeoutError(
                        f"call to {path} exceeded its {self.deadline}s "
                        "deadline while retrying"
                    ) from None
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self,
        path: str,
        payload: Any,
        method: Optional[str],
        remaining: Optional[float] = None,
    ) -> bytes:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=(
                None
                if payload is None
                else json.dumps(payload).encode("utf-8")
            ),
            headers={"Content-Type": "application/json"},
            method=method,
        )
        timeout = self.timeout
        if remaining is not None:
            timeout = max(0.001, min(timeout, remaining))
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                body = response.read()
                trace = response.headers.get(TRACE_HEADER)
                if trace:
                    self.last_trace = trace
                return body
        except urllib.error.HTTPError as error:
            body = error.read()
            try:
                message = json.loads(body)["error"]
            except (json.JSONDecodeError, KeyError, TypeError):
                message = body.decode("utf-8", "replace")
            raise ServiceError(error.code, message) from None

    def _sleep(self, attempt: int, expires: Optional[float] = None) -> bool:
        """Back off before a retry; False when the deadline forbids one."""
        delay = min(self.backoff_max, self.backoff * (2.0 ** attempt))
        # full jitter: anywhere in (delay/2, delay], so a fleet of
        # workers hitting the same hiccup spreads out
        delay = delay * (0.5 + 0.5 * self._random.random())
        if expires is not None and time.monotonic() + delay >= expires:
            return False
        time.sleep(delay)
        return True

    def _json(
        self,
        path: str,
        payload: Any = None,
        method: Optional[str] = None,
        idempotent: bool = False,
    ) -> Any:
        return json.loads(
            self._request(path, payload, method=method, idempotent=idempotent)
        )

    def _get(self, path: str) -> Any:
        return self._json(path, idempotent=True)

    # -- endpoints ----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._get("/health")

    def registry(self, adversaries_only: bool = False) -> dict[str, Any]:
        suffix = "?adversaries=1" if adversaries_only else ""
        return self._get(f"/registry{suffix}")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition."""
        return self._request("/metrics", idempotent=True).decode("utf-8")

    def metrics_json(self) -> dict[str, Any]:
        """``GET /metrics.json`` — the registry snapshot as JSON."""
        return self._get("/metrics.json")

    def submit(
        self,
        scenarios: Optional[Sequence[Scenario]] = None,
        base: Optional[Scenario] = None,
        seeds: Optional[Sequence[int]] = None,
        grid: Optional[dict[str, Sequence[Any]]] = None,
    ) -> dict[str, Any]:
        """Submit a sweep; returns the job snapshot (id, cache_keys, ...)."""
        if (scenarios is None) == (base is None):
            raise ValueError("pass exactly one of scenarios= or base=")
        if scenarios is not None:
            payload: dict[str, Any] = {
                "scenarios": [scenario.to_dict() for scenario in scenarios]
            }
        else:
            payload = {"base": base.to_dict()}
            if seeds is not None:
                payload["seeds"] = list(seeds)
            if grid is not None:
                payload["grid"] = {
                    key: [
                        value.to_dict() if hasattr(value, "to_dict") else value
                        for value in values
                    ]
                    for key, values in grid.items()
                }
        return self._json("/jobs", payload)

    def jobs(self) -> list[dict[str, Any]]:
        return self._get("/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._get(f"/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.05
    ) -> dict[str, Any]:
        """Poll until the job finishes; raises on failure or timeout.

        ``partial`` — a farmed job that completed except for quarantined
        poison scenarios — counts as finished: the snapshot is returned
        (inspect its ``quarantined`` map) rather than raised, because
        the stored results are real and the caller decides what a few
        quarantined scenarios mean.
        """
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["status"] in ("done", "partial"):
                return snapshot
            if snapshot["status"] in ("failed", "cancelled"):
                raise ServiceError(
                    500,
                    f"job {job_id} {snapshot['status']}: {snapshot['error']}",
                )
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['status']} "
                    f"({snapshot['completed']}/{snapshot['total']}) "
                    f"after {timeout}s"
                )
            time.sleep(poll)

    def report_bytes(self, cache_key: str) -> bytes:
        """The stored canonical report JSON, byte-exact."""
        return self._request(f"/reports/{cache_key}", idempotent=True)

    def report(self, cache_key: str) -> RunReport:
        return RunReport.from_dict(json.loads(self.report_bytes(cache_key)))

    def query(self, **filters: Any) -> list[RunReport]:
        """Fetch reports matching store filters (see ``ResultStore.query``).

        ``limit``/``offset``/``order_by`` page deterministically — the
        server's ordering is total, so walking pages never duplicates or
        drops a report.
        """
        pairs = "&".join(
            f"{key}={value}" for key, value in filters.items() if value is not None
        )
        payload = self._get(f"/reports?{pairs}" if pairs else "/reports")
        return [RunReport.from_dict(data) for data in payload["reports"]]

    def submit_adaptive(
        self,
        base: Scenario,
        grid: Optional[dict[str, Sequence[Any]]] = None,
        **spec: Any,
    ) -> dict[str, Any]:
        """Submit an adaptive sweep job (``repro.analysis.adaptive_sweep``).

        ``spec`` passes ``target_halfwidth``, ``max_seeds``, ``batch``,
        ``metric``, ... through; the finished job snapshot (``wait``)
        carries the canonical analysis report under ``"result"``.
        """
        payload: dict[str, Any] = {"base": base.to_dict(), **spec}
        if grid is not None:
            payload["grid"] = {
                key: [
                    value.to_dict() if hasattr(value, "to_dict") else value
                    for value in values
                ]
                for key, values in grid.items()
            }
        return self._json("/jobs", {"adaptive": payload})

    def analysis(self, kind: str = "aggregate", **params: Any) -> dict[str, Any]:
        """Run a server-side analysis (``GET /analysis``).

        ``kind="aggregate"`` takes ``by`` (comma list), ``metric``,
        ``percentiles``, store filters; ``kind="compare"`` takes arm
        filters spelled ``a_algorithm="decay"`` / ``b_algorithm=...``
        plus ``match_on``. Returns the analysis report dict (canonical
        body + cache_key).
        """
        pairs = "&".join(
            f"{key}={quote(str(value))}"
            for key, value in params.items()
            if value is not None
        )
        suffix = f"&{pairs}" if pairs else ""
        return self._get(f"/analysis?kind={kind}{suffix}")

    # -- the farm protocol --------------------------------------------------

    def register_worker(self, name: str = "") -> dict[str, Any]:
        """``POST /workers`` — join the farm; returns id + lease knobs."""
        return self._json("/workers", {"name": name})

    def workers(self) -> dict[str, Any]:
        """``GET /workers`` — worker fleet + queue counters snapshot."""
        return self._get("/workers")

    def lease(
        self, worker_id: str, max_scenarios: Optional[int] = None
    ) -> Optional[dict[str, Any]]:
        """``POST /leases`` — check out a chunk (None when the queue is idle)."""
        payload: dict[str, Any] = {"worker": worker_id}
        if max_scenarios is not None:
            payload["max_scenarios"] = int(max_scenarios)
        return self._json("/leases", payload)["lease"]

    def heartbeat(self, lease_id: str, worker_id: str) -> dict[str, Any]:
        """``PUT /leases/<id>/heartbeat`` — extend the lease deadline.

        Idempotent, so transport failures retry with backoff; an expired
        lease answers 410 (:class:`ServiceError`), which is a signal,
        not a transport failure.
        """
        return self._json(
            f"/leases/{lease_id}/heartbeat",
            {"worker": worker_id},
            method="PUT",
            idempotent=True,
        )

    def complete(
        self,
        lease_id: str,
        worker_id: str,
        reports: Sequence[RunReport],
        executed: int = 0,
        cached: int = 0,
    ) -> dict[str, Any]:
        """``POST /leases/<id>/complete`` — push a lease's finished reports.

        Safe to call on an expired lease: the coordinator absorbs late
        results by content address and reports ``late: true``.
        """
        return self._json(
            f"/leases/{lease_id}/complete",
            {
                "worker": worker_id,
                "reports": [report.to_dict() for report in reports],
                "executed": int(executed),
                "cached": int(cached),
            },
        )

    def fail(
        self, lease_id: str, worker_id: str, message: str
    ) -> dict[str, Any]:
        """``POST /leases/<id>/complete`` with an error — requeue the chunk."""
        return self._json(
            f"/leases/{lease_id}/complete",
            {"worker": worker_id, "error": str(message)},
        )
