"""The HTTP serving layer: a stdlib JSON API over store and job queue.

``repro serve`` binds a :class:`ReproService` — a
``ThreadingHTTPServer`` whose handler threads answer reads straight from
the :class:`~repro.store.ResultStore` while a
:class:`~repro.service.jobs.JobManager` worker pool executes submitted
sweeps in the background. Endpoints:

==========================  =================================================
``GET  /health``            liveness + store size
``GET  /registry``          machine-readable registry dump
                            (``?adversaries=1`` for adversaries only)
``POST /jobs``              submit scenarios: ``{"scenarios": [dict, ...]}``
                            or ``{"base": dict, "seeds": [...],
                            "grid": {...}}`` -> job snapshot + cache keys;
                            or an adaptive sweep: ``{"adaptive": {"base":
                            dict, "grid": {...}, "target_halfwidth": ...,
                            "max_seeds": ..., "batch": ...}}`` (the
                            finished snapshot carries the canonical
                            analysis report under ``result``)
``GET  /jobs``              all jobs, submission order
``GET  /jobs/<id>``         one job's status/progress
``GET  /reports/<key>``     the stored canonical report JSON, byte-exact
``GET  /reports?...``       query: algorithm, topology, adversary,
                            fault_model, seed_min, seed_max, success,
                            limit, offset, order_by (stable pagination:
                            every ordering is total)
``GET  /analysis?...``      server-side analysis over the store:
                            ``kind=aggregate`` (``by``, ``metric``,
                            ``percentiles``, ...) or ``kind=compare``
                            (arm filters as ``a_<field>``/``b_<field>``,
                            ``match_on``, ...) -> canonical
                            :class:`~repro.analysis.AnalysisReport` dict
``GET  /metrics``           the process metrics registry in Prometheus
                            text exposition format 0.0.4
``GET  /metrics.json``      the same registry as a JSON snapshot (what
                            ``repro top`` polls)
==========================  =================================================

With ``remote_workers=True`` (``repro serve --workers remote``) the
service coordinates a worker farm instead of executing jobs itself, and
the lease protocol appears:

==============================  =============================================
``POST /workers``               register: ``{"name": ...}`` -> worker id
                                + lease knobs
``GET  /workers``               fleet + queue counters snapshot
``POST /leases``                ``{"worker": id, "max_scenarios": N?}``
                                -> ``{"lease": {...}}`` or
                                ``{"lease": null}`` when idle
``PUT  /leases/<id>/heartbeat`` extend the deadline (410 when expired)
``POST /leases/<id>/complete``  push finished reports (or ``{"error":
                                ...}`` to requeue the chunk)
==============================  =============================================

Every response is JSON. Errors use ``{"error": message}`` with a 4xx/5xx
status. The HTTP front end runs handler threads on a bounded pool, so
thousands of concurrent report fetches queue instead of spawning
thousands of threads.
"""

from __future__ import annotations

import json
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional
from urllib.parse import parse_qs, urlparse

from repro.introspect import registry_dump
from repro.runner import RunReport, Scenario, expand_grid
from repro.service.jobs import JobManager, coerce_grid
from repro.store import ResultStore
from repro.telemetry.metrics import METRICS as _METRICS
from repro.telemetry.tracing import TRACE_HEADER

__all__ = ["ReproService", "serve"]

#: handler threads in the pooled front end
DEFAULT_HTTP_THREADS = 32

#: Prometheus text exposition content type (``GET /metrics``)
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: first path segments counted as the ``route`` label; anything else is
#: bucketed as "other" so a scanner cannot explode label cardinality
_KNOWN_ROUTES = frozenset(
    {"health", "registry", "jobs", "reports", "timelines", "analysis",
     "workers", "leases", "metrics", "metrics.json"}
)

_M_HTTP_REQUESTS = _METRICS.counter(
    "repro_http_requests_total",
    "HTTP requests by method and top-level route",
    labelnames=("method", "route"),
)
_G_STORE_REPORTS = _METRICS.gauge(
    "repro_store_reports", "reports in the service's result store"
)
_G_PENDING = _METRICS.gauge(
    "repro_farm_pending_scenarios", "scenarios waiting in the farm queue"
)
_G_OUTSTANDING = _METRICS.gauge(
    "repro_farm_outstanding_leases", "leases currently checked out"
)
_G_WORKERS = _METRICS.gauge(
    "repro_farm_workers", "workers registered with the coordinator"
)

_MAX_BODY_BYTES = 8 * 1024 * 1024

#: /reports query parameters forwarded to ResultStore.query
_QUERY_STRING_FILTERS = (
    "algorithm", "topology", "adversary", "fault_model", "order_by",
)
_QUERY_INT_FILTERS = ("seed_min", "seed_max", "limit", "offset")

#: /analysis store filters (subset of the /reports filters)
_ANALYSIS_STRING_FILTERS = ("algorithm", "topology", "adversary", "fault_model")
_ANALYSIS_INT_FILTERS = ("seed_min", "seed_max")


class _BadRequest(ValueError):
    """A client error that maps to HTTP 400."""


def _int_param(text: str, name: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise _BadRequest(f"{name} must be an integer") from None


def _float_param(text: str, name: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise _BadRequest(f"{name} must be a number") from None


def _arm_value(text: str) -> Any:
    """Arm filter values arrive as strings; give numerics their type."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _coerce_grid(grid: dict[str, Any]) -> dict[str, list[Any]]:
    """JSON grid axes -> runner grid axes (see :func:`coerce_grid`)."""
    try:
        return coerce_grid(grid)
    except ValueError as error:
        raise _BadRequest(str(error)) from error


def _scenarios_from_payload(payload: Any) -> list[Scenario]:
    """The POST /jobs body -> a scenario batch (raises _BadRequest)."""
    if not isinstance(payload, dict):
        raise _BadRequest("body must be a JSON object")
    try:
        if "scenarios" in payload:
            dicts = payload["scenarios"]
            if not isinstance(dicts, list) or not dicts:
                raise _BadRequest("'scenarios' must be a non-empty list")
            return [Scenario.from_dict(data) for data in dicts]
        if "base" in payload:
            base = Scenario.from_dict(payload["base"])
            seeds = payload.get("seeds")
            grid = _coerce_grid(dict(payload.get("grid") or {}))
            return expand_grid(base, seeds=seeds, grid=grid)
    except _BadRequest:
        raise
    except (KeyError, ValueError, TypeError) as error:
        message = error.args[0] if error.args else error
        raise _BadRequest(str(message)) from error
    raise _BadRequest("body must contain 'scenarios' or 'base'")


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ReproService`."""

    protocol_version = "HTTP/1.1"
    server: "_Server"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.service.verbose:
            super().log_message(format, *args)

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: Optional[dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if extra_headers:
            for name, value in extra_headers.items():
                self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        payload: Any,
        extra_headers: Optional[dict[str, str]] = None,
    ) -> None:
        self._send_bytes(
            status,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
            extra_headers=extra_headers,
        )

    def _count_request(self, method: str, parts: list[str]) -> None:
        if not _METRICS.enabled:
            return
        route = parts[0] if parts else "/"
        if route not in _KNOWN_ROUTES and route != "/":
            route = "other"
        _M_HTTP_REQUESTS.inc_labels((method, route))

    def _error(self, status: int, message: str) -> None:
        # error paths may leave a request body unread; closing the
        # connection keeps a keep-alive client from parsing those bytes
        # as its next request
        self.close_connection = True
        self._send_json(status, {"error": message})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise _BadRequest(f"body too large ({length} bytes)")
        try:
            return json.loads(self.rfile.read(length) or b"null")
        except json.JSONDecodeError as error:
            raise _BadRequest(f"invalid JSON body: {error}") from error

    # -- routing ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        self._count_request("GET", parts)
        try:
            if parts == ["health"]:
                self._get_health()
            elif parts == ["metrics"]:
                self._get_metrics()
            elif parts == ["metrics.json"]:
                self._get_metrics_json()
            elif parts == ["registry"]:
                query = parse_qs(url.query)
                self._send_json(
                    200, registry_dump(adversaries_only="adversaries" in query)
                )
            elif parts == ["jobs"]:
                service = self.server.service
                self._send_json(
                    200, {"jobs": [j.snapshot() for j in service.jobs.jobs()]}
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                self._get_job(parts[1])
            elif parts == ["reports"]:
                self._get_reports_query(parse_qs(url.query))
            elif parts == ["analysis"]:
                self._get_analysis(parse_qs(url.query))
            elif parts == ["workers"]:
                self._send_json(200, self._coordinator().snapshot())
            elif len(parts) == 2 and parts[0] == "reports":
                self._get_report(parts[1])
            elif len(parts) == 2 and parts[0] == "timelines":
                self._get_timeline(parts[1])
            else:
                self._error(404, f"unknown path {url.path!r}")
        except _BadRequest as error:
            self._error(400, str(error))
        except Exception as error:  # noqa: BLE001 - never kill the handler
            self._error(500, f"{type(error).__name__}: {error}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        from repro.farm import UnknownLease, UnknownWorker

        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        self._count_request("POST", parts)
        try:
            if parts == ["jobs"]:
                self._post_job()
            elif parts == ["workers"]:
                self._post_worker()
            elif parts == ["leases"]:
                self._post_lease()
            elif len(parts) == 3 and parts[0] == "leases" and parts[2] == "complete":
                self._post_complete(parts[1])
            else:
                self._error(404, f"unknown path {url.path!r}")
        except _BadRequest as error:
            self._error(400, str(error))
        except UnknownWorker as error:
            self._error(404, str(error))
        except UnknownLease as error:
            self._error(410, str(error))
        except Exception as error:  # noqa: BLE001 - never kill the handler
            self._error(500, f"{type(error).__name__}: {error}")

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        from repro.farm import UnknownLease, UnknownWorker

        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        self._count_request("PUT", parts)
        try:
            if len(parts) == 3 and parts[0] == "leases" and parts[2] == "heartbeat":
                body = self._read_body() or {}
                worker_id = self._worker_id(body)
                self._send_json(
                    200, self._coordinator().heartbeat(parts[1], worker_id)
                )
            else:
                self._error(404, f"unknown path {url.path!r}")
        except _BadRequest as error:
            self._error(400, str(error))
        except UnknownWorker as error:
            self._error(404, str(error))
        except UnknownLease as error:
            self._error(410, str(error))
        except Exception as error:  # noqa: BLE001 - never kill the handler
            self._error(500, f"{type(error).__name__}: {error}")

    # -- endpoints ----------------------------------------------------------

    def _get_health(self) -> None:
        service = self.server.service
        from repro._version import __version__

        self._send_json(
            200,
            {
                "status": "ok",
                "version": __version__,
                "store_path": service.store.path,
                "reports": len(service.store),
            },
        )

    def _refresh_scrape_gauges(self) -> None:
        """Point-in-time gauges sampled at scrape, not on the hot path."""
        service = self.server.service
        _G_STORE_REPORTS.set(len(service.store))
        coordinator = service.coordinator
        if coordinator is not None:
            snapshot = coordinator.snapshot()
            _G_PENDING.set(snapshot["queue"]["pending_scenarios"])
            _G_OUTSTANDING.set(snapshot["queue"]["outstanding_leases"])
            _G_WORKERS.set(len(snapshot["workers"]))

    def _get_metrics(self) -> None:
        self._refresh_scrape_gauges()
        self._send_bytes(
            200,
            _METRICS.prometheus_text().encode("utf-8"),
            content_type=PROMETHEUS_CONTENT_TYPE,
        )

    def _get_metrics_json(self) -> None:
        self._refresh_scrape_gauges()
        self._send_json(
            200,
            {
                "enabled": _METRICS.enabled,
                "metrics": _METRICS.snapshot(),
            },
        )

    def _get_job(self, job_id: str) -> None:
        job = self.server.service.jobs.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
        else:
            self._send_json(200, job.snapshot())

    def _get_report(self, cache_key: str) -> None:
        # serve the stored canonical bytes verbatim: what the client gets
        # over the wire is exactly what a fresh run would render
        text = self.server.service.store.get_json(cache_key)
        if text is None:
            self._error(404, f"no report stored under {cache_key!r}")
        else:
            self._send_bytes(200, text.encode("utf-8"))

    def _get_timeline(self, cache_key: str) -> None:
        # timelines are sidecars keyed by the *report* cache key; the
        # stored canonical bytes are served verbatim, same as reports
        text = self.server.service.store.get_timeline_json(cache_key)
        if text is None:
            self._error(404, f"no timeline stored under {cache_key!r}")
        else:
            self._send_bytes(200, text.encode("utf-8"))

    def _get_reports_query(self, query: dict[str, list[str]]) -> None:
        filters: dict[str, Any] = {}
        for name in _QUERY_STRING_FILTERS:
            if name in query:
                filters[name] = query[name][0]
        for name in _QUERY_INT_FILTERS:
            if name in query:
                try:
                    filters[name] = int(query[name][0])
                except ValueError:
                    raise _BadRequest(f"{name} must be an integer")
        if "success" in query:
            value = query["success"][0].lower()
            if value not in ("true", "false", "0", "1"):
                raise _BadRequest("success must be true/false/0/1")
            filters["success"] = value in ("true", "1")
        unknown = set(query) - set(_QUERY_STRING_FILTERS) - set(
            _QUERY_INT_FILTERS
        ) - {"success"}
        if unknown:
            raise _BadRequest(f"unknown query parameters {sorted(unknown)}")
        reports = self.server.service.store.query(**filters)
        self._send_json(
            200,
            {
                "count": len(reports),
                "reports": [report.to_dict() for report in reports],
            },
        )

    def _get_analysis(self, query: dict[str, list[str]]) -> None:
        from repro import analysis

        service = self.server.service
        params = {name: values[0] for name, values in query.items()}
        kind = params.pop("kind", "aggregate")
        filters: dict[str, Any] = {}
        for name in _ANALYSIS_STRING_FILTERS:
            if name in params:
                filters[name] = params.pop(name)
        for name in _ANALYSIS_INT_FILTERS:
            if name in params:
                filters[name] = _int_param(params.pop(name), name)
        # only forward knobs the client actually sent, so each analysis
        # function keeps its own defaults (aggregate and compare differ)
        knobs: dict[str, Any] = {}
        knobs["metric"] = params.pop("metric", "rounds")
        if "confidence" in params:
            knobs["confidence"] = _float_param(
                params.pop("confidence"), "confidence"
            )
        if "resamples" in params:
            knobs["resamples"] = _int_param(params.pop("resamples"), "resamples")
        if "seed" in params:
            knobs["seed"] = _int_param(params.pop("seed"), "seed")
        # pop every kind-specific parameter BEFORE running anything, so a
        # typo fails instantly instead of after a full store scan
        if kind == "aggregate":
            by = tuple(params.pop("by", "algorithm").split(","))
            percentiles = params.pop("percentiles", "5,50,95").split(",")
        elif kind == "compare":
            arm_a: dict[str, Any] = {}
            arm_b: dict[str, Any] = {}
            for name in list(params):
                if name.startswith("a_"):
                    arm_a[name[2:]] = _arm_value(params.pop(name))
                elif name.startswith("b_"):
                    arm_b[name[2:]] = _arm_value(params.pop(name))
            match_on = tuple(params.pop("match_on", "topology,n,seed").split(","))
        else:
            raise _BadRequest(
                f"unknown analysis kind {kind!r}; expected "
                "'aggregate' or 'compare'"
            )
        if params:
            raise _BadRequest(f"unknown query parameters {sorted(params)}")
        try:
            if kind == "aggregate":
                report = analysis.aggregate(
                    service.store,
                    by=by,
                    percentiles=[float(q) for q in percentiles],
                    filters=filters,
                    **knobs,
                )
            else:
                report = analysis.compare(
                    service.store,
                    arm_a=arm_a,
                    arm_b=arm_b,
                    match_on=match_on,
                    filters=filters,
                    **knobs,
                )
        except (KeyError, ValueError, TypeError) as error:
            message = error.args[0] if error.args else error
            raise _BadRequest(str(message)) from error
        self._send_json(200, report.to_dict())

    def _post_job(self) -> None:
        service = self.server.service
        payload = self._read_body()
        if isinstance(payload, dict) and "adaptive" in payload:
            spec = payload["adaptive"]
            if not isinstance(spec, dict) or "base" not in spec:
                raise _BadRequest(
                    "'adaptive' must be an object with a 'base' scenario"
                )
            try:
                job = service.jobs.submit_adaptive(spec)
            except (KeyError, ValueError, TypeError) as error:
                message = error.args[0] if error.args else error
                raise _BadRequest(str(message)) from error
            self._send_json(202, job.snapshot())
            return
        scenarios = _scenarios_from_payload(payload)
        try:
            job = service.jobs.submit(scenarios)
        except ValueError as error:
            raise _BadRequest(str(error)) from error
        self._send_json(202, job.snapshot())

    # -- the farm (lease protocol) ------------------------------------------

    def _coordinator(self):
        coordinator = self.server.service.coordinator
        if coordinator is None:
            raise _BadRequest(
                "this service runs local workers; start it with "
                "--workers remote to coordinate a farm"
            )
        return coordinator

    @staticmethod
    def _worker_id(body: Any) -> str:
        if not isinstance(body, dict) or not body.get("worker"):
            raise _BadRequest("body must carry the registered 'worker' id")
        return str(body["worker"])

    def _post_worker(self) -> None:
        coordinator = self._coordinator()
        body = self._read_body() or {}
        if not isinstance(body, dict):
            raise _BadRequest("body must be a JSON object")
        self._send_json(201, coordinator.register(str(body.get("name") or "")))

    def _post_lease(self) -> None:
        coordinator = self._coordinator()
        body = self._read_body() or {}
        worker_id = self._worker_id(body)
        max_scenarios = body.get("max_scenarios")
        if max_scenarios is not None:
            try:
                max_scenarios = int(max_scenarios)
            except (TypeError, ValueError):
                raise _BadRequest("max_scenarios must be an integer") from None
        try:
            lease = coordinator.lease(worker_id, max_scenarios=max_scenarios)
        except ValueError as error:
            raise _BadRequest(str(error)) from error
        headers = None
        if lease is not None and lease.get("trace"):
            # propagate the lease's deterministic trace id to the worker
            headers = {TRACE_HEADER: lease["trace"]}
        self._send_json(200, {"lease": lease}, extra_headers=headers)

    def _post_complete(self, lease_id: str) -> None:
        coordinator = self._coordinator()
        body = self._read_body() or {}
        worker_id = self._worker_id(body)
        if "error" in body:
            self._send_json(
                200, coordinator.fail(lease_id, worker_id, str(body["error"]))
            )
            return
        dicts = body.get("reports")
        if not isinstance(dicts, list):
            raise _BadRequest("'reports' must be a list of report dicts")
        try:
            reports = [RunReport.from_dict(data) for data in dicts]
        except (KeyError, ValueError, TypeError) as error:
            message = error.args[0] if error.args else error
            raise _BadRequest(f"malformed report: {message}") from error
        self._send_json(
            200,
            coordinator.complete(
                lease_id,
                worker_id,
                reports,
                executed=int(body.get("executed") or 0),
                cached=int(body.get("cached") or 0),
            ),
        )


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer with a bounded handler pool.

    The stock mixin spawns one thread per connection — fine for a test
    client, pathological for thousands of concurrent report fetches.
    Routing ``process_request`` through a fixed :class:`ThreadPoolExecutor`
    caps handler concurrency; excess connections wait in the accept
    queue instead of exhausting memory.
    """

    daemon_threads = True
    service: "ReproService"

    def __init__(self, address, handler, http_threads: int = DEFAULT_HTTP_THREADS):
        super().__init__(address, handler)
        self._pool = ThreadPoolExecutor(
            max_workers=http_threads, thread_name_prefix="repro-http"
        )

    def process_request(self, request, client_address) -> None:
        self._pool.submit(self.process_request_thread, request, client_address)

    def server_close(self) -> None:
        super().server_close()
        self._pool.shutdown(wait=False, cancel_futures=True)


class ReproService:
    """The store-backed sweep service: HTTP front, job workers behind.

    ``port=0`` binds an ephemeral port (see :attr:`port` after
    :meth:`start`), which is what the tests and the CI smoke use.

    ``remote_workers=True`` swaps the local worker threads for a farm
    :class:`~repro.farm.Coordinator`: jobs become leases that external
    ``repro worker`` processes pull over HTTP. ``shards`` opens (or
    creates) a sharded store backend.

    ``recover=True`` (``repro serve --recover``) rebuilds the
    coordinator from the store's farm journal instead of starting
    clean: jobs a crashed coordinator left running resume under their
    original ids, in-flight leases keep their remaining deadline time,
    and the holders of those leases can heartbeat/complete as if the
    restart never happened. Without ``--recover`` a leftover journal is
    discarded — resuming is explicit, never an accident. ``journal=
    False`` (``--no-journal``) turns write-ahead journaling off
    entirely, which exists so the journal's overhead can be measured.
    """

    def __init__(
        self,
        store_path: str,
        host: str = "127.0.0.1",
        port: int = 8765,
        workers: int = 2,
        processes: Optional[int] = None,
        verbose: bool = False,
        remote_workers: bool = False,
        lease_scenarios: Optional[int] = None,
        lease_timeout: Optional[float] = None,
        shards: Optional[int] = None,
        http_threads: int = DEFAULT_HTTP_THREADS,
        recover: bool = False,
        journal: bool = True,
    ) -> None:
        if recover and not remote_workers:
            raise ValueError(
                "--recover replays the farm journal; it requires "
                "--workers remote"
            )
        # the service is a long-lived observed process: metrics on by
        # default (REPRO_TELEMETRY=0 opts out); simulation hot paths in
        # worker *processes* are unaffected — they have their own registry
        if os.environ.get("REPRO_TELEMETRY", "") != "0":
            _METRICS.enable()
        self.store = ResultStore(store_path, shards=shards)
        self.coordinator = None
        if remote_workers:
            from repro.farm import Coordinator
            from repro.farm.coordinator import (
                DEFAULT_LEASE_SCENARIOS,
                DEFAULT_LEASE_TIMEOUT,
            )

            if recover:
                self.coordinator = Coordinator.recover(
                    self.store,
                    lease_scenarios=lease_scenarios or DEFAULT_LEASE_SCENARIOS,
                    lease_timeout=lease_timeout or DEFAULT_LEASE_TIMEOUT,
                )
            else:
                self.coordinator = Coordinator(
                    self.store,
                    lease_scenarios=lease_scenarios or DEFAULT_LEASE_SCENARIOS,
                    lease_timeout=lease_timeout or DEFAULT_LEASE_TIMEOUT,
                    journal=journal,
                )
        self.jobs = JobManager(
            self.store,
            workers=workers,
            processes=processes,
            coordinator=self.coordinator,
        )
        self.verbose = verbose
        self._server = _Server((host, port), _Handler, http_threads=http_threads)
        self._server.service = self
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "ReproService":
        """Serve on a daemon thread (for tests and embedding); returns self."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop the HTTP loop, the job workers, and close the store."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.jobs.shutdown()
        self.store.close()

    def __enter__(self) -> "ReproService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


def serve(
    store_path: str,
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 2,
    processes: Optional[int] = None,
    remote_workers: bool = False,
    lease_scenarios: Optional[int] = None,
    lease_timeout: Optional[float] = None,
    shards: Optional[int] = None,
    recover: bool = False,
    journal: bool = True,
) -> int:
    """Run the service until interrupted (the ``repro serve`` command)."""
    service = ReproService(
        store_path,
        host=host,
        port=port,
        workers=workers,
        processes=processes,
        verbose=True,
        remote_workers=remote_workers,
        lease_scenarios=lease_scenarios,
        lease_timeout=lease_timeout,
        shards=shards,
        recover=recover,
        journal=journal,
    )
    mode = (
        "coordinating remote workers (repro worker --connect "
        f"{service.url})"
        if remote_workers
        else f"{workers} workers"
    )
    print(
        f"repro service on {service.url} "
        f"(store: {store_path}, {len(service.store)} reports; {mode})"
    )
    if service.coordinator is not None and service.coordinator.recovered:
        summary = service.coordinator.recovered
        print(
            f"recovered from journal: {summary['jobs']} job(s), "
            f"{summary['leases']} in-flight lease(s), "
            f"{summary['pending_scenarios']} scenario(s) requeued"
        )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.shutdown()
    return 0
