"""The unified scenario/runner API: declare a run, execute it anywhere.

One declarative entry point for every broadcast algorithm in the
library::

    from repro.runner import Scenario, run

    report = run(Scenario(algorithm="decay", topology="path",
                          topology_params={"n": 64}, seed=1))
    print(report.rounds, report.success)

The pieces:

* :mod:`repro.runner.registry` — the :class:`BroadcastAlgorithm`
  registry wrapping every broadcast entry point behind one interface;
* :mod:`repro.runner.scenario` — the frozen :class:`Scenario` run
  description with ``to_dict``/``from_dict``;
* :mod:`repro.runner.report` — canonical :class:`RunReport` records;
* :mod:`repro.runner.runner` — :func:`run`, :func:`run_batch` and
  :func:`sweep` (parallel seed/parameter grids).
"""

from repro.runner.registry import (
    AlgorithmResult,
    BroadcastAlgorithm,
    Param,
    all_algorithms,
    get_algorithm,
    register_algorithm,
)
from repro.runner.report import RunReport
from repro.runner.runner import expand_grid, run, run_batch, sweep
from repro.runner.scenario import DEFAULT_TOPOLOGY_SIZE, Scenario

__all__ = [
    "AlgorithmResult",
    "BroadcastAlgorithm",
    "DEFAULT_TOPOLOGY_SIZE",
    "Param",
    "RunReport",
    "Scenario",
    "all_algorithms",
    "expand_grid",
    "get_algorithm",
    "register_algorithm",
    "run",
    "run_batch",
    "sweep",
]
