"""Execute scenarios: single runs, batches, and parallel sweeps.

:func:`run` is the one entry point every workload goes through; it looks
the algorithm up in the registry, materializes the topology, drives the
run, and wraps the normalized outcome in a :class:`RunReport`.

:func:`run_batch` fans a list of scenarios out across a
``multiprocessing`` pool. Scenarios are self-contained and seeded, so
results are independent of worker scheduling — parallel batches return
exactly what a serial loop would (order-preserving ``pool.map``), which
the test suite checks byte-for-byte.

:func:`sweep` expands a base scenario over a seed grid and/or a
parameter grid (Cartesian product) and runs the batch.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.runner.registry import get_algorithm
from repro.runner.report import RunReport
from repro.runner.scenario import Scenario

__all__ = ["run", "run_batch", "sweep", "expand_grid"]

#: grid keys that address Scenario fields rather than algorithm params
_SCENARIO_FIELD_KEYS = frozenset(
    {"algorithm", "topology", "faults", "adversary", "max_rounds"}
)


def run(scenario: Scenario) -> RunReport:
    """Run one scenario to completion and report it."""
    algorithm = get_algorithm(scenario.algorithm)
    network = scenario.build_network()
    start = time.perf_counter()
    result = algorithm.run(
        network,
        scenario.faults,
        scenario.seed,
        max_rounds=scenario.max_rounds,
        params=scenario.params,
        adversary=scenario.adversary,
    )
    elapsed = time.perf_counter() - start
    return RunReport(
        scenario=scenario.describe(),
        algorithm=scenario.algorithm,
        success=result.success,
        rounds=result.rounds,
        informed=result.informed,
        total=result.total,
        counters=result.counters,
        extras=result.extras,
        network_n=network.n,
        network_name=network.name,
        wall_time_s=elapsed,
    )


def run_batch(
    scenarios: Iterable[Scenario],
    processes: Optional[int] = None,
) -> list[RunReport]:
    """Run scenarios, optionally across a process pool.

    ``processes=None`` (or ``<= 1``) runs serially; otherwise a pool of
    that many workers maps :func:`run` over the batch. Results come back
    in input order either way, and — because each scenario carries its
    own seed — with identical contents.
    """
    batch = list(scenarios)
    if processes is None or processes <= 1 or len(batch) <= 1:
        return [run(scenario) for scenario in batch]
    # fork shares the imported library with the workers; fall back to the
    # platform default where fork does not exist
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    with context.Pool(min(processes, len(batch))) as pool:
        return pool.map(run, batch)


def expand_grid(
    base: Scenario,
    seeds: Optional[Iterable[int]] = None,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
) -> list[Scenario]:
    """Expand ``base`` over a seed list and a parameter grid.

    Grid keys address, in order of precedence: the Scenario fields
    ``algorithm``, ``topology``, ``faults``, ``adversary``,
    ``max_rounds``; the topology
    size ``n`` (merged into ``topology_params``); anything else is an
    algorithm parameter (merged into ``params``). The expansion is the
    Cartesian product of all grid axes, with seeds varying fastest, in a
    deterministic order.
    """
    seed_list = [base.seed] if seeds is None else [int(s) for s in seeds]
    if not seed_list:
        raise ValueError("seeds must be non-empty")
    grid = dict(grid or {})
    if "seed" in grid:
        raise ValueError("vary seeds via the `seeds` argument, not the grid")

    keys = list(grid)
    scenarios: list[Scenario] = []
    for combo in itertools.product(*(grid[key] for key in keys)):
        changes: dict[str, Any] = {}
        params = dict(base.params)
        topology_params = dict(base.topology_params)
        for key, value in zip(keys, combo):
            if key in _SCENARIO_FIELD_KEYS:
                changes[key] = value
            elif key == "n":
                topology_params["n"] = value
            else:
                params[key] = value
        changes["params"] = params
        changes["topology_params"] = topology_params
        for seed in seed_list:
            scenarios.append(base.with_(seed=seed, **changes))
    return scenarios


def sweep(
    base: Scenario,
    seeds: Optional[Iterable[int]] = None,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    processes: Optional[int] = None,
) -> list[RunReport]:
    """Expand ``base`` (see :func:`expand_grid`) and run the batch."""
    return run_batch(expand_grid(base, seeds=seeds, grid=grid), processes=processes)
