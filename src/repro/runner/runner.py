"""Execute scenarios: single runs, batches, and parallel sweeps.

:func:`run` is the one entry point every workload goes through; it looks
the algorithm up in the registry, materializes the topology, drives the
run, and wraps the normalized outcome in a :class:`RunReport`.

:func:`run_batch` fans a list of scenarios out across a
``multiprocessing`` pool. Scenarios are self-contained and seeded, so
results are independent of worker scheduling — parallel batches return
exactly what a serial loop would (order-preserving ``pool.map``), which
the test suite checks byte-for-byte.

:func:`sweep` expands a base scenario over a seed grid and/or a
parameter grid (Cartesian product) and runs the batch.

Both accept a ``store`` (a :class:`~repro.store.ResultStore`): fresh
reports are recorded, and with ``reuse=True`` scenarios whose cache key
is already present skip execution entirely — the stored canonical report
is returned instead, byte-identical to a fresh run by the determinism
contract. That is what makes ``repro sweep --store PATH --resume``
restart an interrupted thousand-scenario sweep for free.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Sequence

from repro.runner.registry import get_algorithm
from repro.runner.report import RunReport
from repro.runner.scenario import Scenario
from repro.telemetry.metrics import METRICS as _METRICS
from repro.telemetry.tracing import TRACER as _TRACER
from repro.telemetry.tracing import trace_id_for_key
from repro.timeline.artifact import Timeline
from repro.timeline.capture import capture_timeline

if TYPE_CHECKING:  # pragma: no cover - repro.store imports the runner
    from repro.store import ResultStore

__all__ = ["run", "run_batch", "sweep", "expand_grid"]

#: grid keys that address Scenario fields rather than algorithm params
_SCENARIO_FIELD_KEYS = frozenset(
    {
        "algorithm",
        "topology",
        "faults",
        "adversary",
        "max_rounds",
        "channel",
        "channel_params",
    }
)

_M_RUNS = _METRICS.counter("repro_runner_runs_total", "scenarios executed")
_M_RUN_SECONDS = _METRICS.histogram(
    "repro_runner_run_seconds", "single-scenario wall time"
)


def run(scenario: Scenario) -> RunReport:
    """Run one scenario to completion and report it.

    When the scenario carries a ``timeline`` config, the run executes
    inside an armed :func:`~repro.timeline.capture.capture_timeline`
    context: the simulator binds a flight recorder to its channel, and
    the frozen :class:`~repro.timeline.Timeline` artifact is attached to
    the report (outside its canonical bytes). Recording reads the same
    counters the run maintains anyway — the simulated outcome is
    unchanged, which the timeline test suite checks byte-for-byte.
    """
    algorithm = get_algorithm(scenario.algorithm)
    network = scenario.build_network()
    timeline_payload: "dict | None" = None
    start = time.perf_counter()
    if scenario.timeline is not None:
        with capture_timeline(scenario.timeline) as capture:
            result = algorithm.run(
                network,
                scenario.faults,
                scenario.seed,
                max_rounds=scenario.max_rounds,
                params=scenario.params,
                adversary=scenario.adversary,
                channel=scenario.channel_config(),
            )
        if capture.recorder is not None:
            timeline_payload = Timeline.from_recorder(
                capture.recorder
            ).to_dict()
    else:
        result = algorithm.run(
            network,
            scenario.faults,
            scenario.seed,
            max_rounds=scenario.max_rounds,
            params=scenario.params,
            adversary=scenario.adversary,
            channel=scenario.channel_config(),
        )
    elapsed = time.perf_counter() - start
    key = scenario.cache_key() if scenario.cacheable else ""
    if _METRICS.enabled:
        _M_RUNS.inc()
        _M_RUN_SECONDS.observe(elapsed)
    if _TRACER.enabled and key:
        _TRACER.record_span(
            "runner.run",
            trace_id_for_key(key),
            elapsed,
            algorithm=scenario.algorithm,
            n=network.n,
            seed=scenario.seed,
            rounds=result.rounds,
            success=result.success,
        )
    return RunReport(
        scenario=scenario.describe(),
        algorithm=scenario.algorithm,
        success=result.success,
        rounds=result.rounds,
        informed=result.informed,
        total=result.total,
        counters=result.counters,
        extras=result.extras,
        network_n=network.n,
        network_name=network.name,
        wall_time_s=elapsed,
        cache_key=key,
        timeline=timeline_payload,
    )


def _execute(batch: Sequence[Scenario], processes: Optional[int]) -> list[RunReport]:
    """Map :func:`run` over ``batch``, with a pool only when it pays.

    The pool is skipped entirely when one worker (or fewer scenarios than
    two) is requested — pool creation is pure overhead for serial work,
    and after a cache filter most resumed sweeps are exactly that.
    """
    if processes is None or processes <= 1 or len(batch) <= 1:
        return [run(scenario) for scenario in batch]
    # fork shares the imported library with the workers; fall back to the
    # platform default where fork does not exist
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    with context.Pool(min(processes, len(batch))) as pool:
        return pool.map(run, batch)


def run_batch(
    scenarios: Iterable[Scenario],
    processes: Optional[int] = None,
    store: "Optional[ResultStore]" = None,
    reuse: bool = True,
) -> list[RunReport]:
    """Run scenarios, optionally across a process pool and a result store.

    ``processes=None`` (or ``<= 1``) runs serially; otherwise a pool of
    that many workers maps :func:`run` over the scenarios that actually
    execute. Results come back in input order either way, and — because
    each scenario carries its own seed — with identical contents.

    With a ``store``, fresh reports are recorded under their scenario
    cache keys, and when ``reuse`` is true (the default) scenarios whose
    key is already stored skip execution: the stored canonical report is
    returned in their place, byte-identical to what a fresh run would
    produce. ``reuse=False`` recomputes everything and refreshes the
    store. Non-serializable scenarios (explicit networks) always execute
    and are never stored.
    """
    batch = list(scenarios)
    reports: list[Optional[RunReport]] = [None] * len(batch)
    pending: list[int] = []
    if store is not None and reuse:
        for index, scenario in enumerate(batch):
            cached = (
                store.get(scenario.cache_key()) if scenario.cacheable else None
            )
            if cached is not None:
                reports[index] = cached
            else:
                pending.append(index)
    else:
        pending = list(range(len(batch)))

    fresh = _execute([batch[index] for index in pending], processes)
    if store is not None and fresh:
        store.put_many(
            [report for report in fresh if report.cache_key], replace=not reuse
        )
    for index, report in zip(pending, fresh):
        reports[index] = report
    return reports  # type: ignore[return-value]  # every slot is filled


def expand_grid(
    base: Scenario,
    seeds: Optional[Iterable[int]] = None,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
) -> list[Scenario]:
    """Expand ``base`` over a seed list and a parameter grid.

    Grid keys address, in order of precedence: the Scenario fields
    ``algorithm``, ``topology``, ``faults``, ``adversary``,
    ``max_rounds``, ``channel``, ``channel_params``; the topology
    size ``n`` (merged into ``topology_params``); anything else is an
    algorithm parameter (merged into ``params``). The expansion is the
    Cartesian product of all grid axes, with seeds varying fastest, in a
    deterministic order.
    """
    seed_list = [base.seed] if seeds is None else [int(s) for s in seeds]
    if not seed_list:
        raise ValueError("seeds must be non-empty")
    grid = dict(grid or {})
    if "seed" in grid:
        raise ValueError("vary seeds via the `seeds` argument, not the grid")

    keys = list(grid)
    scenarios: list[Scenario] = []
    for combo in itertools.product(*(grid[key] for key in keys)):
        changes: dict[str, Any] = {}
        params = dict(base.params)
        topology_params = dict(base.topology_params)
        for key, value in zip(keys, combo):
            if key in _SCENARIO_FIELD_KEYS:
                changes[key] = value
            elif key == "n":
                topology_params["n"] = value
            else:
                params[key] = value
        changes["params"] = params
        changes["topology_params"] = topology_params
        for seed in seed_list:
            scenarios.append(base.with_(seed=seed, **changes))
    return scenarios


def sweep(
    base: Scenario,
    seeds: Optional[Iterable[int]] = None,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    processes: Optional[int] = None,
    store: "Optional[ResultStore]" = None,
    reuse: bool = True,
) -> list[RunReport]:
    """Expand ``base`` (see :func:`expand_grid`) and run the batch."""
    return run_batch(
        expand_grid(base, seeds=seeds, grid=grid),
        processes=processes,
        store=store,
        reuse=reuse,
    )
