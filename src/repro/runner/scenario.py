"""The declarative run description: one frozen :class:`Scenario` per run.

A scenario bundles everything a broadcast run depends on — topology spec,
algorithm name plus parameters, fault configuration, seed, and round
budget — so that examples, experiments, benchmarks, and the CLI all
describe work the same way and :func:`repro.runner.run` can execute it
anywhere (including in a worker process of a ``run_batch`` pool).

The topology is either a registry family name (``"path"``, ``"gnp"``,
...) with ``topology_params`` (``n`` and optionally a topology ``seed``
pinned independently of the scenario seed), or an explicit, pre-built
:class:`~repro.core.network.RadioNetwork`. Only named topologies survive
``to_dict``/``from_dict``; explicit networks still run but serialize as a
descriptive placeholder.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from repro._version import __version__
from repro.adversary.registry import get_adversary_type
from repro.core.faults import AdversaryConfig, FaultConfig, FaultModel
from repro.core.network import RadioNetwork
from repro.mac.config import MacConfig, make_channel_config
from repro.runner.registry import get_algorithm
from repro.timeline.config import TimelineConfig
from repro.topologies.registry import TOPOLOGY_FAMILIES, make_topology

__all__ = ["Scenario", "DEFAULT_TOPOLOGY_SIZE", "CACHE_KEY_SCHEMA"]

#: nodes used when a named topology omits ``n``
DEFAULT_TOPOLOGY_SIZE = 32

#: bump to invalidate every content-addressed cache entry when the report
#: schema (not the code version) changes incompatibly
CACHE_KEY_SCHEMA = 1

_TOPOLOGY_PARAM_KEYS = frozenset({"n", "seed"})


@dataclass(frozen=True)
class Scenario:
    """A fully-specified, reproducible broadcast run.

    Parameters
    ----------
    algorithm:
        Registered algorithm name (see :func:`repro.all_algorithms`).
    topology:
        Topology family name or an explicit :class:`RadioNetwork`.
    topology_params:
        For named topologies: ``n`` (size, default
        :data:`DEFAULT_TOPOLOGY_SIZE`) and optional ``seed`` (pin random
        families independently of the scenario seed).
    params:
        Algorithm parameters; must be declared by the algorithm.
    faults:
        The fault model and probability.
    adversary:
        Optional :class:`~repro.core.faults.AdversaryConfig` replacing
        the i.i.d. fault coins with a registered adversary model;
        mutually exclusive with a non-faultless ``faults``. The ``iid``
        kind is canonicalized back into ``faults`` on construction, so
        ``Scenario(adversary=AdversaryConfig("iid", {...}))`` and the
        equivalent ``Scenario(faults=FaultConfig(...))`` are the *same*
        scenario and produce byte-identical reports.
    seed:
        Top-level RNG seed; the whole run reproduces from it.
    max_rounds:
        Round budget override (``None``: the algorithm's own bound).
    timeline:
        Optional :class:`~repro.timeline.TimelineConfig`: opt the run
        into the per-round flight recorder. Recording never changes the
        simulation (same RNG streams, same report contents) but the
        config does participate in :meth:`cache_key` — a stored
        timeline-less report must never satisfy a request that asked
        for the timeline sidecar. Only channel-based algorithms record.
    channel:
        Channel kind: ``"default"`` (the paper's collision channel) or
        ``"contention"`` (the CSMA/CA MAC of :mod:`repro.mac`). Only
        channel-based algorithms accept the contention channel.
    channel_params:
        Knobs for a non-default channel (see
        :meth:`~repro.mac.config.MacConfig.to_dict`); must be empty for
        the default channel.
    """

    algorithm: str
    topology: Union[str, RadioNetwork] = "path"
    topology_params: Mapping[str, Any] = field(default_factory=dict)
    params: Mapping[str, Any] = field(default_factory=dict)
    faults: FaultConfig = field(default_factory=FaultConfig.faultless)
    adversary: Optional[AdversaryConfig] = None
    seed: int = 0
    max_rounds: Optional[int] = None
    timeline: Optional[TimelineConfig] = None
    channel: str = "default"
    channel_params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # normalize the mappings to plain dicts (picklable, JSON-friendly)
        object.__setattr__(self, "topology_params", dict(self.topology_params))
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "channel_params", dict(self.channel_params))

        algorithm = get_algorithm(self.algorithm)  # raises KeyError if unknown
        algorithm.validate_params(self.params)

        # validates kind and params eagerly (raises on unknown keys); the
        # built config is re-derived on demand by channel_config()
        make_channel_config(self.channel, self.channel_params)
        if self.channel != "default" and not algorithm.supports_adversary:
            raise ValueError(
                f"algorithm {self.algorithm!r} does not run on the "
                "collision channel, so a contention MAC does not apply"
            )

        if isinstance(self.topology, str):
            if self.topology not in TOPOLOGY_FAMILIES:
                known = ", ".join(sorted(TOPOLOGY_FAMILIES))
                raise ValueError(
                    f"unknown topology family {self.topology!r}; known: {known}"
                )
            unknown = set(self.topology_params) - _TOPOLOGY_PARAM_KEYS
            if unknown:
                raise ValueError(
                    f"unknown topology_params {sorted(unknown)}; "
                    f"allowed: {sorted(_TOPOLOGY_PARAM_KEYS)}"
                )
        elif isinstance(self.topology, RadioNetwork):
            if self.topology_params:
                raise ValueError(
                    "topology_params only apply to named topology families, "
                    "not explicit RadioNetwork instances"
                )
        else:
            raise TypeError(
                "topology must be a family name or a RadioNetwork, got "
                f"{type(self.topology).__name__}"
            )

        if not isinstance(self.faults, FaultConfig):
            raise TypeError(
                f"faults must be a FaultConfig, got {type(self.faults).__name__}"
            )
        if self.adversary is not None:
            self._normalize_adversary(algorithm)
        if self.timeline is not None:
            if not isinstance(self.timeline, TimelineConfig):
                raise TypeError(
                    "timeline must be a TimelineConfig, got "
                    f"{type(self.timeline).__name__}"
                )
            # the flight recorder lives in the channel round epilogue;
            # supports_adversary marks exactly the channel-based kinds
            if not algorithm.supports_adversary:
                raise ValueError(
                    f"algorithm {self.algorithm!r} does not run on the "
                    "collision channel, so it cannot record a timeline"
                )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise TypeError(f"seed must be an int, got {type(self.seed).__name__}")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")

    def _normalize_adversary(self, algorithm) -> None:
        """Validate the adversary config; fold ``iid`` into ``faults``."""
        adversary = self.adversary
        if not isinstance(adversary, AdversaryConfig):
            raise TypeError(
                "adversary must be an AdversaryConfig, got "
                f"{type(adversary).__name__}"
            )
        if not self.faults.is_faultless:
            raise ValueError(
                "pass either faults or an adversary, not both: the iid "
                "adversary subsumes FaultConfig"
            )
        kind = get_adversary_type(adversary.kind)  # raises KeyError if unknown
        kind.validate_params(adversary.params)
        if adversary.kind == "iid":
            # the legacy model spelled as an adversary: canonicalize so both
            # spellings are one scenario (and one canonical report)
            merged = kind.declared()
            merged.update(adversary.params)
            faults = FaultConfig(FaultModel(str(merged["model"])), float(merged["p"]))
            object.__setattr__(self, "faults", faults)
            object.__setattr__(self, "adversary", None)
            return
        if not algorithm.supports_adversary:
            raise ValueError(
                f"algorithm {self.algorithm!r} does not support adversary "
                "models (only channel-based algorithms do)"
            )

    # -- derived views ------------------------------------------------------

    def channel_config(self) -> Optional[MacConfig]:
        """The built channel configuration (``None`` for the default)."""
        return make_channel_config(self.channel, self.channel_params)

    def build_network(self) -> RadioNetwork:
        """Materialize the topology (explicit network: returned as-is)."""
        if isinstance(self.topology, RadioNetwork):
            return self.topology
        n = int(self.topology_params.get("n", DEFAULT_TOPOLOGY_SIZE))
        seed = int(self.topology_params.get("seed", self.seed))
        return make_topology(self.topology, n, seed=seed)

    def with_(self, **changes: Any) -> "Scenario":
        """A copy with the given fields replaced (sweep helper)."""
        return dataclasses.replace(self, **changes)

    @property
    def cacheable(self) -> bool:
        """Whether the scenario serializes (and therefore has a cache key).

        Scenarios holding an explicit :class:`RadioNetwork` are not
        reconstructible from their dict form, so they cannot be
        content-addressed.
        """
        return isinstance(self.topology, str)

    def cache_key(self) -> str:
        """Content address: SHA-256 over the canonical scenario dict.

        The digest also covers the library version and
        :data:`CACHE_KEY_SCHEMA`, so a store never serves reports computed
        by a different code or schema revision. Because construction
        canonicalizes equivalent spellings (``iid`` adversary vs.
        ``faults``), equal scenarios share one key — and the runner's
        determinism contract (same scenario, byte-identical canonical
        report) makes the key a valid address for the report itself.
        """
        payload = json.dumps(
            {
                "schema": CACHE_KEY_SCHEMA,
                "version": __version__,
                "scenario": self.to_dict(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form; raises for explicit networks."""
        if isinstance(self.topology, RadioNetwork):
            raise ValueError(
                "scenarios holding an explicit RadioNetwork cannot be "
                "serialized; use a named topology family"
            )
        return self._as_dict(self.topology)

    def describe(self) -> dict[str, Any]:
        """Like :meth:`to_dict` but never fails: explicit networks are
        summarized by name (not reconstructible via :meth:`from_dict`)."""
        if isinstance(self.topology, RadioNetwork):
            return self._as_dict(f"<explicit:{self.topology.name}>")
        return self.to_dict()

    def _as_dict(self, topology: str) -> dict[str, Any]:
        data = {
            "algorithm": self.algorithm,
            "topology": topology,
            "topology_params": dict(self.topology_params),
            "params": dict(self.params),
            "faults": {"model": str(self.faults.model), "p": self.faults.p},
            "seed": self.seed,
            "max_rounds": self.max_rounds,
        }
        # emitted only when set: fault-coin scenarios keep the exact dict
        # (and canonical report bytes) they had before adversaries existed
        if self.adversary is not None:
            data["adversary"] = self.adversary.to_dict()
        # same rule: recorder-less scenarios keep their pre-timeline bytes
        if self.timeline is not None:
            data["timeline"] = self.timeline.to_dict()
        # same rule again: default-channel scenarios keep their pre-MAC
        # bytes (and cache keys)
        if self.channel != "default":
            data["channel"] = self.channel
            data["channel_params"] = dict(self.channel_params)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`."""
        faults = FaultConfig.from_dict(data.get("faults", {}))
        adversary_data = data.get("adversary")
        adversary = (
            AdversaryConfig.from_dict(adversary_data)
            if adversary_data is not None
            else None
        )
        timeline_data = data.get("timeline")
        timeline = (
            TimelineConfig.from_dict(timeline_data)
            if timeline_data is not None
            else None
        )
        return cls(
            algorithm=data["algorithm"],
            topology=data.get("topology", "path"),
            topology_params=data.get("topology_params", {}),
            params=data.get("params", {}),
            faults=faults,
            adversary=adversary,
            seed=int(data.get("seed", 0)),
            max_rounds=data.get("max_rounds"),
            timeline=timeline,
            channel=data.get("channel", "default"),
            channel_params=data.get("channel_params", {}),
        )
