"""A registry of named broadcast algorithms behind one uniform interface.

Mirrors :mod:`repro.topologies.registry` and the experiment registry: the
CLI, the examples, and :mod:`repro.runner` look algorithms up by name
instead of importing per-algorithm entry points. Each entry wraps one of
the library's broadcast functions behind an adapter with the signature::

    adapter(network, faults, seed, max_rounds, params) -> AlgorithmResult

so "which protocol under which fault model" becomes data rather than
code. The wrapped functions themselves are unchanged and remain public —
``decay_broadcast`` and friends are now thin compatibility entry points
over the same implementations the registry drives.

Outcome normalization: every adapter reduces its native outcome type
(:class:`~repro.algorithms.base.BroadcastOutcome`, ``MultiMessageOutcome``,
``StarOutcome``, ``SingleLinkOutcome``) to an :class:`AlgorithmResult`
with the shared fields (success, rounds, informed, total, counters) plus
an ``extras`` dict carrying whatever is algorithm-specific — all of it
JSON-serializable scalars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.algorithms.base import BroadcastOutcome
from repro.algorithms.decay import decay_broadcast
from repro.algorithms.fastbc import fastbc_broadcast
from repro.algorithms.multi.rlnc_broadcast import (
    MultiMessageOutcome,
    rlnc_decay_broadcast,
    rlnc_dense_wave_broadcast,
    rlnc_robust_fastbc_broadcast,
)
from repro.algorithms.multi.single_link import (
    single_link_adaptive_routing,
    single_link_coding,
    single_link_nonadaptive_routing,
)
from repro.algorithms.multi.star import star_adaptive_routing, star_rs_coding
from repro.algorithms.repetition import repeated_fastbc_broadcast
from repro.algorithms.robust_fastbc import (
    DEFAULT_ROUND_MULTIPLIER,
    robust_fastbc_broadcast,
)
from repro.core.faults import AdversaryConfig, FaultConfig
from repro.core.network import RadioNetwork

__all__ = [
    "AlgorithmResult",
    "BroadcastAlgorithm",
    "Param",
    "all_algorithms",
    "get_algorithm",
    "register_algorithm",
]


@dataclass(frozen=True)
class AlgorithmResult:
    """The normalized outcome every registered algorithm produces.

    ``informed``/``total`` count completed receivers (nodes, leaves, or —
    on a single link — the one receiver). ``counters`` is the channel's
    :meth:`~repro.core.trace.ChannelCounters.as_dict` when the algorithm
    runs on the real channel, else empty. ``extras`` holds
    algorithm-specific scalars (``k``, reception spreads, ...).
    """

    success: bool
    rounds: int
    informed: int
    total: int
    counters: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Param:
    """One declared algorithm parameter (name, default, one-line doc)."""

    name: str
    default: Any
    doc: str = ""


Adapter = Callable[
    [RadioNetwork, FaultConfig, int, Optional[int], dict,
     Optional[AdversaryConfig], Optional[Any]],
    AlgorithmResult,
]


@dataclass(frozen=True)
class BroadcastAlgorithm:
    """A registered broadcast algorithm.

    ``kind`` is one of ``"single"`` (one message over the full radio
    network), ``"multi"`` (k messages over the full network), ``"star"``
    (source-to-leaves schedules; the scenario topology sizes the star), or
    ``"link"`` (two-node schedules; only the fault probability matters).
    ``default_topology`` names a registry family the algorithm is happy
    to run on out of the box. ``supports_adversary`` is True for the
    algorithms that run on the real collision channel and therefore
    accept any registered adversary model; the star/link schedule
    simulations only know the i.i.d. fault probability.
    """

    name: str
    kind: str
    summary: str
    params: tuple[Param, ...] = ()
    default_topology: str = "path"
    supports_adversary: bool = False
    adapter: Adapter = None  # type: ignore[assignment]

    def declared(self) -> dict[str, Any]:
        """Declared parameters as a name -> default mapping."""
        return {p.name: p.default for p in self.params}

    def validate_params(self, params: Mapping[str, Any]) -> None:
        """Reject parameters this algorithm does not declare."""
        unknown = [key for key in params if key not in self.declared()]
        if unknown:
            known = ", ".join(sorted(self.declared())) or "(none)"
            raise ValueError(
                f"algorithm {self.name!r} got unknown parameters "
                f"{sorted(unknown)}; declared: {known}"
            )

    def run(
        self,
        network: RadioNetwork,
        faults: FaultConfig,
        seed: int,
        max_rounds: Optional[int] = None,
        params: Optional[Mapping[str, Any]] = None,
        adversary: Optional[AdversaryConfig] = None,
        channel=None,
    ) -> AlgorithmResult:
        """Run with declared defaults merged under ``params``."""
        if adversary is not None and not self.supports_adversary:
            raise ValueError(
                f"algorithm {self.name!r} does not support adversary models "
                "(only channel-based algorithms do); drop --adversary or "
                "pick a 'single'/'multi' algorithm"
            )
        if channel is not None and not self.supports_adversary:
            raise ValueError(
                f"algorithm {self.name!r} does not run on the collision "
                "channel, so a contention MAC does not apply; use the "
                "default channel or pick a 'single'/'multi' algorithm"
            )
        merged = self.declared()
        if params:
            self.validate_params(params)
            merged.update(params)
        return self.adapter(
            network, faults, seed, max_rounds, merged, adversary, channel
        )


_REGISTRY: dict[str, BroadcastAlgorithm] = {}


def register_algorithm(
    name: str,
    *,
    kind: str,
    summary: str,
    params: tuple[Param, ...] = (),
    default_topology: str = "path",
    supports_adversary: bool = False,
) -> Callable[[Adapter], BroadcastAlgorithm]:
    """Decorator registering an adapter as a named broadcast algorithm."""

    def decorator(adapter: Adapter) -> BroadcastAlgorithm:
        if name in _REGISTRY:
            raise ValueError(f"algorithm {name!r} already registered")
        algorithm = BroadcastAlgorithm(
            name=name,
            kind=kind,
            summary=summary,
            params=params,
            default_topology=default_topology,
            supports_adversary=supports_adversary,
            adapter=adapter,
        )
        _REGISTRY[name] = algorithm
        return algorithm

    return decorator


def get_algorithm(name: str) -> BroadcastAlgorithm:
    """Look up a registered algorithm by name (e.g. ``"decay"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None


def all_algorithms() -> list[BroadcastAlgorithm]:
    """All registered algorithms in name order."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# -- outcome normalization --------------------------------------------------


def _from_single(outcome: BroadcastOutcome) -> AlgorithmResult:
    return AlgorithmResult(
        success=outcome.success,
        rounds=outcome.rounds,
        informed=outcome.informed,
        total=outcome.total,
        counters=outcome.counters.as_dict(),
    )


def _from_multi(outcome: MultiMessageOutcome) -> AlgorithmResult:
    return AlgorithmResult(
        success=outcome.success,
        rounds=outcome.rounds,
        informed=outcome.completed_nodes,
        total=outcome.total_nodes,
        counters=outcome.counters.as_dict(),
        extras={
            "k": outcome.k,
            "rounds_per_message": outcome.rounds_per_message,
        },
    )


# -- single-message algorithms ----------------------------------------------


@register_algorithm(
    "decay",
    kind="single",
    supports_adversary=True,
    summary="Decay broadcast (Lemma 9): fault-robust O(log n/(1-p) (D + log n))",
)
def _decay(network, faults, seed, max_rounds, params, adversary=None, channel=None):
    return _from_single(
        decay_broadcast(
            network, faults=faults, rng=seed, max_rounds=max_rounds,
            adversary=adversary, channel=channel,
        )
    )


@register_algorithm(
    "fastbc",
    kind="single",
    supports_adversary=True,
    summary="FASTBC (Lemma 10): fast when faultless, degrades under faults",
    params=(
        Param("decay_interleave", True, "interleave Decay rounds with the wave"),
    ),
)
def _fastbc(network, faults, seed, max_rounds, params, adversary=None, channel=None):
    return _from_single(
        fastbc_broadcast(
            network,
            faults=faults,
            rng=seed,
            max_rounds=max_rounds,
            decay_interleave=params["decay_interleave"],
            adversary=adversary,
            channel=channel,
        )
    )


@register_algorithm(
    "robust_fastbc",
    kind="single",
    supports_adversary=True,
    summary="Robust FASTBC (Theorem 11): blocks absorb faults, keeps the wave",
    params=(
        Param("block", None, "block size override (default: Theta(log log n))"),
        Param("round_multiplier", DEFAULT_ROUND_MULTIPLIER, "rounds per block step"),
        Param("decay_interleave", True, "interleave Decay rounds with the wave"),
    ),
)
def _robust_fastbc(
    network, faults, seed, max_rounds, params, adversary=None, channel=None
):
    return _from_single(
        robust_fastbc_broadcast(
            network,
            faults=faults,
            rng=seed,
            max_rounds=max_rounds,
            block=params["block"],
            round_multiplier=params["round_multiplier"],
            decay_interleave=params["decay_interleave"],
            adversary=adversary,
            channel=channel,
        )
    )


@register_algorithm(
    "repeated_fastbc",
    kind="single",
    supports_adversary=True,
    summary="Repetition baseline: FASTBC with every round repeated `repeat` times",
    params=(Param("repeat", 2, "repetition factor per wave round"),),
)
def _repeated_fastbc(
    network, faults, seed, max_rounds, params, adversary=None, channel=None
):
    return _from_single(
        repeated_fastbc_broadcast(
            network,
            params["repeat"],
            faults=faults,
            rng=seed,
            max_rounds=max_rounds,
            adversary=adversary,
            channel=channel,
        )
    )


# -- multi-message (RLNC gossip) algorithms ----------------------------------


@register_algorithm(
    "rlnc_decay",
    kind="multi",
    supports_adversary=True,
    summary="k-message RLNC over the Decay pattern (Lemma 12)",
    params=(
        Param("k", 4, "number of messages"),
        Param("payload_length", 0, "payload bytes per message (0: headers only)"),
    ),
)
def _rlnc_decay(
    network, faults, seed, max_rounds, params, adversary=None, channel=None
):
    return _from_multi(
        rlnc_decay_broadcast(
            network,
            params["k"],
            faults=faults,
            rng=seed,
            payload_length=params["payload_length"],
            max_rounds=max_rounds,
            adversary=adversary,
            channel=channel,
        )
    )


@register_algorithm(
    "rlnc_robust_fastbc",
    kind="multi",
    supports_adversary=True,
    summary="k-message RLNC over Robust FASTBC waves (Lemma 13)",
    params=(
        Param("k", 4, "number of messages"),
        Param("payload_length", 0, "payload bytes per message (0: headers only)"),
        Param("block", None, "block size override (default: Theta(log log n))"),
        Param("round_multiplier", DEFAULT_ROUND_MULTIPLIER, "rounds per block step"),
    ),
)
def _rlnc_robust_fastbc(
    network, faults, seed, max_rounds, params, adversary=None, channel=None
):
    return _from_multi(
        rlnc_robust_fastbc_broadcast(
            network,
            params["k"],
            faults=faults,
            rng=seed,
            payload_length=params["payload_length"],
            max_rounds=max_rounds,
            block=params["block"],
            round_multiplier=params["round_multiplier"],
            adversary=adversary,
            channel=channel,
        )
    )


@register_algorithm(
    "rlnc_dense_wave",
    kind="multi",
    supports_adversary=True,
    summary="exploratory k-message RLNC dense-wave pattern (open problem X1)",
    params=(
        Param("k", 4, "number of messages"),
        Param("payload_length", 0, "payload bytes per message (0: headers only)"),
    ),
)
def _rlnc_dense_wave(
    network, faults, seed, max_rounds, params, adversary=None, channel=None
):
    return _from_multi(
        rlnc_dense_wave_broadcast(
            network,
            params["k"],
            faults=faults,
            rng=seed,
            payload_length=params["payload_length"],
            max_rounds=max_rounds,
            adversary=adversary,
            channel=channel,
        )
    )


# -- star schedules (Theorem 17 coding gap) ----------------------------------
#
# The star schedules build their own star channel; the scenario's topology
# only sizes it (n nodes -> n-1 leaves) and the scenario's FaultConfig
# supplies the fault model and probability. On failure the per-leaf
# completion split is not observable from StarOutcome, so `informed`
# collapses to all-or-nothing.


def _from_star(outcome) -> AlgorithmResult:
    return AlgorithmResult(
        success=outcome.success,
        rounds=outcome.rounds,
        informed=outcome.n_leaves if outcome.success else 0,
        total=outcome.n_leaves,
        extras={
            "k": outcome.k,
            "rounds_per_message": outcome.rounds_per_message,
            "min_receptions": outcome.min_receptions,
            "max_receptions": outcome.max_receptions,
        },
    )


@register_algorithm(
    "star_routing",
    kind="star",
    summary="adaptive star routing (Lemma 15): Theta(k log n) against faults",
    params=(Param("k", 4, "number of messages"),),
    default_topology="star",
)
def _star_routing(
    network, faults, seed, max_rounds, params, adversary=None, channel=None
):
    return _from_star(
        star_adaptive_routing(
            max(1, network.n - 1),
            params["k"],
            faults.p,
            rng=seed,
            fault_model=faults.model,
            max_rounds=max_rounds,
        )
    )


@register_algorithm(
    "star_coding",
    kind="star",
    summary="Reed-Solomon star coding (Lemma 16): Theta(k), closes the gap",
    params=(
        Param("k", 4, "number of messages"),
        Param("validate_decode", False, "decode and verify the RS round-trip"),
    ),
    default_topology="star",
)
def _star_coding(
    network, faults, seed, max_rounds, params, adversary=None, channel=None
):
    return _from_star(
        star_rs_coding(
            max(1, network.n - 1),
            params["k"],
            faults.p,
            rng=seed,
            fault_model=faults.model,
            max_rounds=max_rounds,
            validate_decode=params["validate_decode"],
        )
    )


# -- single-link schedules (Section 6) ----------------------------------------
#
# One sender, one receiver: the network argument is ignored beyond
# documentation (use the "single_link" topology family) and only the fault
# probability matters. `informed`/`total` describe the lone receiver;
# per-message delivery counts live in extras.


def _from_link(outcome) -> AlgorithmResult:
    return AlgorithmResult(
        success=outcome.success,
        rounds=outcome.rounds,
        informed=1 if outcome.success else 0,
        total=1,
        extras={
            "k": outcome.k,
            "delivered": outcome.delivered,
            "rounds_per_message": outcome.rounds_per_message,
        },
    )


@register_algorithm(
    "single_link_routing",
    kind="link",
    summary="adaptive single-link routing (Lemma 32): 4k/(1-p) budget",
    params=(Param("k", 8, "number of messages"),),
    default_topology="single_link",
)
def _single_link_routing(
    network, faults, seed, max_rounds, params, adversary=None, channel=None
):
    return _from_link(
        single_link_adaptive_routing(
            params["k"], faults.p, rng=seed, round_budget=max_rounds
        )
    )


@register_algorithm(
    "single_link_nonadaptive",
    kind="link",
    summary="non-adaptive single-link routing (Lemma 29): Theta(log k) repeats",
    params=(
        Param("k", 8, "number of messages"),
        Param("repetitions", None, "per-message repeats (default: Lemma 29 bound)"),
    ),
    default_topology="single_link",
)
def _single_link_nonadaptive(
    network, faults, seed, max_rounds, params, adversary=None, channel=None
):
    return _from_link(
        single_link_nonadaptive_routing(
            params["k"], faults.p, rng=seed, repetitions=params["repetitions"]
        )
    )


@register_algorithm(
    "single_link_coding",
    kind="link",
    summary="single-link MDS coding (Lemma 30): any k receptions decode",
    params=(Param("k", 8, "number of messages"),),
    default_topology="single_link",
)
def _single_link_coding(
    network, faults, seed, max_rounds, params, adversary=None, channel=None
):
    return _from_link(
        single_link_coding(params["k"], faults.p, rng=seed, max_rounds=max_rounds)
    )
