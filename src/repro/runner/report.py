"""Canonical, JSON-serializable run records.

Every :func:`repro.runner.run` call produces one :class:`RunReport`. The
record embeds the scenario that produced it, so a JSON file of reports is
self-describing and any row can be re-run by reconstructing its scenario
with :meth:`~repro.runner.scenario.Scenario.from_dict`.

Determinism contract: everything except ``wall_time_s`` is a pure
function of the scenario (same scenario, same report). The canonical
rendering therefore excludes timing, so byte-level comparison of
:meth:`RunReport.to_json(canonical=True) <RunReport.to_json>` is the
reproducibility check the test suite enforces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["RunReport"]


@dataclass(frozen=True)
class RunReport:
    """The outcome of running one :class:`~repro.runner.scenario.Scenario`.

    ``informed``/``total`` count completed receivers in the algorithm's
    own terms (nodes for network broadcasts, leaves for star schedules,
    the lone receiver for single-link schedules); ``extras`` carries
    algorithm-specific scalars and ``counters`` the channel statistics
    when the run used the real collision channel.

    ``network_n``/``network_name`` describe the network the run actually
    materialized — authoritative where a family ignores the requested
    size (``single_link`` is always 2 nodes regardless of ``n``).

    ``cache_key`` is the scenario's content address
    (:meth:`Scenario.cache_key <repro.runner.scenario.Scenario.cache_key>`),
    set by :func:`repro.runner.run` for every serializable scenario so the
    report is self-identifying in a :class:`~repro.store.ResultStore`.
    It is empty — and omitted from :meth:`to_dict` — for reports that
    predate the store or ran an explicit (non-serializable) network, so
    their canonical bytes are unchanged.

    ``timeline`` is the run's flight-recorder payload (the canonical
    dict of a :class:`~repro.timeline.Timeline`), attached when the
    scenario opted in. Like ``wall_time_s`` it stays outside the
    canonical form — the store persists it as a sidecar keyed by
    ``cache_key``, not inside the report bytes.
    """

    scenario: dict
    algorithm: str
    success: bool
    rounds: int
    informed: int
    total: int
    counters: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    network_n: int = 0
    network_name: str = ""
    wall_time_s: float = 0.0
    cache_key: str = ""
    timeline: "dict | None" = None

    @property
    def informed_fraction(self) -> float:
        return self.informed / self.total if self.total else 0.0

    def to_dict(self, include_timing: bool = True) -> dict[str, Any]:
        """JSON-serializable form (``include_timing=False``: canonical)."""
        data: dict[str, Any] = {
            "scenario": dict(self.scenario),
            "algorithm": self.algorithm,
            "success": self.success,
            "rounds": self.rounds,
            "informed": self.informed,
            "total": self.total,
            "counters": dict(self.counters),
            "extras": dict(self.extras),
            "network_n": self.network_n,
            "network_name": self.network_name,
        }
        if self.cache_key:
            data["cache_key"] = self.cache_key
        if include_timing:
            data["wall_time_s"] = self.wall_time_s
            if self.timeline is not None:
                data["timeline"] = dict(self.timeline)
        return data

    def to_json(self, indent: "int | None" = None, canonical: bool = False) -> str:
        """Render as JSON; ``canonical=True`` drops timing and fixes the
        key order so equal runs compare byte-identical."""
        return json.dumps(
            self.to_dict(include_timing=not canonical),
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            scenario=dict(data["scenario"]),
            algorithm=data["algorithm"],
            success=bool(data["success"]),
            rounds=int(data["rounds"]),
            informed=int(data["informed"]),
            total=int(data["total"]),
            counters=dict(data.get("counters", {})),
            extras=dict(data.get("extras", {})),
            network_n=int(data.get("network_n", 0)),
            network_name=data.get("network_name", ""),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            cache_key=data.get("cache_key", ""),
            timeline=data.get("timeline"),
        )
