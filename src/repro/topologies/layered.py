"""Layered networks for the pipelining arguments of Lemmas 20-21.

A *layered network* is a chain of node layers where consecutive layers form
a (complete or random) bipartite graph; the source forms layer 0. The
pipelined routing schedule of Lemma 21 works on exactly this BFS-layer
structure, and Lemma 20's bipartite sub-schedule broadcasts across one
layer boundary.
"""

from __future__ import annotations

import networkx as nx

from repro.core.network import RadioNetwork
from repro.util.rng import RandomSource, spawn_rng
from repro.util.validation import check_fraction, check_positive

__all__ = ["layered_network", "bipartite_network"]


def bipartite_network(
    left: int,
    right: int,
    edge_probability: float = 1.0,
    rng: "int | RandomSource | None" = None,
) -> RadioNetwork:
    """A two-layer network: source -> ``left`` relays -> ``right`` sinks.

    The source is a single node adjacent to every left-layer node (so the
    left layer can be loaded with messages); left and right layers are
    connected by a bipartite graph where each edge appears independently
    with ``edge_probability`` (1.0 = complete bipartite). Right-layer nodes
    with no left neighbor are attached to one uniformly random left node to
    keep the network connected.
    """
    check_positive(left, "left")
    check_positive(right, "right")
    check_fraction(edge_probability, "edge_probability")
    source = spawn_rng(rng)
    g = nx.Graph()
    g.add_node("s")
    for i in range(left):
        g.add_edge("s", ("L", i))
    for j in range(right):
        g.add_node(("R", j))
        attached = False
        for i in range(left):
            if edge_probability >= 1.0 or source.bernoulli(edge_probability):
                g.add_edge(("L", i), ("R", j))
                attached = True
        if not attached:
            g.add_edge(("L", source.randint(0, left - 1)), ("R", j))
    return RadioNetwork(
        g, source="s", name=f"bipartite-{left}x{right}-{edge_probability}"
    )


def layered_network(
    layers: int,
    width: int,
    edge_probability: float = 1.0,
    rng: "int | RandomSource | None" = None,
) -> RadioNetwork:
    """A source followed by ``layers`` layers of ``width`` nodes each.

    Consecutive layers are joined by independent bipartite graphs (see
    :func:`bipartite_network` for the edge rule); the source is adjacent to
    all of layer 0. BFS levels of the result are exactly the layers, which
    is the structure the Lemma 21 pipelining schedule needs.
    """
    check_positive(layers, "layers")
    check_positive(width, "width")
    check_fraction(edge_probability, "edge_probability")
    source = spawn_rng(rng)
    g = nx.Graph()
    g.add_node("s")
    for i in range(width):
        g.add_edge("s", (0, i))
    for layer in range(1, layers):
        for j in range(width):
            g.add_node((layer, j))
            attached = False
            for i in range(width):
                if edge_probability >= 1.0 or source.bernoulli(edge_probability):
                    g.add_edge((layer - 1, i), (layer, j))
                    attached = True
            if not attached:
                g.add_edge((layer - 1, source.randint(0, width - 1)), (layer, j))
    return RadioNetwork(
        g, source="s", name=f"layered-{layers}x{width}-{edge_probability}"
    )
