"""Deterministic topology families.

Each generator returns a :class:`~repro.core.network.RadioNetwork` with the
source placed where the corresponding experiment wants it (e.g. path and
caterpillar sources sit at one end so the source eccentricity equals the
diameter).
"""

from __future__ import annotations

import networkx as nx

from repro.core.network import RadioNetwork
from repro.util.validation import check_positive

__all__ = [
    "single_link",
    "path",
    "star",
    "cycle",
    "complete",
    "grid",
    "balanced_tree",
    "caterpillar",
    "barbell",
]


def single_link() -> RadioNetwork:
    """The two-node topology of Appendix A: source s and receiver t."""
    return RadioNetwork(nx.path_graph(2), source=0, name="single-link")


def path(n: int) -> RadioNetwork:
    """A path of n nodes with the source at the left end (diameter n-1)."""
    check_positive(n, "n")
    return RadioNetwork(nx.path_graph(n), source=0, name=f"path-{n}")


def star(n_leaves: int) -> RadioNetwork:
    """The Lemma 15/16 star: a source adjacent to ``n_leaves`` nodes.

    The paper's star has the source at the hub and "n other adjacent
    nodes"; the returned network has ``n_leaves + 1`` nodes total.
    """
    check_positive(n_leaves, "n_leaves")
    return RadioNetwork(nx.star_graph(n_leaves), source=0, name=f"star-{n_leaves}")


def cycle(n: int) -> RadioNetwork:
    """A cycle of n >= 3 nodes."""
    if n < 3:
        raise ValueError(f"a cycle requires n >= 3 nodes, got {n}")
    return RadioNetwork(nx.cycle_graph(n), source=0, name=f"cycle-{n}")


def complete(n: int) -> RadioNetwork:
    """The complete graph K_n: one collision domain, diameter 1.

    The single-collision-domain topology the Bianchi saturation model
    (:mod:`repro.mac.analytic`) describes — every node hears, and
    carrier-senses, every other.
    """
    check_positive(n, "n")
    return RadioNetwork(nx.complete_graph(n), source=0, name=f"complete-{n}")


def grid(rows: int, cols: int) -> RadioNetwork:
    """A rows x cols 2-D grid, source at one corner."""
    check_positive(rows, "rows")
    check_positive(cols, "cols")
    g = nx.grid_2d_graph(rows, cols)
    return RadioNetwork(g, source=(0, 0), name=f"grid-{rows}x{cols}")


def balanced_tree(branching: int, height: int) -> RadioNetwork:
    """A complete ``branching``-ary tree of the given height, source at root."""
    check_positive(branching, "branching")
    if height < 0:
        raise ValueError(f"height must be >= 0, got {height}")
    g = nx.balanced_tree(branching, height)
    return RadioNetwork(g, source=0, name=f"tree-{branching}-{height}")


def caterpillar(spine: int, legs_per_node: int) -> RadioNetwork:
    """A spine path with ``legs_per_node`` pendant leaves on each spine node.

    Useful for FASTBC experiments: large diameter (the spine) with enough
    extra nodes to drive up ``log n`` independently of ``D``.
    """
    check_positive(spine, "spine")
    if legs_per_node < 0:
        raise ValueError(f"legs_per_node must be >= 0, got {legs_per_node}")
    g = nx.Graph()
    for i in range(spine - 1):
        g.add_edge(("s", i), ("s", i + 1))
    if spine == 1:
        g.add_node(("s", 0))
    for i in range(spine):
        for leg in range(legs_per_node):
            g.add_edge(("s", i), ("l", i, leg))
    return RadioNetwork(
        g, source=("s", 0), name=f"caterpillar-{spine}x{legs_per_node}"
    )


def bramble(spine: int, bag_size: int) -> RadioNetwork:
    """A path thickened by same-level bags of parallel relays.

    Spine nodes v_0..v_{spine-1} form a path; around each interior node
    v_i sits a *bag* of ``bag_size`` nodes adjacent to v_{i-1} and
    v_{i+1} (skipping v_i). Each spine node therefore has
    ``2(bag_size+1)``-dense collision neighborhoods — Decay must thread
    the "exactly one broadcaster" needle through bag_size+1 informed
    neighbors per hop — while the bags also offer parallel relay routes,
    so the frontier advances through whichever route wins first. The
    spine remains a clean fast stretch for FASTBC (bag nodes are never
    fast), making this a denser-interference companion to ``path`` for
    the Lemma 8 / Lemma 10 / Theorem 11 comparisons.
    """
    check_positive(spine, "spine")
    if bag_size < 0:
        raise ValueError(f"bag_size must be >= 0, got {bag_size}")
    g = nx.Graph()
    if spine == 1:
        g.add_node(("v", 0))
    for i in range(spine - 1):
        g.add_edge(("v", i), ("v", i + 1))
    for i in range(1, spine - 1):
        for b in range(bag_size):
            g.add_edge(("v", i - 1), ("b", i, b))
            g.add_edge(("b", i, b), ("v", i + 1))
    return RadioNetwork(g, source=("v", 0), name=f"bramble-{spine}x{bag_size}")


def barbell(clique_size: int, bridge_length: int) -> RadioNetwork:
    """Two cliques joined by a path; source in the first clique.

    Exercises the interaction of dense collision domains with a long
    bottleneck — a stress case for Decay-style backoff.
    """
    if clique_size < 2:
        raise ValueError(f"clique_size must be >= 2, got {clique_size}")
    if bridge_length < 0:
        raise ValueError(f"bridge_length must be >= 0, got {bridge_length}")
    g = nx.barbell_graph(clique_size, bridge_length)
    return RadioNetwork(
        g, source=0, name=f"barbell-{clique_size}-{bridge_length}"
    )
