"""A small registry of named topology families for experiments and the CLI.

Experiments sweep over families by name; the registry centralizes the
mapping so the CLI, benchmarks, and tests agree on what e.g. ``"path"``
means.
"""

from __future__ import annotations

from typing import Callable

from repro.core.network import RadioNetwork
from repro.topologies import basic, layered, random_graphs

__all__ = ["TOPOLOGY_FAMILIES", "make_topology"]


def _path(n: int, seed: int) -> RadioNetwork:
    return basic.path(n)


def _single_link(n: int, seed: int) -> RadioNetwork:
    # always the 2-node link; a requested n does not apply (run reports
    # record the materialized size)
    return basic.single_link()


def _star(n: int, seed: int) -> RadioNetwork:
    return basic.star(max(1, n - 1))


def _cycle(n: int, seed: int) -> RadioNetwork:
    return basic.cycle(max(3, n))


def _complete(n: int, seed: int) -> RadioNetwork:
    return basic.complete(n)


def _grid(n: int, seed: int) -> RadioNetwork:
    side = max(1, round(n**0.5))
    return basic.grid(side, side)


def _tree(n: int, seed: int) -> RadioNetwork:
    return random_graphs.random_tree(n, rng=seed)


def _gnp(n: int, seed: int) -> RadioNetwork:
    # ~4 log n / n keeps G(n,p) connected w.h.p. while staying sparse
    import math

    p = min(1.0, 4.0 * math.log(max(2, n)) / max(2, n))
    return random_graphs.gnp(n, p, rng=seed)


def _layered(n: int, seed: int) -> RadioNetwork:
    width = max(2, round(n**0.5))
    layers = max(1, (n - 1) // width)
    return layered.layered_network(layers, width, rng=seed)


def _caterpillar(n: int, seed: int) -> RadioNetwork:
    spine = max(1, n // 2)
    return basic.caterpillar(spine, 1)


def _bramble(n: int, seed: int) -> RadioNetwork:
    # spine + (spine-2)*bags ~ n with 3-node bags
    spine = max(3, (n + 6) // 4)
    return basic.bramble(spine, 3)


#: name -> builder(n, seed) for the families experiments sweep over
TOPOLOGY_FAMILIES: dict[str, Callable[[int, int], RadioNetwork]] = {
    "path": _path,
    "single_link": _single_link,
    "star": _star,
    "cycle": _cycle,
    "complete": _complete,
    "grid": _grid,
    "tree": _tree,
    "gnp": _gnp,
    "layered": _layered,
    "caterpillar": _caterpillar,
    "bramble": _bramble,
}


def make_topology(family: str, n: int, seed: int = 0) -> RadioNetwork:
    """Build a named topology family at size ~n (deterministic per seed)."""
    try:
        builder = TOPOLOGY_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGY_FAMILIES))
        raise ValueError(f"unknown family {family!r}; known: {known}") from None
    return builder(n, seed)
