"""Random topology families (seeded, always connected).

``gnp`` draws an Erdős–Rényi graph and, if disconnected, adds the minimum
set of bridging edges between components. This keeps the advertised edge
density while satisfying the model's connectivity requirement — broadcast
is ill-defined on a disconnected network.
"""

from __future__ import annotations

import networkx as nx

from repro.core.network import RadioNetwork
from repro.util.rng import RandomSource, spawn_rng
from repro.util.validation import check_fraction, check_positive

__all__ = ["gnp", "random_tree"]


def gnp(
    n: int, edge_probability: float, rng: "int | RandomSource | None" = None
) -> RadioNetwork:
    """A connected Erdős–Rényi G(n, p) network with source node 0.

    Parameters
    ----------
    n:
        Number of nodes.
    edge_probability:
        Independent probability of each potential edge.
    rng:
        Seed or random source (deterministic given the seed).
    """
    check_positive(n, "n")
    check_fraction(edge_probability, "edge_probability")
    source = spawn_rng(rng)
    seed = source.randint(0, 2**31)
    # the sparse sampler runs in O(n + m) instead of O(n^2) — at the
    # thousands-of-nodes scale of the vectorized substrate the dense
    # sampler dominates topology construction time
    if edge_probability < 0.25:
        g = nx.fast_gnp_random_graph(n, edge_probability, seed=seed)
    else:
        g = nx.gnp_random_graph(n, edge_probability, seed=seed)
    _connect_components(g, source)
    return RadioNetwork(g, source=0, name=f"gnp-{n}-{edge_probability}")


def random_tree(n: int, rng: "int | RandomSource | None" = None) -> RadioNetwork:
    """A uniformly random labeled tree on n nodes, source node 0."""
    check_positive(n, "n")
    source = spawn_rng(rng)
    if n == 1:
        g = nx.Graph()
        g.add_node(0)
    else:
        g = nx.random_labeled_tree(n, seed=source.randint(0, 2**31))
    return RadioNetwork(g, source=0, name=f"random-tree-{n}")


def _connect_components(g: nx.Graph, rng: RandomSource) -> None:
    """Join components by adding one random edge between consecutive ones."""
    components = [sorted(c) for c in nx.connected_components(g)]
    if len(components) <= 1:
        return
    for first, second in zip(components, components[1:]):
        u = first[rng.randint(0, len(first) - 1)]
        v = second[rng.randint(0, len(second) - 1)]
        g.add_edge(u, v)
