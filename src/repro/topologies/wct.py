"""The worst case topology (WCT) of Section 5.1.2 / Figure 2.

The paper builds WCT from the throughput lower-bound network of Ghaffari,
Haeupler and Khabbazian [19]: a source s, Θ(√n) *sender* nodes all adjacent
to s, and Θ̃(√n) *receivers*, each adjacent to a subset of senders chosen so
that **in any round, at most an O(1/log n) fraction of receivers hears
exactly one broadcaster** (Lemma 18). The PODC paper then replaces each
receiver by a *cluster* of Θ̃(√n) duplicate nodes with identical sender
neighborhoods, making reception cluster-atomic and letting the star lower
bound (Lemma 15) apply inside each cluster.

Since [19]'s construction is probabilistic, we implement the standard
degree-class form of it: clusters are split evenly into L = Θ(log n)
classes, and a class-i cluster is adjacent to a uniformly random set of
2^(i+1) senders. For any broadcast set T of senders, a class-i cluster
hears exactly one broadcaster with probability ≈ μ_i e^{-μ_i} where
μ_i = |T|·2^(i+1)/m doubles with i, so only O(1) classes contribute a
constant fraction and the total informed fraction is O(1/L) = O(1/log n).
The class property is *verified empirically* at construction time by
:meth:`WCTNetwork.max_singleton_fraction` in tests and experiment E11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.core.network import RadioNetwork
from repro.util.rng import RandomSource, spawn_rng
from repro.util.validation import check_positive

__all__ = ["WCTNetwork", "worst_case_topology"]


@dataclass
class WCTNetwork:
    """A constructed worst case topology plus its structural metadata.

    Attributes
    ----------
    network:
        The simulable radio network (source + senders + cluster nodes).
    senders:
        Internal indices of the sender nodes (all adjacent to the source).
    clusters:
        Internal indices of each cluster's nodes; every node of a cluster
        has an identical sender neighborhood.
    adjacency:
        Boolean (num_clusters x num_senders) matrix; entry (j, i) is True
        iff cluster j is adjacent to sender i.
    classes:
        Degree-class index of each cluster.
    """

    network: RadioNetwork
    senders: list[int]
    clusters: list[list[int]]
    adjacency: np.ndarray
    classes: list[int]

    @property
    def num_senders(self) -> int:
        return len(self.senders)

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def cluster_size(self) -> int:
        return len(self.clusters[0])

    def informed_fraction(self, broadcast_senders: Iterable[int]) -> float:
        """Fraction of clusters hearing exactly one of ``broadcast_senders``.

        ``broadcast_senders`` are positions into :attr:`senders` (0-based
        sender numbers, not internal node indices). This is the quantity
        Lemma 18 bounds by O(1/log n).
        """
        mask = np.zeros(self.num_senders, dtype=bool)
        for s in broadcast_senders:
            if not 0 <= s < self.num_senders:
                raise ValueError(f"sender number {s} out of range")
            mask[s] = True
        hears = self.adjacency[:, mask].sum(axis=1)
        return float(np.mean(hears == 1))

    def max_singleton_fraction(
        self,
        trials_per_size: int = 20,
        rng: "int | RandomSource | None" = None,
    ) -> float:
        """Empirical max informed-cluster fraction over broadcast sets.

        Scans all singleton sets plus ``trials_per_size`` random sets of
        every power-of-two size, returning the largest informed fraction
        seen. Lemma 18 predicts this is O(1/log n).
        """
        source = spawn_rng(rng)
        best = 0.0
        for s in range(self.num_senders):
            best = max(best, self.informed_fraction([s]))
        size = 2
        while size <= self.num_senders:
            for _ in range(trials_per_size):
                chosen = source.sample(range(self.num_senders), size)
                best = max(best, self.informed_fraction(chosen))
            size *= 2
        return best

    def cluster_of_node(self, node: int) -> int:
        """Cluster index containing internal node index ``node`` (or -1)."""
        for j, members in enumerate(self.clusters):
            if node in members:
                return j
        return -1


def worst_case_topology(
    n: int, rng: "int | RandomSource | None" = None
) -> WCTNetwork:
    """Build a WCT instance with roughly ``n`` nodes.

    Parameters
    ----------
    n:
        Target node budget (>= 16). The construction uses ~√n senders,
        ~√n clusters of ~√n nodes each, as in Figure 2(b).
    rng:
        Seed / randomness for the probabilistic sender-set choices.
    """
    check_positive(n, "n")
    if n < 16:
        raise ValueError(f"WCT needs n >= 16 to be non-degenerate, got {n}")
    source = spawn_rng(rng)

    num_senders = max(4, math.isqrt(n))
    cluster_size = max(2, math.isqrt(n))
    num_classes = max(1, int(math.log2(num_senders)) - 1)
    budget = n - 1 - num_senders
    num_clusters = max(num_classes, budget // cluster_size)

    graph = nx.Graph()
    graph.add_node("s")
    for i in range(num_senders):
        graph.add_edge("s", ("snd", i))

    adjacency = np.zeros((num_clusters, num_senders), dtype=bool)
    classes: list[int] = []
    for j in range(num_clusters):
        cls = j % num_classes
        classes.append(cls)
        degree = min(num_senders, 2 ** (cls + 1))
        chosen = source.sample(range(num_senders), degree)
        for s in chosen:
            adjacency[j, s] = True
        for member in range(cluster_size):
            node = ("c", j, member)
            for s in chosen:
                graph.add_edge(("snd", s), node)

    network = RadioNetwork(graph, source="s", name=f"wct-{n}")
    senders = [network.index_of(("snd", i)) for i in range(num_senders)]
    clusters = [
        [network.index_of(("c", j, member)) for member in range(cluster_size)]
        for j in range(num_clusters)
    ]
    return WCTNetwork(
        network=network,
        senders=senders,
        clusters=clusters,
        adjacency=adjacency,
        classes=classes,
    )
