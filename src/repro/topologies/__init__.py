"""Topology generators for all networks used in the paper's arguments.

Basic families (paths, stars, grids, trees, ...) appear throughout the
single-message analysis; the star is the Lemma 15/16 gap topology; the
single link is Appendix A; layered networks support the pipelining schedule
of Lemma 21; and :mod:`repro.topologies.wct` builds the worst case topology
of Section 5.1.2 (Figure 2).
"""

from repro.topologies.basic import (
    balanced_tree,
    barbell,
    bramble,
    caterpillar,
    cycle,
    grid,
    path,
    single_link,
    star,
)
from repro.topologies.layered import layered_network, bipartite_network
from repro.topologies.random_graphs import gnp, random_tree
from repro.topologies.registry import TOPOLOGY_FAMILIES, make_topology
from repro.topologies.wct import WCTNetwork, worst_case_topology

__all__ = [
    "balanced_tree",
    "barbell",
    "bipartite_network",
    "bramble",
    "caterpillar",
    "cycle",
    "gnp",
    "grid",
    "layered_network",
    "make_topology",
    "path",
    "random_tree",
    "single_link",
    "star",
    "TOPOLOGY_FAMILIES",
    "WCTNetwork",
    "worst_case_topology",
]
