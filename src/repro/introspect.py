"""Machine-readable registry dumps, shared by the CLI and the service.

``repro list --format json`` and the service's ``GET /registry`` endpoint
emit the same document: every registered experiment, algorithm (with its
declared parameters), topology family, and adversary model. Clients use
it to discover what a deployment can run without importing the library.
"""

from __future__ import annotations

from typing import Any

from repro.adversary import all_adversaries
from repro.experiments import all_experiments
from repro.mac.config import CHANNEL_KINDS
from repro.runner import all_algorithms
from repro.topologies.registry import TOPOLOGY_FAMILIES

__all__ = ["registry_dump"]


def registry_dump(adversaries_only: bool = False) -> dict[str, Any]:
    """The registry listing as one JSON-serializable document."""
    adversaries = [
        {
            "name": kind.name,
            "summary": kind.summary,
            "params": [
                {"name": p.name, "default": p.default, "doc": p.doc}
                for p in kind.params
            ],
        }
        for kind in all_adversaries()
    ]
    if adversaries_only:
        return {"adversaries": adversaries}
    return {
        "experiments": [
            {
                "id": e.id,
                "title": e.title,
                "claim": e.claim,
                "accepts_adversary": e.accepts_adversary,
                "accepts_channel": e.accepts_channel,
            }
            for e in all_experiments()
        ],
        "algorithms": [
            {
                "name": a.name,
                "kind": a.kind,
                "summary": a.summary,
                "params": [
                    {"name": p.name, "default": p.default, "doc": p.doc}
                    for p in a.params
                ],
                "default_topology": a.default_topology,
                "supports_adversary": a.supports_adversary,
            }
            for a in all_algorithms()
        ],
        "topologies": sorted(TOPOLOGY_FAMILIES),
        "adversaries": adversaries,
        "channels": [
            {
                "name": name,
                "summary": CHANNEL_KINDS[name]["summary"],
                "params": dict(CHANNEL_KINDS[name]["params"]),
            }
            for name in sorted(CHANNEL_KINDS)
        ],
    }
