"""Throughput measurement and coding-gap computation (Definitions 1-3)."""

from repro.throughput.estimator import (
    ThroughputEstimate,
    estimate_throughput,
    throughput_curve,
)
from repro.throughput.gaps import GapEstimate, coding_gap

__all__ = [
    "GapEstimate",
    "ThroughputEstimate",
    "coding_gap",
    "estimate_throughput",
    "throughput_curve",
]
