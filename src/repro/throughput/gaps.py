"""Coding-gap computation (Definitions 2-3, Lemma 4).

The *coding gap* of a fixed topology is the ratio of its coding throughput
to its routing throughput; the *shared topology gap* maximizes that ratio
over topologies, and the *worst case topology gap* compares the two
worst-case throughputs. Empirically we estimate the fixed-topology gap
from paired runner measurements; the experiment drivers assemble the
shared/worst-case tables from these.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.throughput.estimator import Runner, ThroughputEstimate, estimate_throughput
from repro.util.rng import RandomSource, spawn_rng

__all__ = ["GapEstimate", "coding_gap"]


@dataclass(frozen=True)
class GapEstimate:
    """Empirical coding gap of one topology at one k."""

    coding: ThroughputEstimate
    routing: ThroughputEstimate

    @property
    def gap(self) -> float:
        """coding throughput / routing throughput (>= 1 when coding wins)."""
        if self.routing.throughput == 0:
            return float("inf")
        return self.coding.throughput / self.routing.throughput

    def __str__(self) -> str:
        return (
            f"gap={self.gap:.2f} "
            f"(coding {self.coding.throughput:.4f} vs "
            f"routing {self.routing.throughput:.4f} at k={self.coding.k})"
        )


def coding_gap(
    coding_runner: Runner,
    routing_runner: Runner,
    k: int,
    trials: int = 5,
    rng: "int | RandomSource | None" = None,
) -> GapEstimate:
    """Estimate a topology's coding gap from paired runners."""
    source = spawn_rng(rng)
    coding = estimate_throughput(coding_runner, k, trials, source.spawn())
    routing = estimate_throughput(routing_runner, k, trials, source.spawn())
    return GapEstimate(coding=coding, routing=routing)
