"""Empirical topology throughput (Definition 1).

The paper defines throughput as ``limsup_{k→∞} k / min_S |S_k|`` over
schedules succeeding with probability ``1 - 1/k``. Empirically we fix a
schedule family (a *runner*: ``run(k, seed) -> (rounds, success)``),
measure rounds at a large finite k over repeated trials, and report
``k / median(rounds)`` together with the success rate. Experiments then
compare estimates across k (convergence) and across n (scaling) — the
quantities the lemmas bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.util.rng import RandomSource, spawn_rng
from repro.util.stats import Summary, summarize
from repro.util.validation import check_positive

__all__ = ["ThroughputEstimate", "estimate_throughput", "throughput_curve"]

#: a schedule family: run(k, seed) -> (rounds, success)
Runner = Callable[[int, int], tuple[int, bool]]


@dataclass(frozen=True)
class ThroughputEstimate:
    """Empirical throughput of one runner at one k."""

    k: int
    trials: int
    success_rate: float
    rounds: Summary
    throughput: float  # k / median rounds
    rounds_per_message: float  # median rounds / k

    def __str__(self) -> str:
        return (
            f"k={self.k}: throughput={self.throughput:.4f} "
            f"({self.rounds_per_message:.2f} rounds/msg, "
            f"success={self.success_rate:.0%}, {self.rounds})"
        )


def estimate_throughput(
    runner: Runner,
    k: int,
    trials: int = 5,
    rng: "int | RandomSource | None" = None,
) -> ThroughputEstimate:
    """Run ``runner`` ``trials`` times at message count ``k``."""
    check_positive(k, "k")
    check_positive(trials, "trials")
    source = spawn_rng(rng)
    rounds_list: list[float] = []
    successes = 0
    for _ in range(trials):
        rounds, success = runner(k, source.spawn().seed)
        rounds_list.append(float(rounds))
        successes += bool(success)
    summary = summarize(rounds_list)
    return ThroughputEstimate(
        k=k,
        trials=trials,
        success_rate=successes / trials,
        rounds=summary,
        throughput=k / summary.median if summary.median else float("inf"),
        rounds_per_message=summary.median / k,
    )


def throughput_curve(
    runner: Runner,
    ks: Sequence[int],
    trials: int = 5,
    rng: "int | RandomSource | None" = None,
) -> list[ThroughputEstimate]:
    """Throughput estimates across a sweep of k values."""
    source = spawn_rng(rng)
    return [
        estimate_throughput(runner, k, trials=trials, rng=source.spawn())
        for k in ks
    ]
