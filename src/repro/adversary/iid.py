"""The paper's i.i.d. fault coins as an adversary (subsumes FaultConfig).

:class:`IIDFaults` is the executable bridge between the legacy
:class:`~repro.core.faults.FaultConfig` and the adversary interface: the
channel builds one from every ``FaultConfig`` it is given, and the hooks
draw exactly the bulk Bernoulli calls the pre-adversary channel drew
(one ``bernoulli_array`` per active fault stage, over ascending node
ids — bulk-stream v2, see PERFORMANCE.md). Same seed, same stream, same
deliveries: legacy runs are byte-identical by construction, and the test
suite checks it.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.adversary.base import Adversary, IntVector
from repro.core.faults import FaultConfig, FaultModel

__all__ = ["IIDFaults"]


class IIDFaults(Adversary):
    """Independent per-round fault coins: the paper's model, verbatim.

    Parameters
    ----------
    model:
        ``FaultModel.SENDER``, ``RECEIVER``, or ``NONE``.
    p:
        Fault probability in [0, 1).
    """

    name = "iid"

    def __init__(
        self, model: FaultModel = FaultModel.NONE, p: float = 0.0
    ) -> None:
        super().__init__()
        if isinstance(model, str):
            model = FaultModel(model)
        # reuse FaultConfig's validation (range, NONE => p == 0)
        self.faults = FaultConfig(model, float(p))

    @classmethod
    def from_fault_config(cls, faults: FaultConfig) -> "IIDFaults":
        return cls(faults.model, faults.p)

    def sender_mask(self, broadcasters: IntVector) -> Optional[np.ndarray]:
        faults = self.faults
        if faults.model is FaultModel.SENDER and faults.p > 0.0:
            return self.rng.bernoulli_array(faults.p, len(broadcasters))
        return None

    def receiver_mask(
        self, receivers: IntVector, senders: IntVector
    ) -> Optional[np.ndarray]:
        faults = self.faults
        if faults.model is FaultModel.RECEIVER and faults.p > 0.0:
            return self.rng.bernoulli_array(faults.p, len(receivers))
        return None

    @property
    def nominal_p(self) -> float:
        return self.faults.p

    def describe(self) -> dict[str, Any]:
        return {
            "kind": self.name,
            "model": str(self.faults.model),
            "p": self.faults.p,
        }
