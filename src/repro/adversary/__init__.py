"""Pluggable noise and adversary models for the noisy radio channel.

The paper's model admits exactly two i.i.d. fault coins; this package
generalizes the channel's corruption step into a strategy interface
(:class:`Adversary`) with a registry of concrete models:

* ``iid`` — :class:`IIDFaults`: the paper's sender/receiver coins,
  byte-identical to the legacy ``FaultConfig`` path (it *is* that path);
* ``gilbert_elliott`` — :class:`GilbertElliott`: bursty per-node noise,
  a two-state good/bad Markov loss chain;
* ``budgeted_jammer`` — :class:`BudgetedJammer`: an adaptive adversary
  that observes each round and silences up to k receptions under a total
  corruption budget (random / max-degree / frontier-tracking policies);
* ``edge_churn`` — :class:`EdgeChurn`: dynamic topology via per-round
  undirected-edge up/down flips over the CSR adjacency.

Select one declaratively with
:class:`~repro.core.faults.AdversaryConfig` on a
:class:`~repro.runner.Scenario` (or ``repro sweep --adversary NAME``)::

    from repro import AdversaryConfig, Scenario, run

    report = run(Scenario(algorithm="decay", topology="path",
                          topology_params={"n": 64},
                          adversary=AdversaryConfig("gilbert_elliott",
                                                    {"p_bad": 0.9}),
                          seed=1))

Both channel kernels (vectorized and scalar) drive the same hooks on the
same RNG stream, so every adversary is deterministic per seed and
kernel-independent — see :mod:`repro.adversary.base` for the contract.
"""

from repro.adversary.base import Adversary, effective_loss_rate
from repro.adversary.churn import EdgeChurn
from repro.adversary.gilbert_elliott import GilbertElliott
from repro.adversary.iid import IIDFaults
from repro.adversary.jammer import JAMMER_POLICIES, BudgetedJammer
from repro.adversary.registry import (
    AdversaryParam,
    AdversaryType,
    all_adversaries,
    as_adversary,
    build_adversary,
    get_adversary_type,
    register_adversary,
)
from repro.core.faults import AdversaryConfig

__all__ = [
    "Adversary",
    "AdversaryConfig",
    "AdversaryParam",
    "AdversaryType",
    "BudgetedJammer",
    "EdgeChurn",
    "GilbertElliott",
    "IIDFaults",
    "JAMMER_POLICIES",
    "all_adversaries",
    "as_adversary",
    "build_adversary",
    "effective_loss_rate",
    "get_adversary_type",
    "register_adversary",
]
