"""A budgeted adaptive jammer: silences up to k receptions per round.

Unlike the oblivious noise models, the jammer *observes* the round —
which nodes broadcast and which listeners are about to receive — and
then spends corruption budget to silence the receptions it dislikes
most. Two knobs bound its power, mirroring the bounded-corruption
adversaries of Censor-Hillel-Fischer-Gelles-Soto ("Two for One, One for
All"): ``per_round`` (at most k silenced receptions per round) and
``budget`` (total silenced receptions over the whole run; None =
unlimited).

Targeting policies (``policy=``):

* ``"random"`` — spend the round's quota on uniformly random eligible
  receptions;
* ``"max_degree"`` — silence the highest-degree receivers first (hubs
  relay to the most neighbors);
* ``"frontier"`` — track which nodes have ever been delivered to and
  silence *first-time* receptions first, i.e. chase the broadcast
  frontier and stall its growth (the strongest policy against wave
  algorithms).

Ties always break toward the lowest node id, and the only randomness
(the ``random`` policy's permutation) is drawn once per round inside
:meth:`receiver_mask`, so both channel kernels see identical behavior.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.adversary.base import Adversary, IntVector
from repro.util.validation import check_positive

__all__ = ["BudgetedJammer", "JAMMER_POLICIES"]

JAMMER_POLICIES = ("random", "max_degree", "frontier")


class BudgetedJammer(Adversary):
    """Adaptive reception-silencing adversary under a corruption budget.

    Parameters
    ----------
    per_round:
        Maximum receptions silenced per round (the paper-style "up to k").
    budget:
        Total receptions the jammer may silence over the run; ``None``
        means limited only by ``per_round``.
    policy:
        Targeting policy: ``"random"``, ``"max_degree"``, or
        ``"frontier"``.
    """

    name = "budgeted_jammer"

    def __init__(
        self,
        per_round: int = 1,
        budget: Optional[int] = None,
        policy: str = "frontier",
    ) -> None:
        super().__init__()
        self.per_round = check_positive(int(per_round), "per_round")
        if budget is not None:
            budget = check_positive(int(budget), "budget")
        self.budget = budget
        if policy not in JAMMER_POLICIES:
            raise ValueError(
                f"policy must be one of {JAMMER_POLICIES}, got {policy!r}"
            )
        self.policy = policy
        #: receptions silenced so far (diagnostics + budget accounting)
        self.spent = 0
        self._delivered: Optional[np.ndarray] = None
        self._degree: Optional[np.ndarray] = None

    def _on_bind(self) -> None:
        self._delivered = np.zeros(self.network.n, dtype=bool)
        self._degree = np.diff(self.network.indptr).astype(np.int64)

    @property
    def remaining(self) -> Optional[int]:
        """Budget left, or None when unlimited."""
        return None if self.budget is None else self.budget - self.spent

    def _target_order(self, receivers: np.ndarray) -> np.ndarray:
        """Positions into ``receivers`` in most-attractive-first order."""
        if self.policy == "random":
            return self.rng.permutation_array(receivers.size)
        if self.policy == "max_degree":
            # stable sort on ascending ids -> ties break toward low id
            return np.argsort(-self._degree[receivers], kind="stable")
        # frontier: first-time receptions first, hubs first within a tier
        frontier_rank = np.where(self._delivered[receivers], 1, 0)
        return np.lexsort((-self._degree[receivers], frontier_rank))

    def receiver_mask(
        self, receivers: IntVector, senders: IntVector
    ) -> Optional[np.ndarray]:
        receivers = np.asarray(receivers, dtype=np.int64)
        if receivers.size == 0:
            return None
        quota = self.per_round
        if self.budget is not None:
            quota = min(quota, self.budget - self.spent)
        quota = min(quota, receivers.size)
        if quota <= 0:
            self._delivered[receivers] = True
            return None
        mask = np.zeros(receivers.size, dtype=bool)
        mask[self._target_order(receivers)[:quota]] = True
        self.spent += quota
        # unjammed receptions go through; the jammer remembers who is in
        self._delivered[receivers[~mask]] = True
        return mask

    @property
    def nominal_p(self) -> float:
        """Plan round budgets for half the receptions being jammed.

        The true loss rate depends on round shape (the jammer silences
        at most ``per_round`` of however many receptions a round
        offers), so no exact figure exists; 0.5 doubles the default
        budgets, which together with a finite ``budget`` exhausting
        itself keeps delayed runs completing instead of timing out. An
        unlimited-budget jammer can legitimately block small cuts
        forever — a timeout is then the truthful outcome.
        """
        return 0.5

    def describe(self) -> dict[str, Any]:
        return {
            "kind": self.name,
            "per_round": self.per_round,
            "budget": self.budget,
            "policy": self.policy,
        }
