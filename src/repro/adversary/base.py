"""The adversary strategy interface the channel kernels call into.

An :class:`Adversary` generalizes the paper's two i.i.d. fault coins into
a pluggable corruption strategy. Each round the channel exposes three
interception points, always in the same order:

1. :meth:`begin_round` — advance any per-round adversary state (Markov
   chains, edge churn). Called once per non-empty round, before any mask
   is drawn, and only when :attr:`needs_begin_round` is set.
2. :meth:`sender_mask` — corrupt whole transmissions: a masked
   broadcaster emits noise toward *all* of its neighbors (the paper's
   sender fault, generalized).
3. :meth:`edge_alive` — dynamic topology: a mask over the round's
   directed (broadcaster, neighbor) gather slots; a dead slot means that
   neighbor does not hear that broadcaster at all (no collision
   contribution either). Consulted only when :attr:`has_edge_dynamics`
   is set, and must consume **no randomness** (draw coins in
   :meth:`begin_round` instead).
4. :meth:`receiver_mask` — corrupt individual receptions: a masked
   receiver's unique, non-collided reception is replaced by noise (the
   paper's receiver fault, generalized).

Determinism contract
--------------------
Both channel kernels (vectorized and scalar — see
:mod:`repro.core.engine`) call the hooks at the same points with the same
values in the same ascending-id order, so an adversary that draws all of
its randomness inside the hooks through its bound :class:`RandomSource`
is automatically kernel-independent: same seed, same corruption,
delivery for delivery. The property suite in ``tests/adversary/``
enforces this for every registered adversary.

Hook inputs may arrive as Python lists (scalar kernel) or numpy arrays
(vectorized kernel); implementations must depend only on the values and
their order, never on the container type.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence, Union

import numpy as np

from repro.util.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.faults import FaultConfig
    from repro.core.network import RadioNetwork

__all__ = ["Adversary", "IntVector", "effective_loss_rate"]

#: node-id vectors handed to the hooks: list (scalar kernel) or array
#: (vectorized kernel), always in ascending id order
IntVector = Union[Sequence[int], np.ndarray]


class Adversary:
    """Base adversary: corrupts nothing. Subclass and override hooks.

    An adversary instance is bound to exactly one channel (its network
    and RNG) via :meth:`bind`; the channel calls it. Instances hold
    mutable per-run state, so build a fresh instance per run — the
    registry's :func:`~repro.adversary.registry.build_adversary` does
    exactly that from a serializable
    :class:`~repro.core.faults.AdversaryConfig`.
    """

    #: registry name (set by the registration decorator)
    name: str = "adversary"
    #: True when :meth:`begin_round` must run every non-empty round
    needs_begin_round: bool = False
    #: True when :meth:`edge_alive` can return a mask
    has_edge_dynamics: bool = False

    def __init__(self) -> None:
        self.network: "Optional[RadioNetwork]" = None
        self.rng: Optional[RandomSource] = None

    # -- lifecycle ----------------------------------------------------------

    def bind(self, network: "RadioNetwork", rng: RandomSource) -> None:
        """Attach to a channel's network and RNG. One channel per instance."""
        if self.network is not None:
            raise ValueError(
                f"adversary {self.name!r} is already bound to a channel; "
                "build a fresh instance (or an AdversaryConfig) per run"
            )
        self.network = network
        self.rng = rng
        self._on_bind()

    def _on_bind(self) -> None:
        """Subclass hook: precompute per-network state after binding."""

    # -- per-round hooks (call order: begin, sender, edge, receiver) --------

    def begin_round(self, round_index: int, broadcasters: IntVector) -> None:
        """Advance per-round state. Only called when `needs_begin_round`."""

    def sender_mask(self, broadcasters: IntVector) -> Optional[np.ndarray]:
        """Bool mask over ``broadcasters`` (ascending ids); True = that
        broadcaster transmits noise this round. None = no corruption."""
        return None

    def edge_alive(
        self, broadcasters: IntVector, slots: Optional[np.ndarray] = None
    ) -> Optional[np.ndarray]:
        """Bool mask over the concatenated CSR neighbor slots of the
        (ascending) broadcasters; False = the edge is down this round.
        None = all edges up. Must not consume randomness.

        ``slots`` is the flat CSR slot array for those broadcasters when
        the caller already computed it (the vectorized kernel has); when
        None the adversary derives it from the network itself.
        """
        return None

    def receiver_mask(
        self, receivers: IntVector, senders: IntVector
    ) -> Optional[np.ndarray]:
        """Bool mask over the eligible unique receivers (ascending ids,
        ``senders`` aligned); True = that reception is replaced by noise.
        None = no corruption."""
        return None

    # -- introspection -------------------------------------------------------

    @property
    def nominal_p(self) -> float:
        """A long-run per-reception loss-rate estimate in [0, 1).

        Round-budget formulas use it where they would use ``faults.p``
        (the 1/(1-p) slowdown); it does not have to be exact, only a
        sane planning figure.
        """
        return 0.0

    def describe(self) -> dict[str, Any]:
        """One-line JSON-friendly summary (name + parameters)."""
        return {"kind": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"


def effective_loss_rate(
    faults: "FaultConfig", adversary: Optional[Adversary]
) -> float:
    """The loss rate round-budget formulas should plan for.

    Legacy runs (no adversary) keep using ``faults.p`` — budgets are
    bit-for-bit unchanged. With an adversary the budget plans for its
    :attr:`~Adversary.nominal_p`, clamped so 1/(1-p) stays finite.
    """
    if adversary is None:
        return faults.p
    return min(0.95, max(faults.p, adversary.nominal_p))
