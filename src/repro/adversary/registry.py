"""A registry of named adversary models, mirroring the algorithm registry.

The CLI, :class:`~repro.runner.scenario.Scenario`, and the channel look
adversaries up by name so "which interference model" is data, not code:
a serializable :class:`~repro.core.faults.AdversaryConfig` names a
registered kind plus parameter overrides, and :func:`build_adversary`
turns it into a fresh, unbound :class:`~repro.adversary.base.Adversary`
instance for one run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.adversary.base import Adversary
from repro.adversary.churn import EdgeChurn
from repro.adversary.gilbert_elliott import GilbertElliott
from repro.adversary.iid import IIDFaults
from repro.adversary.jammer import JAMMER_POLICIES, BudgetedJammer
from repro.core.faults import AdversaryConfig

__all__ = [
    "AdversaryParam",
    "AdversaryType",
    "all_adversaries",
    "as_adversary",
    "build_adversary",
    "get_adversary_type",
    "register_adversary",
]


@dataclass(frozen=True)
class AdversaryParam:
    """One declared adversary parameter (name, default, one-line doc)."""

    name: str
    default: Any
    doc: str = ""


@dataclass(frozen=True)
class AdversaryType:
    """A registered adversary model: metadata plus a parameter-checked
    factory producing a fresh instance per run."""

    name: str
    summary: str
    params: tuple[AdversaryParam, ...] = ()
    factory: Callable[..., Adversary] = None  # type: ignore[assignment]

    def declared(self) -> dict[str, Any]:
        """Declared parameters as a name -> default mapping."""
        return {p.name: p.default for p in self.params}

    def validate_params(self, params: Mapping[str, Any]) -> None:
        """Reject parameters this adversary does not declare."""
        unknown = [key for key in params if key not in self.declared()]
        if unknown:
            known = ", ".join(sorted(self.declared())) or "(none)"
            raise ValueError(
                f"adversary {self.name!r} got unknown parameters "
                f"{sorted(unknown)}; declared: {known}"
            )

    def build(self, params: Mapping[str, Any] | None = None) -> Adversary:
        """A fresh instance with declared defaults merged under ``params``."""
        merged = self.declared()
        if params:
            self.validate_params(params)
            merged.update(params)
        adversary = self.factory(**merged)
        return adversary


_REGISTRY: dict[str, AdversaryType] = {}


def register_adversary(
    name: str,
    *,
    summary: str,
    params: tuple[AdversaryParam, ...] = (),
) -> Callable[[Callable[..., Adversary]], AdversaryType]:
    """Decorator registering a factory as a named adversary model."""

    def decorator(factory: Callable[..., Adversary]) -> AdversaryType:
        if name in _REGISTRY:
            raise ValueError(f"adversary {name!r} already registered")
        kind = AdversaryType(
            name=name, summary=summary, params=params, factory=factory
        )
        _REGISTRY[name] = kind
        return kind

    return decorator


def get_adversary_type(name: str) -> AdversaryType:
    """Look up a registered adversary model by name (e.g. ``"iid"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown adversary {name!r}; known: {known}") from None


def all_adversaries() -> list[AdversaryType]:
    """All registered adversary models in name order."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def build_adversary(config: AdversaryConfig) -> Adversary:
    """A fresh, unbound adversary instance for one run of ``config``."""
    if not isinstance(config, AdversaryConfig):
        raise TypeError(
            f"expected an AdversaryConfig, got {type(config).__name__}"
        )
    return get_adversary_type(config.kind).build(config.params)


def as_adversary(
    adversary: "Adversary | AdversaryConfig | None",
) -> Adversary | None:
    """Normalize a config/instance/None into an instance (or None).

    The entry-point coercion the broadcast algorithms use: configs build
    a fresh instance (ready for one channel), instances pass through,
    None stays None (legacy fault-coin path).
    """
    if adversary is None or isinstance(adversary, Adversary):
        return adversary
    if isinstance(adversary, AdversaryConfig):
        return build_adversary(adversary)
    raise TypeError(
        "adversary must be an Adversary, AdversaryConfig, or None; got "
        f"{type(adversary).__name__}"
    )


# -- the built-in taxonomy ----------------------------------------------------


register_adversary(
    "iid",
    summary=(
        "the paper's i.i.d. fault coins (subsumes FaultConfig: same RNG "
        "stream, byte-identical runs)"
    ),
    params=(
        AdversaryParam("model", "none", "fault mechanism: none|sender|receiver"),
        AdversaryParam("p", 0.0, "fault probability in [0, 1)"),
    ),
)(IIDFaults)

register_adversary(
    "gilbert_elliott",
    summary="bursty per-node noise: two-state good/bad Markov loss chain",
    params=(
        AdversaryParam("p_bad", 0.8, "reception loss rate in the bad state"),
        AdversaryParam("p_good", 0.0, "reception loss rate in the good state"),
        AdversaryParam("p_enter", 0.05, "per-round P(good -> bad)"),
        AdversaryParam("p_exit", 0.25, "per-round P(bad -> good)"),
        AdversaryParam("start_bad", False, "start every node in the bad state"),
    ),
)(GilbertElliott)

register_adversary(
    "budgeted_jammer",
    summary=(
        "adaptive jammer: observes the round and silences up to k "
        "receptions under a total budget"
    ),
    params=(
        AdversaryParam("per_round", 1, "max receptions silenced per round"),
        AdversaryParam("budget", None, "total silenced receptions (None: unlimited)"),
        AdversaryParam(
            "policy", "frontier", f"targeting policy: {'|'.join(JAMMER_POLICIES)}"
        ),
    ),
)(BudgetedJammer)

register_adversary(
    "edge_churn",
    summary="dynamic topology: per-round undirected-edge up/down Markov flips",
    params=(
        AdversaryParam("p_down", 0.1, "per-round P(up edge goes down)"),
        AdversaryParam("p_up", 0.5, "per-round P(down edge recovers)"),
        AdversaryParam("start_down", False, "start every edge down"),
    ),
)(EdgeChurn)
