"""Gilbert-Elliott bursty noise: a two-state Markov chain per node.

The classic burst-noise channel model (Gilbert 1960, Elliott 1963):
every node is in a *good* or *bad* state; receptions are lost with rate
``p_good`` / ``p_bad`` respectively, and the state flips each round with
transition probabilities ``p_enter`` (good -> bad) and ``p_exit``
(bad -> good). Unlike the paper's i.i.d. coins, losses are *correlated
in time*: a node that just lost a reception is likely still in the bad
state next round — exactly the kind of fading/interference burst a real
radio sees, and the regime where FASTBC's wave (which relies on one
particular transmission per level) suffers most.

Randomness discipline: the state update draws one uniform per node per
non-empty round in :meth:`begin_round` (constant consumption regardless
of the current states) and the loss coins draw one uniform per eligible
receiver in :meth:`receiver_mask`, so both channel kernels consume the
stream identically.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.adversary.base import Adversary, IntVector
from repro.util.validation import check_fraction

__all__ = ["GilbertElliott"]


class GilbertElliott(Adversary):
    """Per-node two-state (good/bad) Markov burst noise.

    Parameters
    ----------
    p_bad:
        Reception loss rate while a node is in the bad state.
    p_good:
        Loss rate in the good state (default 0: clean).
    p_enter:
        Per-round probability a good node turns bad.
    p_exit:
        Per-round probability a bad node recovers.
    start_bad:
        Start every node in the bad state (default: all good).
    """

    name = "gilbert_elliott"
    needs_begin_round = True

    def __init__(
        self,
        p_bad: float = 0.8,
        p_good: float = 0.0,
        p_enter: float = 0.05,
        p_exit: float = 0.25,
        start_bad: bool = False,
    ) -> None:
        super().__init__()
        # closed interval: p_bad=1.0 (total loss in the bad state) is the
        # classic Gilbert parameterization; budget planning clamps the
        # nominal rate, so the half-open FaultConfig restriction is not
        # needed here
        self.p_bad = check_fraction(p_bad, "p_bad")
        self.p_good = check_fraction(p_good, "p_good")
        self.p_enter = check_fraction(p_enter, "p_enter")
        self.p_exit = check_fraction(p_exit, "p_exit")
        self.start_bad = bool(start_bad)
        self._bad: Optional[np.ndarray] = None

    def _on_bind(self) -> None:
        n = self.network.n
        self._bad = np.full(n, self.start_bad, dtype=bool)

    def begin_round(self, round_index: int, broadcasters: IntVector) -> None:
        # one uniform per node keeps consumption independent of the states
        u = self.rng.uniform_array(self.network.n)
        self._bad = np.where(self._bad, u >= self.p_exit, u < self.p_enter)

    def receiver_mask(
        self, receivers: IntVector, senders: IntVector
    ) -> Optional[np.ndarray]:
        count = len(receivers)
        if count == 0:
            return None
        idx = np.asarray(receivers, dtype=np.int64)
        rates = np.where(self._bad[idx], self.p_bad, self.p_good)
        return self.rng.uniform_array(count) < rates

    @property
    def bad_fraction(self) -> float:
        """Current fraction of nodes in the bad state (diagnostics)."""
        return float(self._bad.mean()) if self._bad is not None else 0.0

    @property
    def nominal_p(self) -> float:
        total = self.p_enter + self.p_exit
        stationary_bad = self.p_enter / total if total > 0.0 else float(
            self.start_bad
        )
        return stationary_bad * self.p_bad + (1.0 - stationary_bad) * self.p_good

    def describe(self) -> dict[str, Any]:
        return {
            "kind": self.name,
            "p_bad": self.p_bad,
            "p_good": self.p_good,
            "p_enter": self.p_enter,
            "p_exit": self.p_exit,
            "start_bad": self.start_bad,
        }
