"""Edge churn: per-round link up/down flips over the CSR adjacency.

Models dynamic topology — interference corridors, mobility, duty-cycled
radios — as an independent two-state Markov chain per *undirected* edge:
an up edge goes down with probability ``p_down`` each round, a down edge
recovers with probability ``p_up``. A down edge carries nothing in
either direction for the round: its would-be receiver neither receives
nor counts the broadcaster toward a collision.

The per-edge state advances once per non-empty round in
:meth:`begin_round` with one uniform draw per edge (consumption is
independent of the states), and :meth:`edge_alive` then answers the
kernels' gather-slot queries from that state without touching the RNG —
the discipline that keeps the vectorized and scalar kernels on one
stream.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.adversary.base import Adversary, IntVector
from repro.util.validation import check_fraction

__all__ = ["EdgeChurn"]


class EdgeChurn(Adversary):
    """Per-round undirected-edge up/down Markov churn.

    Parameters
    ----------
    p_down:
        Per-round probability an up edge goes down.
    p_up:
        Per-round probability a down edge comes back up.
    start_down:
        Start every edge down (default: all up).
    """

    name = "edge_churn"
    needs_begin_round = True
    has_edge_dynamics = True

    def __init__(
        self,
        p_down: float = 0.1,
        p_up: float = 0.5,
        start_down: bool = False,
    ) -> None:
        super().__init__()
        self.p_down = check_fraction(p_down, "p_down")
        self.p_up = check_fraction(p_up, "p_up")
        self.start_down = bool(start_down)
        self._up: Optional[np.ndarray] = None
        self._slot_edge: Optional[np.ndarray] = None
        #: gather slots suppressed so far (diagnostics)
        self.slots_suppressed = 0

    def _on_bind(self) -> None:
        network = self.network
        # map every CSR slot to its undirected edge id so both directions
        # of an edge share one up/down state
        edge_ids: dict[tuple[int, int], int] = {}
        slot_edge = np.empty(network.indices.size, dtype=np.int64)
        slot = 0
        for u, adj in enumerate(network.neighbors):
            for v in adj:
                key = (u, v) if u < v else (v, u)
                slot_edge[slot] = edge_ids.setdefault(key, len(edge_ids))
                slot += 1
        self._slot_edge = slot_edge
        self._up = np.full(len(edge_ids), not self.start_down, dtype=bool)

    def begin_round(self, round_index: int, broadcasters: IntVector) -> None:
        u = self.rng.uniform_array(self._up.size)
        self._up = np.where(self._up, u >= self.p_down, u < self.p_up)

    def edge_alive(
        self, broadcasters: IntVector, slots: Optional[np.ndarray] = None
    ) -> Optional[np.ndarray]:
        if bool(self._up.all()):
            return None
        if slots is None:
            indptr = self.network.indptr
            bs = np.asarray(broadcasters, dtype=np.int64)
            starts = indptr[bs].astype(np.int64)
            lens = indptr[bs + 1].astype(np.int64) - starts
            seg_starts = np.cumsum(lens) - lens
            slots = np.arange(int(lens.sum()), dtype=np.int64) + np.repeat(
                starts - seg_starts, lens
            )
        alive = self._up[self._slot_edge[slots]]
        self.slots_suppressed += int(slots.size - alive.sum())
        return alive

    @property
    def down_fraction(self) -> float:
        """Current fraction of edges that are down (diagnostics)."""
        return 1.0 - float(self._up.mean()) if self._up is not None else 0.0

    @property
    def nominal_p(self) -> float:
        total = self.p_down + self.p_up
        if total <= 0.0:
            # frozen chain: edges stay wherever they started
            return 0.95 if self.start_down else 0.0
        return min(0.95, self.p_down / total)

    def describe(self) -> dict[str, Any]:
        return {
            "kind": self.name,
            "p_down": self.p_down,
            "p_up": self.p_up,
            "start_down": self.start_down,
        }
